"""Tests for the rollout-based valency adversary and the engine fork."""

from repro.adversary import RecordingAdversary, SilenceAdversary
from repro.baselines.ben_or import BenOrVotingProcess
from repro.lowerbound import (
    KeepSilencingFaulty,
    RolloutConfig,
    RolloutValencyAdversary,
    ScriptedAdversary,
)
from repro.runtime import SyncNetwork

N, T = 16, 4
INPUTS = [1] * 11 + [0] * 5


def make_processes(max_phases=60):
    return [
        BenOrVotingProcess(pid, N, INPUTS[pid], max_phases=max_phases)
        for pid in range(N)
    ]


class TestEngineFork:
    def test_prefix_identical_suffix_divergent(self):
        """Same seed + same fork round but different fork seeds: metrics
        agree before the fork and (typically) diverge after."""

        def run(fork_seed):
            network = SyncNetwork(
                make_processes(),
                t=0,
                seed=9,
                reseed_at=(3, fork_seed),
            )
            result = network.run()
            return result.metrics.messages_per_round, result.decisions

        per_round_a, decisions_a = run(1)
        per_round_b, decisions_b = run(2)
        assert per_round_a[:3] == per_round_b[:3]
        # The runs are balanced enough that the forked coins change the
        # trajectory; lengths or decisions differ for these seeds.
        assert (per_round_a != per_round_b) or (decisions_a != decisions_b)

    def test_no_fork_is_deterministic(self):
        def run():
            network = SyncNetwork(make_processes(), t=0, seed=9)
            return network.run().decisions

        assert run() == run()


class TestScriptedAdversary:
    def test_replays_recorded_run_exactly(self):
        recording = RecordingAdversary(SilenceAdversary([0, 1]))
        network = SyncNetwork(
            make_processes(), adversary=recording, t=T, seed=4
        )
        original = network.run()

        script = [action for _, action in recording.actions]
        replay_network = SyncNetwork(
            make_processes(),
            adversary=ScriptedAdversary(script),
            t=T,
            seed=4,
        )
        replay = replay_network.run()
        assert replay.decisions == original.decisions
        assert replay.metrics.bits_sent == original.metrics.bits_sent
        assert replay.faulty == original.faulty

    def test_fallback_keeps_silencing(self):
        """Past the script, the default suffix policy keeps faulty traffic
        omitted instead of letting silenced processes speak again."""
        recording = RecordingAdversary(SilenceAdversary([0]))
        network = SyncNetwork(
            make_processes(), adversary=recording, t=1, seed=5
        )
        network.run()
        # Replay only the first 2 rounds of the script; the fallback must
        # keep omitting process 0's messages afterwards.
        script = [action for _, action in recording.actions][:2]
        replay_network = SyncNetwork(
            make_processes(),
            adversary=ScriptedAdversary(script, KeepSilencingFaulty()),
            t=1,
            seed=5,
        )
        result = replay_network.run()
        assert result.metrics.messages_omitted > 0


class TestRolloutAdversary:
    def test_stalls_the_vote(self):
        """The searched strategy delays decisions at least as long as no
        adversary at all (and in practice pins the vote to the cap)."""
        baseline = SyncNetwork(make_processes(), t=0, seed=3).run()
        baseline_rounds = baseline.time_to_agreement()

        adversary = RolloutValencyAdversary(
            make_processes,
            engine_seed=3,
            config=RolloutConfig(rollouts=4, horizon=80),
            seed=1,
        )
        attacked = SyncNetwork(
            make_processes(), adversary=adversary, t=T, seed=3,
            max_rounds=200,
        ).run()
        try:
            attacked_rounds = attacked.time_to_agreement()
        except AssertionError:
            attacked_rounds = attacked.metrics.rounds
        assert attacked_rounds >= baseline_rounds
        assert adversary.evaluations > 0

    def test_budget_respected(self):
        adversary = RolloutValencyAdversary(
            make_processes,
            engine_seed=3,
            config=RolloutConfig(rollouts=2, horizon=60),
            seed=2,
        )
        result = SyncNetwork(
            make_processes(), adversary=adversary, t=2, seed=3,
            max_rounds=150,
        ).run()
        assert len(result.faulty) <= 2

    def test_zero_budget_degenerates_to_noop(self):
        adversary = RolloutValencyAdversary(
            make_processes,
            engine_seed=3,
            config=RolloutConfig(rollouts=2, horizon=60),
            seed=3,
        )
        result = SyncNetwork(
            make_processes(), adversary=adversary, t=0, seed=3
        ).run()
        assert result.faulty == frozenset()
        assert adversary.evaluations == 0  # menu collapses to the no-op
