"""The multicast fast path: batch semantics and golden equivalence.

The engine's contract is that ``SyncNetwork(multicast=True)`` (the default,
queueing one :class:`Multicast` record per ``broadcast``/``send_many``) and
``SyncNetwork(multicast=False)`` (the legacy path, expanding the same calls
into one eagerly-sized :class:`Message` per copy) produce *byte-identical*
executions: same decisions, same rounds, same value for every
:class:`Metrics` counter and per-round series, same flat adversary omit
indices.  These tests pin that contract down.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import SilenceAdversary
from repro.baselines.ben_or import BenOrVotingProcess
from repro.core import build_processes
from repro.runtime import (
    Adversary,
    AdversaryAction,
    AdversaryProtocolError,
    Message,
    MessageBatch,
    Multicast,
    NetworkView,
    SyncNetwork,
    SyncProcess,
    payload_bits,
    result_to_dict,
)
from repro.runtime.messages import MESSAGE_OVERHEAD_BITS


# ---------------------------------------------------------------------------
# MessageBatch: the flat per-copy sequence over mixed records.
def mixed_batch() -> MessageBatch:
    return MessageBatch(
        [
            Message(0, 3, (1, 2)),
            Multicast(1, (0, 2, 3), (7,)),
            Message(2, 1, 9),
        ]
    )


class TestMessageBatch:
    def test_len_counts_copies_not_records(self):
        batch = mixed_batch()
        assert len(batch.records) == 3
        assert len(batch) == 5

    def test_getitem_materializes_per_copy_views(self):
        batch = mixed_batch()
        endpoints = [(m.sender, m.recipient) for m in batch]
        assert endpoints == [(0, 3), (1, 0), (1, 2), (1, 3), (2, 1)]
        for index in range(len(batch)):
            view = batch[index]
            assert (view.sender, view.recipient) == endpoints[index]
            assert batch.endpoints_at(index) == endpoints[index]

    def test_negative_index_and_slice(self):
        batch = mixed_batch()
        assert (batch[-1].sender, batch[-1].recipient) == (2, 1)
        middle = batch[1:4]
        assert [(m.sender, m.recipient) for m in middle] == [
            (1, 0),
            (1, 2),
            (1, 3),
        ]

    def test_out_of_range_raises(self):
        batch = mixed_batch()
        with pytest.raises(IndexError):
            batch[5]
        with pytest.raises(IndexError):
            batch[-6]

    def test_total_bits_matches_per_copy_sum(self):
        batch = mixed_batch()
        assert batch.total_bits() == sum(m.bits for m in batch)

    def test_multicast_copies_share_payload_and_bits(self):
        batch = mixed_batch()
        copies = [batch[1], batch[2], batch[3]]
        expected = payload_bits((7,)) + MESSAGE_OVERHEAD_BITS
        for copy in copies:
            assert copy.payload is copies[0].payload
            assert copy.bits == expected

    def test_index_builders_match_naive_enumeration(self):
        batch = mixed_batch()
        by_sender: dict[int, list[int]] = {}
        by_recipient: dict[int, list[int]] = {}
        for index, message in enumerate(batch):
            by_sender.setdefault(message.sender, []).append(index)
            by_recipient.setdefault(message.recipient, []).append(index)
        assert batch.indices_by_sender() == by_sender
        assert batch.indices_by_recipient() == by_recipient

    def test_sender_sorted_flag(self):
        assert mixed_batch().sender_sorted
        unsorted = MessageBatch(
            [Message(2, 0, 1), Multicast(0, (1, 2), 5)]
        )
        assert not unsorted.sender_sorted


class TestNetworkViewHelpers:
    def view(self, batch):
        return NetworkView(
            round_no=0,
            processes=(),
            messages=batch,
            faulty=frozenset(),
            budget_left=0,
            decisions={},
            terminated=frozenset(),
        )

    def test_helpers_answer_from_records(self):
        batch = mixed_batch()
        view = self.view(batch)
        assert view.message_indices_from([1]) == frozenset({1, 2, 3})
        assert view.message_indices_to([3]) == frozenset({0, 3})
        assert view.message_indices_touching([2]) == frozenset({2, 4})


# ---------------------------------------------------------------------------
# The redesigned ProcessEnv API.
class Broadcaster(SyncProcess):
    """Broadcasts (round, pid) every round and records its inboxes."""

    rounds = 3

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.inboxes: list[list[tuple[int, int]]] = []

    def program(self, env):
        for round_no in range(self.rounds):
            env.broadcast((round_no, self.pid))
            inbox = yield
            self.inboxes.append(
                [(m.sender, m.payload[0]) for m in inbox]
            )
        env.decide(0)


class TestEnvApi:
    def network(self, n=4, **kwargs):
        return SyncNetwork(
            [Broadcaster(pid, n) for pid in range(n)], **kwargs
        )

    def test_broadcast_queues_one_record_per_round(self):
        network = self.network(n=4)
        result = network.run()
        # 3 broadcast rounds of 4 senders x 3 recipients each.
        assert result.metrics.messages_sent == 36
        for process in network.processes:
            for round_no, inbox in enumerate(process.inboxes):
                assert inbox == [
                    (sender, round_no)
                    for sender in range(4)
                    if sender != process.pid
                ]

    def test_send_many_validates_all_recipients_first(self):
        network = self.network(n=3)
        env = network.envs[0]
        with pytest.raises(ValueError):
            env.send_many([1, 7], "x")
        assert env.outbox == []

    def test_send_many_empty_is_a_noop(self):
        network = self.network(n=3)
        env = network.envs[0]
        env.send_many([], "x")
        assert env.outbox == []

    def test_broadcast_recipient_kwarg_and_include_self(self):
        network = self.network(n=4)
        env = network.envs[1]
        env.broadcast("a", recipients=(3, 0))
        env.broadcast("b", include_self=True)
        first, second = env.outbox
        assert first.recipients == (3, 0)
        assert second.recipients == (0, 1, 2, 3)

    def test_expand_multicast_matches_explicit_send_loop(self):
        fast = self.network(n=3)
        legacy = self.network(n=3, multicast=False)
        fast.envs[0].broadcast((1, 2, 3))
        legacy.envs[0].broadcast((1, 2, 3))
        (record,) = fast.envs[0].outbox
        assert type(record) is Multicast
        copies = legacy.envs[0].outbox
        assert [type(copy) for copy in copies] == [Message, Message]
        assert [
            (c.sender, c.recipient, c.payload, c.bits) for c in copies
        ] == [
            (record.sender, recipient, record.payload, record.bits)
            for recipient in record.recipients
        ]


# ---------------------------------------------------------------------------
# Adversary omit indices address flat per-copy positions.
class ScriptedOmitter(Adversary):
    """Corrupts ``corrupt`` in round 0 and omits fixed flat indices."""

    def __init__(self, corrupt=(), omit_by_round=None):
        self.corrupt = frozenset(corrupt)
        self.omit_by_round = dict(omit_by_round or {})

    def act(self, view):
        return AdversaryAction(
            corrupt=self.corrupt if view.round == 0 else frozenset(),
            omit=frozenset(self.omit_by_round.get(view.round, ())),
        )


class TestOmitIndexValidation:
    def network(self, adversary, n=4, t=1):
        return SyncNetwork(
            [Broadcaster(pid, n) for pid in range(n)],
            adversary=adversary,
            t=t,
        )

    def test_omission_drops_exactly_the_indexed_copy(self):
        # Round-0 batch (n=4, all-to-all): sender 0's copies are flat
        # indices 0..2 in recipient order (1, 2, 3).  Omitting index 1
        # must drop exactly the 0 -> 2 copy.
        network = self.network(ScriptedOmitter(corrupt=[0], omit_by_round={0: [1]}))
        result = network.run()
        by_pid = {process.pid: process for process in network.processes}
        assert by_pid[2].inboxes[0] == [(1, 0), (3, 0)]
        assert by_pid[1].inboxes[0] == [(0, 0), (2, 0), (3, 0)]
        assert by_pid[3].inboxes[0] == [(0, 0), (1, 0), (2, 0)]
        assert result.metrics.messages_omitted == 1
        assert result.metrics.messages_delivered == (
            result.metrics.messages_sent - 1
        )

    def test_out_of_range_index_rejected(self):
        network = self.network(
            ScriptedOmitter(corrupt=[0], omit_by_round={0: [12]})
        )
        with pytest.raises(AdversaryProtocolError):
            network.run()

    def test_non_faulty_copy_rejected_even_within_a_multicast(self):
        # Index 4 is sender 1's copy to recipient 2 (recipients (0, 2, 3)
        # at flat indices 3..5).  Neither endpoint is faulty, so omitting
        # it is illegal even though the sibling copy at index 3 (1 -> 0,
        # the faulty process) would be fair game.
        legal = self.network(
            ScriptedOmitter(corrupt=[0], omit_by_round={0: [3]})
        )
        legal.run()
        illegal = self.network(
            ScriptedOmitter(corrupt=[0], omit_by_round={0: [4]})
        )
        with pytest.raises(AdversaryProtocolError):
            illegal.run()


# ---------------------------------------------------------------------------
# Golden equivalence: the two paths are byte-identical end to end.
def canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestGoldenEquivalence:
    def test_algorithm1_under_omissions(self):
        prints = []
        for multicast in (True, False):
            network = SyncNetwork(
                build_processes([pid % 2 for pid in range(36)], t=1),
                adversary=SilenceAdversary([0]),
                t=1,
                seed=11,
                multicast=multicast,
            )
            prints.append(canonical(network.run()))
        assert prints[0] == prints[1]

    def test_ben_or_under_omissions(self):
        prints = []
        for multicast in (True, False):
            network = SyncNetwork(
                [
                    BenOrVotingProcess(pid, 24, pid % 2)
                    for pid in range(24)
                ],
                adversary=SilenceAdversary(range(4)),
                t=4,
                seed=6,
                multicast=multicast,
            )
            prints.append(canonical(network.run()))
        assert prints[0] == prints[1]

    def test_scripted_flat_indices_agree_across_paths(self):
        """The same explicit omit indices are legal and hit the same
        copies on both paths — the flat numbering is path-independent."""
        prints = []
        inbox_logs = []
        for multicast in (True, False):
            network = SyncNetwork(
                [Broadcaster(pid, 4) for pid in range(4)],
                adversary=ScriptedOmitter(
                    corrupt=[0], omit_by_round={0: [1], 1: [0, 2]}
                ),
                t=1,
                multicast=multicast,
            )
            prints.append(canonical(network.run()))
            inbox_logs.append(
                [process.inboxes for process in network.processes]
            )
        assert prints[0] == prints[1]
        assert inbox_logs[0] == inbox_logs[1]
