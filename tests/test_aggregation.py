"""Unit tests for GroupBitsAggregation (Algorithm 2) via a harness network.

One group is simulated in isolation: every process runs only the
aggregation sub-protocol and reports its result as its decision.
"""

import pytest

from repro.adversary import SilenceAdversary
from repro.core import cached_bag_tree
from repro.core.aggregation import group_bits_aggregation
from repro.params import ProtocolParams
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess


class AggregationHarness(SyncProcess):
    """Runs one aggregation over the whole pid range as a single group."""

    def __init__(self, pid, n, bit, operative=True, stage_budget=None):
        super().__init__(pid, n)
        self.bit = bit
        self.operative_in = operative
        self.stage_budget = stage_budget
        self.result = None

    def program(self, env: ProcessEnv):
        group = tuple(range(self.n))
        tree = cached_bag_tree(group)
        budget = (
            self.stage_budget
            if self.stage_budget is not None
            else tree.num_stages
        )
        result = yield from group_bits_aggregation(
            env,
            group,
            tree,
            self.operative_in,
            self.bit,
            ProtocolParams.practical(),
            budget,
        )
        self.result = result
        env.decide((result.ones, result.zeros, result.operative))
        return None


def run_group(bits, adversary=None, t=0, operative=None, stage_budget=None):
    n = len(bits)
    processes = [
        AggregationHarness(
            pid,
            n,
            bits[pid],
            operative=True if operative is None else operative[pid],
            stage_budget=stage_budget,
        )
        for pid in range(n)
    ]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=1)
    result = network.run()
    return result, processes


class TestFaultFreeAggregation:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16])
    def test_exact_counts(self, n):
        bits = [pid % 2 for pid in range(n)]
        result, _ = run_group(bits)
        expected = (sum(bits), n - sum(bits), True)
        for pid in range(n):
            assert result.decisions[pid] == expected

    def test_all_ones(self):
        result, _ = run_group([1] * 9)
        assert result.decisions[0] == (9, 0, True)

    def test_all_zeros(self):
        result, _ = run_group([0] * 9)
        assert result.decisions[0] == (0, 9, True)

    def test_rounds_equal_three_per_stage(self):
        n = 8
        tree = cached_bag_tree(tuple(range(n)))
        result, _ = run_group([1] * n)
        assert result.rounds == 3 * tree.num_stages

    def test_stage_budget_padding_keeps_lockstep(self):
        """Groups padded to a larger global budget still return correctly."""
        result, _ = run_group([1, 0, 1], stage_budget=5)
        assert result.decisions[0] == (2, 1, True)
        assert result.rounds == 15


class TestInoperativeInputs:
    def test_initially_inoperative_not_counted(self):
        bits = [1, 1, 1, 0, 0, 0]
        operative = [True, True, False, True, False, True]
        result, _ = run_group(bits, operative=operative)
        # pids 2 (bit 1) and 4 (bit 0) are not counted.
        for pid in (0, 1, 3, 5):
            assert result.decisions[pid] == (2, 2, True)

    def test_inoperative_returns_zero_counts(self):
        result, _ = run_group(
            [1, 1, 1, 1], operative=[True, True, True, False]
        )
        assert result.decisions[3] == (0, 0, False)

    def test_inoperative_still_relays(self):
        """An inoperative member still transmits, so operative members keep
        their quorums even when it is the only bridge... here simply: counts
        stay exact despite half the group being inoperative."""
        bits = [1, 0, 1, 0, 1, 0, 1, 0]
        operative = [True, False, True, False, True, False, True, False]
        result, _ = run_group(bits, operative=operative)
        assert result.decisions[0] == (4, 0, True)


class TestAggregationUnderOmissions:
    def test_silenced_member_not_counted_others_exact(self):
        """Silencing one faulty member: its bit disappears; the remaining
        operative processes agree on the reduced counts."""
        bits = [1, 1, 1, 1, 0, 0, 0, 0, 1]
        result, processes = run_group(
            bits, adversary=SilenceAdversary([4]), t=1
        )
        survivors = [pid for pid in range(9) if pid != 4]
        values = {result.decisions[pid] for pid in survivors}
        assert values == {(5, 3, True)}

    def test_silenced_member_goes_inoperative(self):
        bits = [1] * 9
        result, _ = run_group(bits, adversary=SilenceAdversary([2]), t=1)
        ones, zeros, operative = result.decisions[2]
        assert not operative

    def test_majority_silenced_group_collapses(self):
        """With more than half the group silenced, survivors lose the
        GroupRelay confirmation quorum and go inoperative (Lemma-7 edge)."""
        n = 9
        silenced = list(range(5))
        result, _ = run_group(
            [1] * n, adversary=SilenceAdversary(silenced), t=5
        )
        for pid in range(5, n):
            ones, zeros, operative = result.decisions[pid]
            assert not operative

    def test_counts_differ_at_most_by_knockouts(self):
        """Lemma 1/2 consequence: operative results differ by at most the
        number of processes that became inoperative."""
        bits = [pid % 2 for pid in range(16)]
        result, processes = run_group(
            bits, adversary=SilenceAdversary([1, 3]), t=2
        )
        operative_totals = [
            ones + zeros
            for (ones, zeros, operative) in result.decisions.values()
            if operative
        ]
        knocked_out = sum(
            1
            for (_, _, operative) in result.decisions.values()
            if not operative
        )
        assert max(operative_totals) - min(operative_totals) <= knocked_out
