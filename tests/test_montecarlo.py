"""Tests for the Monte-Carlo analysis helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    agreement_failure_rate,
    decision_bias,
    estimate_rate,
    fallback_rate_vs_epochs,
    wilson_interval,
)
from repro.core import run_consensus


class TestWilson:
    def test_extremes(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.35
        low, high = wilson_interval(10, 10)
        assert high > 0.999999 and low > 0.65

    def test_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert math.isclose(high - 0.5, 0.5 - low, abs_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_interval_brackets_point_estimate(self, trials, successes):
        if successes > trials:
            successes = trials
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    @given(st.integers(min_value=1, max_value=60))
    def test_interval_narrows_with_trials(self, successes):
        narrow = wilson_interval(successes, 60)
        wide = wilson_interval(successes * 10, 600)
        assert (wide[1] - wide[0]) < (narrow[1] - narrow[0])


class TestEstimateRate:
    def test_deterministic_trial(self):
        estimate = estimate_rate(lambda seed: seed % 2 == 0, trials=10)
        assert estimate.successes == 5
        assert estimate.rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_rate(lambda seed: True, trials=0)

    def test_str_format(self):
        estimate = estimate_rate(lambda seed: True, trials=4)
        assert "(4/4)" in str(estimate)


class TestPaperExperiments:
    def test_fallback_rate_decays_with_epochs(self):
        """Lemma-10 ablation: more epochs, fewer fallbacks (on small
        samples we assert weak monotonicity between the extremes)."""
        rates = fallback_rate_vs_epochs(
            36, epoch_counts=[1, 8], trials=8, seed=1
        )
        assert rates[0][0] == 1 and rates[1][0] == 8
        assert rates[1][1].rate <= rates[0][1].rate

    def test_decision_bias_is_a_rate(self):
        estimate = decision_bias(36, trials=6, seed=2)
        assert 0.0 <= estimate.rate <= 1.0

    def test_agreement_failure_rate_zero_for_real_protocol(self):
        estimate = agreement_failure_rate(
            lambda seed: run_consensus(
                [pid % 2 for pid in range(36)], t=1, seed=seed
            ),
            trials=4,
            seed=3,
        )
        assert estimate.successes == 0

    def test_agreement_failure_rate_detects_violations(self):
        class Broken:
            @property
            def decision(self):
                raise AssertionError("agreement violated")

        estimate = agreement_failure_rate(lambda seed: Broken(), trials=3)
        assert estimate.rate == 1.0
