"""Tests for the Talagrand-inequality numeric verification (Theorem 6)."""

import math

from hypothesis import given, settings, strategies as st

from repro.lowerbound import (
    binomial_tail_geq,
    binomial_tail_lt,
    check_threshold_point,
    verify_threshold_inequality,
)


class TestBinomialTails:
    def test_exact_small_cases(self):
        assert binomial_tail_geq(2, 0) == 1.0
        assert binomial_tail_geq(2, 1) == 0.75
        assert binomial_tail_geq(2, 2) == 0.25
        assert binomial_tail_geq(2, 3) == 0.0

    def test_lt_complements_geq(self):
        for k in (5, 12):
            for s in range(k + 1):
                assert math.isclose(
                    binomial_tail_lt(k, s) + binomial_tail_geq(k, s), 1.0
                )

    def test_lt_fractional_threshold(self):
        # Pr[Bin < 1.5] == Pr[Bin <= 1].
        assert math.isclose(
            binomial_tail_lt(4, 1.5), binomial_tail_lt(4, 2.0)
        )

    @given(st.integers(min_value=1, max_value=60))
    def test_median_mass(self, k):
        assert binomial_tail_geq(k, (k + 1) // 2 + 1) <= 0.5 + 1e-12


class TestInequality:
    def test_single_point(self):
        check = check_threshold_point(64, 40, 1.0)
        assert check.holds
        assert check.lhs <= check.rhs

    def test_grid_has_no_violations(self):
        checks = verify_threshold_inequality(
            [8, 32, 128, 512], [0.25, 0.5, 1.0, 2.0, 4.0]
        )
        assert checks, "grid must be non-empty"
        violations = [check for check in checks if not check.holds]
        assert violations == []

    @settings(max_examples=100)
    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=0, max_value=400),
        st.floats(min_value=0.0, max_value=8.0),
    )
    def test_inequality_property(self, k, s, t):
        """Theorem 6 instantiated on threshold sets holds everywhere."""
        if s > k:
            s = k
        check = check_threshold_point(k, s, t)
        assert check.holds

    def test_tight_regime_is_nontrivial(self):
        """At the mean with small t both sides are meaningfully large, so
        the check is not vacuous."""
        check = check_threshold_point(100, 50, 0.5)
        assert check.lhs > 0.05
        assert check.rhs < 1.0
