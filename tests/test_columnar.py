"""The columnar (numpy) engine path: layout, laziness, golden equivalence.

The contract mirrors PR 4's multicast one, one axis over: ``SyncNetwork``
now has a 2x2 engine grid — send path (``multicast=True``/``False``) x
delivery path (``columnar=True``/``False``) — and every cell must produce
*byte-identical* executions: same decisions, same rounds, same value for
every :class:`Metrics` counter, same flat omit indices, same replay
fingerprints.  These tests pin the columnar layout itself (arrays match a
naive per-copy enumeration), the lazy ``Message`` views (inboxes
materialize only when read), the metering-precedence and duplicate-omit
bugfixes, and the randomized differential property over
:class:`ChaosAdversary` schedules.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import ChaosAdversary, SilenceAdversary
from repro.baselines.ben_or import BenOrVotingProcess
from repro.harness import execute
from repro.replay import InvariantObserver, load_recipe, record, replay
from repro.runtime import (
    Adversary,
    AdversaryAction,
    AdversaryProtocolError,
    ColumnarBatch,
    LazyMessageList,
    Message,
    MessageBatch,
    Multicast,
    RoundObserver,
    SyncNetwork,
    SyncProcess,
    canonical_omissions,
    result_to_dict,
)
from repro.runtime.columnar import HAVE_NUMPY, plan_delivery

from .test_multicast import Broadcaster, ScriptedOmitter
from .test_replay import GOLDEN

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar engine requires numpy"
)

ENGINE_GRID = [
    (multicast, columnar)
    for multicast in (True, False)
    for columnar in (True, False)
]


def canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def mixed_batch() -> MessageBatch:
    return MessageBatch(
        [
            Message(0, 3, (1, 2)),
            Multicast(1, (0, 2, 3), (7,)),
            Message(2, 1, 9),
            Multicast(3, (1,), "x"),
        ]
    )


# ---------------------------------------------------------------------------
# The columnar layout itself.
class TestColumnarBatch:
    def test_columns_match_naive_enumeration(self):
        batch = mixed_batch()
        cols = batch.columns()
        flat = list(batch)
        assert cols.total_copies == len(batch)
        assert cols.copy_sender.tolist() == [m.sender for m in flat]
        assert cols.copy_recipient.tolist() == [m.recipient for m in flat]
        assert cols.copy_bits.tolist() == [m.bits for m in flat]
        assert cols.rec_offset.tolist() == batch.offsets
        assert cols.total_bits() == batch.total_bits()

    def test_copy_record_indexes_the_payload_table(self):
        batch = mixed_batch()
        cols = batch.columns()
        for index in range(len(batch)):
            record_position = int(cols.copy_record[index])
            assert batch.records[record_position].payload is (
                batch[index].payload
            )

    def test_columns_are_cached_per_batch(self):
        batch = mixed_batch()
        assert batch.columns() is batch.columns()

    def test_fanout_cache_reuses_tuple_conversions(self):
        recipients = (0, 2, 3)
        cache: dict = {}
        first = ColumnarBatch.from_records(
            [Multicast(1, recipients, (7,))], cache
        )
        second = ColumnarBatch.from_records(
            [Multicast(4, recipients, (9,))], cache
        )
        assert len(cache) == 1
        assert first.copy_recipient.tolist() == (
            second.copy_recipient.tolist()
        )

    def test_empty_batch(self):
        cols = MessageBatch([]).columns()
        assert cols.total_copies == 0
        assert cols.total_bits() == 0


class TestLazyMessageList:
    def test_len_and_bool_do_not_materialize(self):
        batch = mixed_batch()
        cols = batch.columns()
        view = LazyMessageList(cols, cols.all_copies)
        assert len(view) == len(batch)
        assert bool(view)
        assert view._items is None

    def test_materialized_views_match_object_path(self):
        batch = mixed_batch()
        cols = batch.columns()
        view = LazyMessageList(cols, cols.all_copies)
        for lazy, eager in zip(view, batch):
            assert (lazy.sender, lazy.recipient, lazy.bits) == (
                eager.sender,
                eager.recipient,
                eager.bits,
            )
            assert lazy.payload is eager.payload
        assert view._items is not None
        assert view[0] is view[0]  # cached after first access


class TestPlanDelivery:
    def test_clean_round_delivers_everything_grouped(self):
        batch = mixed_batch()
        plan = plan_delivery(batch.columns(), (), None)
        assert plan.delivered_bits == batch.total_bits()
        assert plan.lost_bits == 0
        assert len(plan.lost) == 0
        owners = [owner for owner, _ in plan.inboxes]
        assert owners == sorted(owners)
        grouped = {
            owner: [(m.sender, m.recipient) for m in inbox]
            for owner, inbox in plan.inboxes
        }
        want: dict[int, list[tuple[int, int]]] = {}
        for message in batch:
            want.setdefault(message.recipient, []).append(
                (message.sender, message.recipient)
            )
        assert grouped == want

    def test_omission_precedence_over_terminated_recipient(self):
        # Copy 1 (1 -> 0) is both omitted and addressed to a terminated
        # recipient: it must count as omitted (excluded from delivered
        # AND from lost).  Copy 0 (0 -> 3) to the live world delivers;
        # the un-omitted copy to recipient 0 is lost.
        batch = mixed_batch()
        live = [False, True, True, True]
        plan = plan_delivery(batch.columns(), (1,), live)
        delivered = [(m.sender, m.recipient) for m in plan.delivered]
        lost = [(m.sender, m.recipient) for m in plan.lost]
        assert (1, 0) not in delivered and (1, 0) not in lost
        assert lost == []  # no other copy addresses recipient 0
        assert len(delivered) == len(batch) - 1

    def test_lost_copies_in_flat_order(self):
        batch = MessageBatch(
            [Multicast(1, (0, 2, 0), (7,)), Message(2, 0, 5)]
        )
        live = [False, True, True]
        plan = plan_delivery(batch.columns(), (), live)
        assert [(m.sender, m.recipient) for m in plan.lost] == [
            (1, 0),
            (1, 0),
            (2, 0),
        ]
        assert plan.lost_bits == sum(m.bits for m in plan.lost)
        assert plan.delivered_bits == sum(m.bits for m in plan.delivered)


# ---------------------------------------------------------------------------
# Engine integration: the 2x2 grid is byte-identical end to end.
class TestEngineGridEquivalence:
    def ben_or_result(self, multicast, columnar):
        network = SyncNetwork(
            [BenOrVotingProcess(pid, 24, pid % 2) for pid in range(24)],
            adversary=SilenceAdversary(range(4)),
            t=4,
            seed=6,
            multicast=multicast,
            columnar=columnar,
        )
        return network.run()

    def test_ben_or_identical_across_grid(self):
        prints = {
            cell: canonical(self.ben_or_result(*cell)) for cell in ENGINE_GRID
        }
        assert len(set(prints.values())) == 1

    def test_scripted_omissions_identical_across_grid(self):
        prints = []
        inbox_logs = []
        for multicast, columnar in ENGINE_GRID:
            network = SyncNetwork(
                [Broadcaster(pid, 4) for pid in range(4)],
                adversary=ScriptedOmitter(
                    corrupt=[0], omit_by_round={0: [1], 1: [0, 2]}
                ),
                t=1,
                multicast=multicast,
                columnar=columnar,
            )
            prints.append(canonical(network.run()))
            inbox_logs.append(
                [process.inboxes for process in network.processes]
            )
        assert len(set(prints)) == 1
        assert all(log == inbox_logs[0] for log in inbox_logs)

    def test_omit_validation_errors_match_object_path(self):
        for omit, fragment in (
            ([12], "out of range"),
            ([4], "touches none"),
        ):
            errors = []
            for columnar in (True, False):
                network = SyncNetwork(
                    [Broadcaster(pid, 4) for pid in range(4)],
                    adversary=ScriptedOmitter(
                        corrupt=[0], omit_by_round={0: omit}
                    ),
                    t=1,
                    columnar=columnar,
                )
                with pytest.raises(AdversaryProtocolError) as excinfo:
                    network.run()
                errors.append(str(excinfo.value))
            assert errors[0] == errors[1]
            assert fragment in errors[0]

    def test_mixed_legal_illegal_names_first_sorted_offender(self):
        # Sorted-order semantics: with {3 (legal), 12 (out of range)} the
        # offender named must be 12 on both paths; with {4 (illegal
        # endpoints), 12} the range error at 12 fires only after 4's
        # endpoint check passes -- 4 is first in sorted order and must win.
        errors = {}
        for columnar in (True, False):
            network = SyncNetwork(
                [Broadcaster(pid, 4) for pid in range(4)],
                adversary=ScriptedOmitter(
                    corrupt=[0], omit_by_round={0: [4, 12]}
                ),
                t=1,
                columnar=columnar,
            )
            with pytest.raises(AdversaryProtocolError) as excinfo:
                network.run()
            errors[columnar] = str(excinfo.value)
        assert errors[True] == errors[False]
        assert "1->2" in errors[True]

    def test_columnar_true_without_numpy_raises(self, monkeypatch):
        import repro.runtime.network as network_module

        monkeypatch.setattr(network_module, "HAVE_NUMPY", False)
        processes = [Broadcaster(pid, 2) for pid in range(2)]
        with pytest.raises(ValueError, match="requires numpy"):
            SyncNetwork(processes, columnar=True)
        auto = SyncNetwork(processes, columnar=None)
        assert auto.columnar is False


class SilentSink(SyncProcess):
    """Broadcasts every round but never reads a single inbox message."""

    rounds = 3

    def program(self, env):
        for _ in range(self.rounds):
            env.broadcast((self.pid,))
            yield
        env.decide(0)


class InboxSpy(RoundObserver):
    def __init__(self):
        self.delivered_types: list[type] = []
        self.unmaterialized = 0

    def on_deliveries(self, round_no, delivered, lost, network):
        self.delivered_types.append(type(delivered))
        if (
            isinstance(delivered, LazyMessageList)
            and delivered._items is None
        ):
            self.unmaterialized += 1


class TestLazyDelivery:
    def test_unread_inboxes_never_materialize(self):
        spy = InboxSpy()
        network = SyncNetwork(
            [SilentSink(pid, 8) for pid in range(8)],
            columnar=True,
            observers=[spy],
        )
        result = network.run()
        # Every delivery round handed observers a lazy view, and since the
        # metrics observer only needs len() + the engine's bit totals, no
        # per-copy Message was ever constructed.
        assert spy.delivered_types == [LazyMessageList] * SilentSink.rounds
        assert spy.unmaterialized == SilentSink.rounds
        assert result.metrics.messages_delivered == 8 * 7 * SilentSink.rounds

    def test_hand_built_unsorted_batch_falls_back_to_object_path(self):
        network = SyncNetwork(
            [Broadcaster(pid, 3) for pid in range(3)], columnar=True
        )
        unsorted = MessageBatch(
            [Message(2, 0, "b"), Multicast(0, (1, 2), "a")]
        )
        assert not unsorted.sender_sorted
        network._deliver(unsorted, ())
        # Object-path delivery: plain list inboxes, sender-sorted order.
        assert [
            (m.sender, m.payload) for m in network._inboxes[1]
        ] == [(0, "a")]
        assert [
            (m.sender, m.payload) for m in network._inboxes[2]
        ] == [(0, "a")]
        assert [
            (m.sender, m.payload) for m in network._inboxes[0]
        ] == [(2, "b")]


# ---------------------------------------------------------------------------
# Bugfix: metering precedence (omitted beats lost) on every engine path.
class Quitter(SyncProcess):
    """Broadcasts once and terminates immediately (before delivery)."""

    def program(self, env):
        env.broadcast((self.pid,))
        env.decide(0)
        return
        yield  # pragma: no cover - makes this a generator

class Talker(SyncProcess):
    """Broadcasts once, reads one inbox, decides."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.heard: list[tuple[int, int]] = []

    def program(self, env):
        env.broadcast((self.pid,))
        inbox = yield
        self.heard = [(m.sender, m.recipient) for m in inbox]
        env.decide(0)


class TestMeteringPrecedence:
    """Round-0 batch (n=3, all-to-all): flat index 2 is the 1 -> 0 copy,
    flat index 4 the 2 -> 0 copy.  Process 0 terminates during round 0's
    local phase, so both copies address a terminated recipient; the
    adversary corrupts 1 and omits index 2.  The overlap copy must count
    as omitted (not lost, not dropped from the identity), the un-omitted
    copy 4 as lost."""

    def run_cell(self, multicast, columnar):
        processes = [
            Quitter(0, 3),
            Talker(1, 3),
            Talker(2, 3),
        ]
        network = SyncNetwork(
            processes,
            adversary=ScriptedOmitter(corrupt=[1], omit_by_round={0: [2]}),
            t=1,
            multicast=multicast,
            columnar=columnar,
            observers=[InvariantObserver()],
        )
        return network, network.run()

    @pytest.mark.parametrize("multicast,columnar", ENGINE_GRID)
    def test_overlap_copy_is_omitted_not_lost(self, multicast, columnar):
        network, result = self.run_cell(multicast, columnar)
        metrics = result.metrics
        assert metrics.messages_sent == 6
        assert metrics.messages_omitted == 1
        assert metrics.messages_lost == 1  # only the 2 -> 0 copy
        assert metrics.messages_delivered == 4
        assert (
            metrics.messages_delivered
            + metrics.messages_omitted
            + metrics.messages_lost
            == metrics.messages_sent
        )

    def test_fingerprints_identical_across_grid(self):
        prints = {
            cell: canonical(self.run_cell(*cell)[1]) for cell in ENGINE_GRID
        }
        assert len(set(prints.values())) == 1


# ---------------------------------------------------------------------------
# Bugfix: duplicate omit indices are canonicalized at one choke point.
class DuplicateOmitter(Adversary):
    """Emits the same flat omit index three times in round 0 (legal per
    the model -- omitting a message twice is omitting it once -- but
    previously double-counted by metering and recorded verbatim)."""

    def act(self, view):
        if view.round == 0:
            return AdversaryAction(
                corrupt=frozenset({0}), omit=(1, 1, 1)  # type: ignore[arg-type]
            )
        return AdversaryAction.nothing()


class TestDuplicateOmissions:
    def test_canonical_omissions_sorts_and_dedupes(self):
        assert canonical_omissions([3, 1, 3, 3, 2]) == (1, 2, 3)
        assert canonical_omissions(()) == ()

    @pytest.mark.parametrize("multicast,columnar", ENGINE_GRID)
    def test_duplicates_meter_and_execute_as_one(self, multicast, columnar):
        def run(adversary):
            network = SyncNetwork(
                [Broadcaster(pid, 4) for pid in range(4)],
                adversary=adversary,
                t=1,
                multicast=multicast,
                columnar=columnar,
                observers=[InvariantObserver()],
            )
            return network.run()

        duplicated = run(DuplicateOmitter())
        deduped = run(ScriptedOmitter(corrupt=[0], omit_by_round={0: [1]}))
        assert duplicated.metrics.messages_omitted == 1
        assert canonical(duplicated) == canonical(deduped)

    def test_recorded_recipe_round_trips_through_strict_replay(self):
        recorded = record(
            "ben-or",
            [pid % 2 for pid in range(8)],
            t=1,
            adversary=DuplicateOmitter(),
            seed=3,
        )
        assert not recorded.failed
        (action,) = [a for a in recorded.recipe.actions if a.omit]
        assert action.omit == (1,)  # canonical in the recording itself
        for multicast, columnar in ENGINE_GRID:
            report = replay(
                recorded.recipe,
                strict=True,
                multicast=multicast,
                columnar=columnar,
            )
            assert report.ok, report.summary()

    def test_legacy_recipe_with_duplicates_parses_canonical(self):
        from repro.replay.recipe import recipe_from_payload, recipe_payload

        recorded = record(
            "ben-or",
            [pid % 2 for pid in range(8)],
            t=1,
            adversary=DuplicateOmitter(),
            seed=3,
        )
        payload = recipe_payload(recorded.recipe)
        # Simulate a pre-canonicalization artifact with raw duplicates.
        for entry in payload["actions"]:
            if entry["omit"]:
                entry["omit"] = [1, 1, 1]
        parsed = recipe_from_payload(payload)
        (action,) = [a for a in parsed.actions if a.omit]
        assert action.omit == (1,)
        assert replay(parsed, strict=True).ok


# ---------------------------------------------------------------------------
# Randomized differential property: chaos schedules across the grid.
CHAOS_CELLS = [
    ("ben-or", 21, 4, seed) for seed in (0, 1, 2, 3)
] + [("phase-king", 13, 3, seed) for seed in (0, 1, 2)]


class TestChaosDifferential:
    @pytest.mark.parametrize("protocol,n,t,seed", CHAOS_CELLS)
    def test_columnar_matches_object_engine(self, protocol, n, t, seed):
        """Same protocol, same seed, a fresh ChaosAdversary per engine
        config (its RNG is stateful): decisions, rounds, every metrics
        counter, and the full serialized result must agree across the
        whole multicast x columnar grid."""
        inputs = [pid % 2 for pid in range(n)]
        prints = {}
        for multicast, columnar in ENGINE_GRID:
            run = execute(
                protocol,
                inputs,
                t=t,
                adversary=ChaosAdversary(seed=seed),
                seed=seed,
                multicast=multicast,
                columnar=columnar,
            )
            prints[(multicast, columnar)] = canonical(run.result)
        assert len(set(prints.values())) == 1

    @pytest.mark.parametrize("protocol,n,t,seed", CHAOS_CELLS[:2] + CHAOS_CELLS[-1:])
    def test_chaos_recording_replays_across_grid(self, protocol, n, t, seed):
        inputs = [pid % 2 for pid in range(n)]
        recorded = record(
            protocol,
            inputs,
            t=t,
            adversary=ChaosAdversary(seed=seed),
            seed=seed,
            columnar=True,
        )
        assert not recorded.failed
        assert recorded.recipe.columnar is True
        for multicast, columnar in ENGINE_GRID:
            report = replay(
                recorded.recipe, multicast=multicast, columnar=columnar
            )
            assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# The golden artifact certifies all four engine paths.
class TestGoldenAcrossGrid:
    @pytest.mark.parametrize("multicast,columnar", ENGINE_GRID)
    def test_golden_ben_or_replays_byte_identical(self, multicast, columnar):
        report = replay(
            load_recipe(GOLDEN), multicast=multicast, columnar=columnar
        )
        assert report.ok, report.summary()
