"""Tests for repro.fabric: cell identity, the content-addressed cache,
work-stealing dispatch, the directory transport, and the query layer."""

import json
import multiprocessing
import os

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    run_campaign,
    summarize_campaign,
)
from repro.fabric import (
    CampaignCache,
    CellId,
    CellTask,
    DirectoryClaims,
    FabricDispatcher,
    StealScheduler,
    await_cells,
    canonical_json,
    estimated_cost,
    open_cache,
    query,
)
from repro.harness import capability_fingerprint


def make_cell(**overrides):
    base = dict(
        protocol="algorithm1", n=33, t=8, adversary="none", seed=0
    )
    base.update(overrides)
    return CellId.make(**base)


def small_spec(**overrides):
    base = dict(
        name="fabric-test",
        protocol="algorithm1",
        ns=[33],
        adversaries=["none", "silence"],
        seeds=[0],
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ---------------------------------------------------------------------------
# CellId
class TestCellId:
    def test_digest_is_stable(self):
        assert make_cell().digest == make_cell().digest

    @pytest.mark.parametrize(
        "change",
        [
            {"protocol": "phase-king"},
            {"n": 65},
            {"t": 9},
            {"t": None},
            {"adversary": "silence"},
            {"seed": 1},
            {"options": {"x": 3}},
            {"model": "lockstep"},
            {"model": "partial-synchrony", "model_options": {"gst": 2}},
            {"engine": "cells-v1+schema-v1"},
        ],
    )
    def test_every_identity_component_changes_the_digest(self, change):
        assert make_cell(**change).digest != make_cell().digest

    def test_option_order_is_canonicalized(self):
        a = make_cell(options={"b": 1, "a": 2})
        b = make_cell(options={"a": 2, "b": 1})
        assert a == b and a.digest == b.digest

    def test_none_options_mean_empty(self):
        assert make_cell(options=None) == make_cell(options={})
        assert canonical_json(None) == "{}"

    def test_engine_defaults_to_current_fingerprint(self):
        assert make_cell().engine == capability_fingerprint()

    def test_from_record_tolerates_legacy_shapes(self):
        legacy = {
            "protocol": "algorithm1",
            "n": 33,
            "t": 8,
            "adversary": "none",
            "seed": 0,
        }
        cell = CellId.from_record(legacy)
        assert cell == make_cell()

    def test_from_record_rejects_non_cell_records(self):
        assert CellId.from_record({"note": "hello"}) is None
        assert CellId.from_record({}) is None

    def test_payload_round_trips(self):
        cell = make_cell(options={"x": 4}, model="lockstep")
        assert CellId.from_payload(cell.payload()) == cell

    def test_sorting_mixed_model_axis(self):
        cells = [make_cell(model="lockstep"), make_cell(), make_cell(seed=1)]
        ordered = sorted(cells)
        assert [c.digest for c in ordered] == sorted(c.digest for c in cells)

    def test_str_names_the_cell(self):
        text = str(make_cell(model="lockstep"))
        assert text.startswith("algorithm1:n33:none:s0:lockstep:")


# ---------------------------------------------------------------------------
# CampaignCache
class TestCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        record = {"rounds": 5, "decision": 1}
        cache.put(cell, record)
        assert cache.get(cell) == record
        assert cache.contains(cell)
        assert len(cache) == 1

    def test_miss_then_hit_accounting(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        assert cache.get(cell) is None
        cache.put(cell, {"rounds": 1})
        cache.get(cell)
        stats = cache.stats.as_dict()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["puts"] == 1
        assert stats["hit_rate"] == 0.5

    def test_contains_has_no_stats_side_effects(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        assert not cache.contains(make_cell())
        assert cache.stats.misses == 0

    def test_corrupted_entry_is_quarantined_and_recomputable(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        path = cache.put(cell, {"rounds": 5})
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(cell) is None
        assert cache.stats.invalid == 1
        assert path.with_name(path.name + ".quarantine").exists()
        # The recompute path publishes cleanly over the hole.
        cache.put(cell, {"rounds": 5})
        assert cache.get(cell) == {"rounds": 5}

    def test_truncated_entry_detected(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        path = cache.put(cell, {"rounds": 5, "decision": 1})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(cell) is None
        assert path.with_name(path.name + ".quarantine").exists()

    def test_wrong_identity_entry_detected(self, tmp_path):
        """An entry whose stored identity does not re-digest to its
        filename (bitrot, a bad copy) must read as a miss, not as the
        other cell's answer."""
        cache = CampaignCache(tmp_path / "cache")
        victim, other = make_cell(), make_cell(seed=99)
        source = cache.put(other, {"rounds": 9})
        target = cache.entry_path(victim)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert cache.get(victim) is None
        assert target.with_name(target.name + ".quarantine").exists()

    def test_failure_recipe_rides_along(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        cache.put(cell, {"failed": True}, recipe={"schema": 2, "seed": 0})
        assert cache.get_recipe(cell) == {"schema": 2, "seed": 0}
        assert cache.get_recipe(make_cell(seed=1)) is None

    def test_scan_yields_verified_entries(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cells = [make_cell(seed=s) for s in range(3)]
        for index, cell in enumerate(cells):
            cache.put(cell, {"rounds": index})
        entries = list(cache.scan())
        assert len(entries) == 3
        assert {e["digest"] for e in entries} == {c.digest for c in cells}

    def test_concurrent_writers_race_atomically(self, tmp_path):
        """Racing writers on one cell each publish a complete entry; the
        survivor verifies and no temp files are left behind."""
        root = tmp_path / "cache"
        cell = make_cell()
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        procs = [
            context.Process(target=_racing_put, args=(root, seed))
            for seed in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        reader = CampaignCache(root)
        record = reader.get(cell)
        assert record == {"rounds": 7, "decision": 1}
        assert list((root / "objects").rglob(".tmp-*")) == []


def _racing_put(root, seed):
    cache = CampaignCache(root)
    cell = CellId.make(
        protocol="algorithm1", n=33, t=8, adversary="none", seed=0
    )
    for _ in range(20):
        cache.put(cell, {"rounds": 7, "decision": 1})


# ---------------------------------------------------------------------------
# StealScheduler
class TestStealScheduler:
    def tasks(self, costs):
        return [
            CellTask(index=i, payload=f"task-{i}", cost=cost)
            for i, cost in enumerate(costs)
        ]

    def drain(self, scheduler, worker):
        out = []
        while (task := scheduler.next_for(worker)) is not None:
            out.append(task)
        return out

    def test_single_worker_drains_everything_once(self):
        tasks = self.tasks([1, 2, 3, 4])
        scheduler = StealScheduler(tasks, workers=1)
        drained = self.drain(scheduler, 0)
        assert sorted(t.index for t in drained) == [0, 1, 2, 3]
        assert scheduler.steals == 0
        assert scheduler.remaining() == 0

    def test_lpt_balances_load(self):
        scheduler = StealScheduler(self.tasks([8, 1, 1, 1, 1, 4]), workers=2)
        assert sorted(scheduler.loads) == [8.0, 8.0]

    def test_idle_worker_steals_cheapest_from_most_loaded(self):
        # Worker 0 gets the heavy task, worker 1 the three light ones.
        scheduler = StealScheduler(self.tasks([10, 2, 2, 2]), workers=2)
        own = scheduler.next_for(0)
        assert own.cost == 10
        # Worker 0 is now empty; its next call steals from worker 1's
        # tail — the cheapest end of the victim's shard.
        stolen = scheduler.next_for(0)
        assert stolen is not None and stolen.cost == 2
        assert scheduler.steals == 1

    def test_every_task_scheduled_exactly_once_with_stealing(self):
        tasks = self.tasks([5, 4, 3, 2, 1, 1, 1])
        scheduler = StealScheduler(tasks, workers=3)
        seen = []
        # Round-robin the workers so all of them go idle and steal.
        worker = 0
        while scheduler.remaining():
            task = scheduler.next_for(worker % 3)
            if task is not None:
                seen.append(task.index)
            worker += 1
        assert sorted(seen) == list(range(7))

    def test_schedule_is_deterministic(self):
        costs = [3, 1, 4, 1, 5, 9, 2, 6]
        a = StealScheduler(self.tasks(costs), workers=3)
        b = StealScheduler(self.tasks(costs), workers=3)
        assert [list(s) for s in a.shards] == [list(s) for s in b.shards]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            StealScheduler([], workers=0)

    def test_estimated_cost_grows_quadratically(self):
        assert estimated_cost(10) == 100.0
        assert estimated_cost(20) == 4 * estimated_cost(10)


# ---------------------------------------------------------------------------
# FabricDispatcher
def _square(payload):
    return payload * payload


def _explode(payload):
    raise ValueError(f"boom on {payload}")


class TestDispatcher:
    def test_runs_every_task_once(self):
        tasks = [
            CellTask(index=i, payload=i, cost=float(i + 1)) for i in range(7)
        ]
        results = {}
        FabricDispatcher(jobs=3).run(
            tasks, _square, lambda task, result: results.update(
                {task.index: result}
            )
        )
        assert results == {i: i * i for i in range(7)}

    def test_worker_failure_surfaces_as_runtime_error(self):
        tasks = [CellTask(index=0, payload="x")]
        with pytest.raises(RuntimeError, match="boom on x"):
            FabricDispatcher(jobs=1).run(tasks, _explode, lambda t, r: None)

    def test_empty_task_list_is_a_no_op(self):
        FabricDispatcher(jobs=2).run([], _square, lambda t, r: None)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            FabricDispatcher(jobs=0)


# ---------------------------------------------------------------------------
# run_campaign × cache
class TestCampaignCache:
    def run_twice(self, spec, tmp_path, **kwargs):
        cache = CampaignCache(tmp_path / "cache")
        cold_computed = []
        cold = run_campaign(
            spec, cache=cache, on_record=cold_computed.append, **kwargs
        )
        warm_cache = CampaignCache(tmp_path / "cache")
        warm_computed = []
        warm = run_campaign(
            spec, cache=warm_cache, on_record=warm_computed.append, **kwargs
        )
        return cold, cold_computed, warm, warm_computed, warm_cache

    def test_warm_run_serves_every_cell_from_cache(self, tmp_path):
        spec = small_spec()
        cold, cold_computed, warm, warm_computed, warm_cache = (
            self.run_twice(spec, tmp_path)
        )
        assert len(cold_computed) == 2
        assert warm_computed == []
        assert warm_cache.stats.hits == 2
        assert warm_cache.stats.misses == 0
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )

    def test_cold_and_warm_summaries_byte_identical(self, tmp_path):
        spec = small_spec(seeds=[0, 1])
        cold, _, warm, warm_computed, _ = self.run_twice(spec, tmp_path)
        assert warm_computed == []
        assert json.dumps(
            summarize_campaign(cold), sort_keys=True
        ) == json.dumps(summarize_campaign(warm), sort_keys=True)

    @pytest.mark.parametrize(
        "model_kwargs",
        [
            {"model": "lockstep"},
            {"model": "partial-synchrony", "model_options": {"gst": 2}},
        ],
    )
    def test_cache_round_trip_on_both_round_models(
        self, tmp_path, model_kwargs
    ):
        spec = small_spec(adversaries=["none"], **model_kwargs)
        cold, cold_computed, warm, warm_computed, _ = self.run_twice(
            spec, tmp_path
        )
        assert len(cold_computed) == 1 and warm_computed == []
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )

    def test_object_engine_cells_serve_columnar_run(
        self, tmp_path, monkeypatch
    ):
        """The engine fingerprint spans the certified-identical delivery
        backends: cells computed on the object engine are served, byte
        for byte, to a default (columnar-where-available) run."""
        import repro.analysis.campaign as campaign_module
        from repro.harness import execute as real_execute

        def object_engine_execute(*args, **kwargs):
            kwargs["columnar"] = False
            return real_execute(*args, **kwargs)

        spec = small_spec()
        cache = CampaignCache(tmp_path / "cache")
        monkeypatch.setattr(
            campaign_module, "execute", object_engine_execute
        )
        cold = run_campaign(spec, cache=cache)
        monkeypatch.setattr(campaign_module, "execute", real_execute)
        warm_computed = []
        warm = run_campaign(
            spec, cache=cache, on_record=warm_computed.append
        )
        assert warm_computed == []
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )

    def test_differing_options_are_distinct_cells(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        base = dict(
            name="fabric-test", protocol="tradeoff", ns=[33],
            adversaries=["none"], seeds=[0],
        )
        run_campaign(CampaignSpec(options={"x": 2}, **base), cache=cache)
        computed = []
        run_campaign(
            CampaignSpec(options={"x": 3}, **base),
            cache=cache, on_record=computed.append,
        )
        assert len(computed) == 1  # different x → different cell → miss

    def test_cache_hits_are_not_rejournaled(self, tmp_path):
        spec = small_spec()
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(spec, cache=cache)
        journal = tmp_path / "journal.jsonl"
        run_campaign(spec, cache=cache, journal=journal)
        assert not journal.exists()

    def test_parallel_cached_run_identical_to_serial(self, tmp_path):
        spec = small_spec(seeds=[0, 1])  # 4 cells
        serial = run_campaign(spec)
        cache = CampaignCache(tmp_path / "cache")
        fanned = run_campaign(spec, jobs=2, cache=cache)
        assert json.dumps(fanned, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )
        assert cache.stats.puts == 4
        warm = run_campaign(spec, jobs=2, cache=cache)
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_cache_accepts_a_path(self, tmp_path):
        spec = small_spec(adversaries=["none"])
        run_campaign(spec, cache=tmp_path / "cache")
        computed = []
        run_campaign(
            spec, cache=str(tmp_path / "cache"), on_record=computed.append
        )
        assert computed == []


# ---------------------------------------------------------------------------
# DirectoryClaims + await_cells
class TestClaims:
    def test_exactly_one_claimant_wins(self, tmp_path):
        cell = make_cell()
        a = DirectoryClaims(tmp_path / "claims", owner="host-a")
        b = DirectoryClaims(tmp_path / "claims", owner="host-b")
        assert a.claim(cell)
        assert not b.claim(cell)
        assert a.owner_of(cell) == "host-a"
        assert b.is_claimed(cell)

    def test_release_frees_the_cell(self, tmp_path):
        cell = make_cell()
        a = DirectoryClaims(tmp_path / "claims", owner="host-a")
        a.claim(cell)
        a.release(cell)
        assert not a.is_claimed(cell)
        b = DirectoryClaims(tmp_path / "claims", owner="host-b")
        assert b.claim(cell)

    def backdate(self, claims, cell, seconds=120):
        path = claims._path(cell)
        stat = path.stat()
        os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))

    def test_stale_lease_is_reclaimable(self, tmp_path):
        cell = make_cell()
        dead = DirectoryClaims(
            tmp_path / "claims", owner="dead-host", lease_seconds=60
        )
        dead.claim(cell)
        live = DirectoryClaims(
            tmp_path / "claims", owner="live-host", lease_seconds=60
        )
        assert not live.is_stale(cell)
        self.backdate(dead, cell)
        assert live.is_stale(cell)
        assert live.reclaim(cell)
        assert live.owner_of(cell) == "live-host"

    def test_reclaim_refuses_a_fresh_lease(self, tmp_path):
        cell = make_cell()
        a = DirectoryClaims(tmp_path / "claims", owner="host-a")
        a.claim(cell)
        b = DirectoryClaims(tmp_path / "claims", owner="host-b")
        assert not b.reclaim(cell)
        assert a.owner_of(cell) == "host-a"

    def test_release_all(self, tmp_path):
        claims = DirectoryClaims(tmp_path / "claims", owner="host-a")
        cells = [make_cell(seed=s) for s in range(3)]
        for cell in cells:
            claims.claim(cell)
        claims.release_all()
        assert all(not claims.is_claimed(c) for c in cells)
        assert claims.claimed == set()

    def test_await_finds_published_results(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        other = DirectoryClaims(tmp_path / "cache" / "claims", owner="b")
        other.claim(cell)
        cache.put(cell, {"rounds": 3})
        found, abandoned = await_cells(
            cache, [(("coords",), cell)], other, poll_seconds=0.01
        )
        assert found == {("coords",): {"rounds": 3}}
        assert abandoned == []

    def test_await_hands_back_stale_claims(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cell = make_cell()
        dead = DirectoryClaims(
            tmp_path / "cache" / "claims", owner="dead", lease_seconds=60
        )
        dead.claim(cell)
        self.backdate(dead, cell)
        found, abandoned = await_cells(
            cache, [(("coords",), cell)], dead, poll_seconds=0.01
        )
        assert found == {}
        assert abandoned == [(("coords",), cell)]

    def test_await_treats_unclaimed_missing_cells_as_abandoned(
        self, tmp_path
    ):
        cache = CampaignCache(tmp_path / "cache")
        claims = DirectoryClaims(tmp_path / "cache" / "claims", owner="a")
        cell = make_cell()
        found, abandoned = await_cells(
            cache, [(("coords",), cell)], claims, poll_seconds=0.01
        )
        assert found == {}
        assert abandoned == [(("coords",), cell)]

    def test_await_timeout_abandons_the_rest(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        claims = DirectoryClaims(
            tmp_path / "cache" / "claims", owner="slow", lease_seconds=3600
        )
        cell = make_cell()
        claims.claim(cell)  # never publishes
        found, abandoned = await_cells(
            cache,
            [(("coords",), cell)],
            claims,
            poll_seconds=0.01,
            timeout_seconds=0.05,
        )
        assert found == {}
        assert abandoned == [(("coords",), cell)]


class TestMultiHostCampaign:
    def test_two_hosts_partition_and_share_results(self, tmp_path):
        """Host B claims and computes one cell; host A's run computes the
        rest, picks B's result out of the store, and the merged sweep is
        identical to a single-host run."""
        spec = small_spec(seeds=[0, 1])  # 4 cells
        single = run_campaign(spec)

        cache = CampaignCache(tmp_path / "cache")
        coords_b = next(iter(spec.grid()))
        cell_b = spec.cell_id(*coords_b)
        host_b = DirectoryClaims(tmp_path / "cache" / "claims", owner="b")
        assert host_b.claim(cell_b)
        record_b = next(
            r for r in single
            if (r["n"], r["adversary"], r["seed"]) == coords_b
        )
        cache.put(cell_b, record_b)

        host_a = DirectoryClaims(tmp_path / "cache" / "claims", owner="a")
        computed = []
        merged = run_campaign(
            spec, cache=cache, claims=host_a, on_record=computed.append
        )
        assert len(computed) == 3  # B's cell was not recomputed
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            single, sort_keys=True
        )

    def test_dead_hosts_cells_are_reclaimed_locally(self, tmp_path):
        spec = small_spec()  # 2 cells
        cache = CampaignCache(tmp_path / "cache")
        cell = spec.cell_id(*next(iter(spec.grid())))
        dead = DirectoryClaims(
            tmp_path / "cache" / "claims", owner="dead", lease_seconds=60
        )
        dead.claim(cell)
        path = dead._path(cell)
        stat = path.stat()
        os.utime(path, (stat.st_atime - 120, stat.st_mtime - 120))

        host_a = DirectoryClaims(
            tmp_path / "cache" / "claims", owner="a", lease_seconds=60
        )
        computed = []
        records = run_campaign(
            spec, cache=cache, claims=host_a, on_record=computed.append
        )
        assert len(records) == 2
        assert len(computed) == 2  # the abandoned cell ran locally
        assert host_a.owner_of(cell) is None  # released after recompute

    def test_claims_require_a_cache(self):
        claims = DirectoryClaims("/tmp/unused", owner="a")
        with pytest.raises(ValueError, match="requires a cache"):
            run_campaign(small_spec(), claims=claims)


# ---------------------------------------------------------------------------
# Query layer
class TestQuery:
    def test_query_reports_hits_and_misses(self, tmp_path):
        spec = small_spec(seeds=[0, 1])  # 4 cells
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(small_spec(seeds=[0]), cache=cache)  # fill half
        result = query(spec, cache)
        assert result.spec_name == "fabric-test"
        assert len(result.hits) == 2
        assert len(result.misses) == 2
        assert result.hit_rate == 0.5
        assert len(result.records()) == 2

    def test_query_full_cache_serves_grid_order(self, tmp_path):
        spec = small_spec(seeds=[0, 1])
        cache = CampaignCache(tmp_path / "cache")
        expected = run_campaign(spec, cache=cache)
        result = query(spec, CampaignCache(tmp_path / "cache"))
        assert result.hit_rate == 1.0
        assert json.dumps(result.records(), sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_query_as_dict_names_missing_cells(self, tmp_path):
        spec = small_spec()
        cache = CampaignCache(tmp_path / "cache")
        payload = query(spec, cache).as_dict()
        assert payload["hits"] == 0
        assert payload["misses"] == 2
        assert len(payload["missing"]) == 2

    def test_open_cache_accepts_paths_and_instances(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        assert open_cache(cache) is cache
        opened = open_cache(tmp_path / "cache")
        assert isinstance(opened, CampaignCache)
        assert opened.root == cache.root
