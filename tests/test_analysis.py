"""Tests for the analysis helpers: fits, theory curves, Table 1."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    least_squares_slope,
    loglog_slope,
    ratio_summary,
    render_table,
    table1,
    theory,
)


class TestFits:
    def test_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0, 4.0, 6.0, 8.0]
        assert math.isclose(least_squares_slope(xs, ys), 2.0)

    def test_loglog_recovers_power(self):
        xs = [16, 32, 64, 128, 256]
        ys = [x**1.5 for x in xs]
        assert math.isclose(loglog_slope(xs, ys), 1.5, rel_tol=1e-9)

    def test_loglog_with_polylog_slightly_above(self):
        xs = [2**k for k in range(5, 12)]
        ys = [x * math.log2(x) ** 2 for x in xs]
        slope = loglog_slope(xs, ys)
        assert 1.0 < slope < 1.7

    def test_validation(self):
        with pytest.raises(ValueError):
            least_squares_slope([1.0], [2.0])
        with pytest.raises(ValueError):
            least_squares_slope([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            loglog_slope([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ratio_summary([1.0], [])
        with pytest.raises(ValueError):
            ratio_summary([], [])

    def test_ratio_summary(self):
        summary = ratio_summary([2.0, 4.0, 8.0], [1.0, 2.0, 2.0])
        assert summary.minimum == 2.0
        assert summary.maximum == 4.0
        assert math.isclose(summary.spread, 2.0)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e6),
            min_size=1,
            max_size=20,
        )
    )
    def test_ratio_of_series_with_itself_is_one(self, values):
        summary = ratio_summary(values, values)
        assert math.isclose(summary.mean, 1.0)
        assert math.isclose(summary.spread, 1.0)


class TestTheoryCurves:
    def test_theorem1_shapes(self):
        # Doubling n with t = n/32 multiplies rounds by ~sqrt(2) * polylog.
        small = theory.theorem1_rounds(1024, 32)
        large = theory.theorem1_rounds(4096, 128)
        assert 1.9 < large / small < 3.0

    def test_theorem3_invariant_constant_in_x(self):
        n = 4096
        products = [
            theory.theorem3_rounds(n, x) * theory.theorem3_random_bits(n, x)
            for x in (1, 4, 16, 64)
        ]
        assert max(products) / min(products) < 1.001

    def test_lower_bounds_positive(self):
        assert theory.theorem2_product(1024, 33) > 0
        assert theory.bar_joseph_ben_or_rounds(1024, 33) > 0
        assert theory.abraham_messages(33) > 0

    def test_baseline_curves(self):
        assert theory.dolev_strong_rounds(7) == 8
        assert theory.phase_king_rounds(7) == 24
        assert theory.dolev_strong_bits(64, 4) > theory.phase_king_bits(64, 4)


class TestTable1:
    def test_rows_cover_all_results(self):
        rows = table1(n=36, seed=0, x=2)
        results = [row.result for row in rows]
        assert any("Thm 1" in result for result in results)
        assert any("Thm 3" in result for result in results)
        assert any("[10]" in result for result in results)
        assert any("[1]" in result for result in results)
        assert any("Thm 2" in result for result in results)

    def test_render_is_aligned_ascii(self):
        rows = table1(n=36, seed=1, x=2)
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned
