"""Tests for the Dolev-Strong-style chain consensus (baseline + fallback)."""

import pytest

from repro.adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
)
from repro.baselines.dolev_strong import (
    DolevStrongProcess,
    _valid_record,
    dolev_strong_consensus,
)
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess


def run_ds(inputs, t, adversary=None, seed=0):
    n = len(inputs)
    processes = [
        DolevStrongProcess(pid, n, inputs[pid], t) for pid in range(n)
    ]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    return network.run(), processes


class TestChainValidation:
    def test_valid_first_round_record(self):
        assert _valid_record((3, 1, (3,)), 1, sender=3, receiver=0)

    def test_wrong_length_rejected(self):
        assert not _valid_record((3, 1, (3,)), 2, sender=3, receiver=0)

    def test_wrong_source_rejected(self):
        assert not _valid_record((3, 1, (4,)), 1, sender=4, receiver=0)

    def test_wrong_sender_rejected(self):
        assert not _valid_record((3, 1, (3, 5)), 2, sender=6, receiver=0)

    def test_duplicate_relayers_rejected(self):
        assert not _valid_record((3, 1, (3, 3)), 2, sender=3, receiver=0)

    def test_receiver_in_chain_rejected(self):
        assert not _valid_record((3, 1, (3, 0)), 2, sender=0, receiver=0)

    def test_non_binary_value_rejected(self):
        assert not _valid_record((3, 7, (3,)), 1, sender=3, receiver=0)

    def test_malformed_rejected(self):
        assert not _valid_record("junk", 1, sender=0, receiver=1)
        assert not _valid_record((1, 2), 1, sender=0, receiver=1)


class TestCorrectness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_unanimous(self, bit):
        result, _ = run_ds([bit] * 9, t=2)
        assert result.agreement_value() == bit

    def test_majority_without_faults(self):
        result, _ = run_ds([1, 1, 1, 0, 0], t=1)
        assert result.agreement_value() == 1

    def test_rounds_are_t_plus_one(self):
        result, _ = run_ds([1] * 8, t=3)
        assert result.time_to_agreement() == 5  # t+1 rounds + decide resume

    def test_agreement_under_silence(self):
        result, _ = run_ds(
            [pid % 2 for pid in range(12)], t=3,
            adversary=SilenceAdversary([0, 1, 2]),
        )
        assert result.agreement_value() in (0, 1)

    def test_agreement_under_random_omissions(self):
        for seed in range(3):
            result, _ = run_ds(
                [pid % 2 for pid in range(12)],
                t=3,
                adversary=RandomOmissionAdversary(0.5, seed=seed),
                seed=seed,
            )
            assert result.agreement_value() in (0, 1)

    def test_agreement_under_staggered_crashes(self):
        result, _ = run_ds(
            [pid % 2 for pid in range(12)],
            t=4,
            adversary=StaticCrashAdversary({0: [0], 1: [1], 2: [2], 3: [3]}),
        )
        assert result.agreement_value() in (0, 1)

    def test_validity_with_faulty_minority_opposing(self):
        """All non-faulty hold 1; the t faulty (holding 0) cannot outvote."""
        inputs = [0] * 3 + [1] * 10
        result, _ = run_ds(
            inputs, t=3, adversary=RandomOmissionAdversary(0.3, seed=1)
        )
        assert result.agreement_value() == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            DolevStrongProcess(0, 4, 2, 1)
        with pytest.raises(ValueError):
            DolevStrongProcess(0, 4, 1, 4)


class SubProtocolHarness(SyncProcess):
    """Runs the generator form with a participation flag (fallback shape)."""

    def __init__(self, pid, n, bit, t, participating):
        super().__init__(pid, n)
        self.bit = bit
        self.t = t
        self.participating = participating

    def program(self, env: ProcessEnv):
        decision = yield from dolev_strong_consensus(
            env, self.t, self.bit, participating=self.participating
        )
        env.decide(decision)
        return None


class TestSubProtocol:
    def test_non_participants_stay_silent_and_lockstep(self):
        n, t = 8, 2
        participating = [pid < 5 for pid in range(n)]
        processes = [
            SubProtocolHarness(pid, n, pid % 2, t, participating[pid])
            for pid in range(n)
        ]
        network = SyncNetwork(processes, t=0, seed=1)
        result = network.run()
        participant_decisions = {
            result.decisions[pid] for pid in range(5)
        }
        assert len(participant_decisions) == 1
        for pid in range(5, n):
            assert result.decisions[pid] is None

    def test_silent_sources_resolve_consistently(self):
        """Non-participating sources yield no accepted value anywhere, so
        participants still agree."""
        n, t = 6, 1
        processes = [
            SubProtocolHarness(pid, n, 1, t, participating=(pid != 0))
            for pid in range(n)
        ]
        network = SyncNetwork(processes, t=0, seed=2)
        result = network.run()
        decisions = {result.decisions[pid] for pid in range(1, n)}
        assert decisions == {1}
