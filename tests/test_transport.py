"""Tests for repro.transport: framing, the registry, the asyncio-TCP
backend, and cross-transport equivalence against the in-process core.

The equivalence suite is the transport axis's core guarantee: every
registered protocol produces a byte-identical fingerprint (decisions
*and* metering) whether its processes run in the interpreter or as real
OS worker processes over localhost TCP, and a TCP-recorded recipe
replays in-process to the same fingerprint.  The fault-injection test
pins the other half of the contract: a killed worker process lands
inside the omission model (crash fault + omitted copies, conservation
intact), never as a hang.
"""

import socket
import struct

import pytest

from repro.adversary import RandomOmissionAdversary
from repro.analysis.campaign import CampaignSpec
from repro.fabric import CellId
from repro.harness import execute
from repro.replay import record, recipe_from_payload, recipe_payload, replay
from repro.runtime import RoundObserver
from repro.transport import (
    AsyncioTcpTransport,
    InProcessTransport,
    LinkMetricsObserver,
    LinkSample,
    Transport,
    TransportError,
    available_transports,
    create_transport,
    default_transport_name,
    resolve_transport,
)
from repro.transport.framing import (
    MAX_FRAME_BYTES,
    FramingError,
    decode_body,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.transport.worker import connect_with_backoff

from .test_models import EQUIVALENCE_CASES, fingerprint, mixed


def tcp_options(n, workers=4):
    """Bound the OS-process count: ~``workers`` worker processes."""
    return {"processes_per_worker": max(1, -(-n // workers))}


def case_kwargs(protocol):
    case = dict(EQUIVALENCE_CASES[protocol])
    inputs = case.pop("inputs", None)
    return inputs, case


def case_n(protocol):
    inputs, case = case_kwargs(protocol)
    return case["n"] if inputs is None else len(inputs)


# ---------------------------------------------------------------------------
# Wire format.
class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = ("step", {"round": 3, "inboxes": {0: [1, 2]}})
        frame = encode_frame(payload)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_decode_garbage_raises_framing_error(self):
        with pytest.raises(FramingError, match="undecodable"):
            decode_body(b"\x00not-a-pickle")

    def test_socket_round_trip(self):
        left, right = socket.socketpair()
        try:
            sent = send_frame(left, {"hello": "world"})
            payload, received = recv_frame(right)
            assert payload == {"hello": "world"}
            assert received == sent
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FramingError, match="length prefix"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_peer_close_mid_frame_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 64) + b"short")
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()


# ---------------------------------------------------------------------------
# Registry and resolution.
class TestTransportRegistry:
    def test_available_transports(self):
        assert available_transports() == ("inprocess", "tcp")

    def test_default_is_inprocess(self):
        assert default_transport_name() == "inprocess"
        assert isinstance(resolve_transport(), InProcessTransport)
        assert isinstance(resolve_transport(None), InProcessTransport)

    def test_create_transport_by_name(self):
        assert isinstance(create_transport("inprocess"), InProcessTransport)
        transport = create_transport("tcp", {"processes_per_worker": 3})
        assert isinstance(transport, AsyncioTcpTransport)
        assert transport.processes_per_worker == 3

    def test_create_transport_unknown_name(self):
        with pytest.raises(ValueError, match="unknown transport"):
            create_transport("carrier-pigeon")

    def test_resolve_instance_passthrough(self):
        transport = InProcessTransport()
        assert resolve_transport(transport) is transport

    def test_resolve_instance_rejects_options(self):
        with pytest.raises(ValueError, match="transport_options"):
            resolve_transport(InProcessTransport(), {"anything": 1})

    def test_options_payload_round_trips(self):
        original = AsyncioTcpTransport(
            processes_per_worker=4, link_timeout_s=5.0
        )
        rebuilt = create_transport("tcp", original.options_payload())
        assert rebuilt.options_payload() == original.options_payload()

    def test_transports_subclass_transport(self):
        assert issubclass(InProcessTransport, Transport)
        assert issubclass(AsyncioTcpTransport, Transport)


class TestTcpValidation:
    def test_rejects_non_loopback_host(self):
        with pytest.raises(ValueError, match="loopback"):
            AsyncioTcpTransport(host="0.0.0.0")

    @pytest.mark.parametrize(
        "kwargs,message",
        [
            ({"processes_per_worker": 0}, "processes_per_worker"),
            ({"connect_timeout_s": 0}, "connect_timeout_s"),
            ({"link_timeout_s": -1}, "link_timeout_s"),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            AsyncioTcpTransport(**kwargs)


class TestConnectBackoff:
    def test_connects_to_live_listener(self):
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            port = listener.getsockname()[1]
            sock, retries = connect_with_backoff(
                "127.0.0.1", port, timeout_s=5.0
            )
            sock.close()
            assert retries == 0
        finally:
            listener.close()

    def test_fails_fast_on_dead_port(self):
        # Grab a free port, then close it so nothing listens there.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(TransportError, match="could not reach"):
            connect_with_backoff("127.0.0.1", port, timeout_s=0.2)


# ---------------------------------------------------------------------------
# Cross-transport equivalence: every registered protocol, byte-identical
# fingerprint between the in-process core and real OS workers over TCP,
# and the TCP-recorded recipe replays in-process.
class TestCrossTransportEquivalence:
    @pytest.mark.parametrize("protocol", sorted(EQUIVALENCE_CASES))
    def test_tcp_matches_inprocess_and_replays(self, protocol):
        inputs, case = case_kwargs(protocol)
        baseline = fingerprint(execute(protocol, inputs, seed=7, **case))
        recorded = record(
            protocol,
            inputs,
            seed=7,
            transport="tcp",
            transport_options=tcp_options(case_n(protocol)),
            **case,
        )
        assert not recorded.failed
        assert fingerprint(recorded.run) == baseline
        assert recorded.recipe.transport == "tcp"
        # The recipe replays *in-process* to the recorded fingerprint:
        # transport is provenance, not a replay input.
        report = replay(recorded.recipe)
        assert report.matches, report.summary()

    def test_equivalence_under_omission_adversary(self):
        runs = [
            execute(
                "phase-king",
                mixed(13),
                t=3,
                seed=7,
                adversary=RandomOmissionAdversary(0.3, seed=7),
                transport=transport,
                transport_options=options,
            )
            for transport, options in (
                (None, None),
                ("tcp", tcp_options(13)),
            )
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        assert runs[0].result.faulty == runs[1].result.faulty

    def test_execute_accepts_transport_instance(self):
        baseline = fingerprint(execute("ben-or", mixed(9), t=1, seed=7))
        run = execute(
            "ben-or", mixed(9), t=1, seed=7, transport=InProcessTransport()
        )
        assert fingerprint(run) == baseline


# ---------------------------------------------------------------------------
# Transport faults: a killed worker process lands inside the omission
# model — crash fault plus omitted copies — never as a hang.
class _KillWorkerLink(RoundObserver):
    """Kill one worker link's OS process at the end of a given round.

    Phase-king's traffic cycles heavy/light/silent across each 3-round
    phase; killing at the *end* of round 2 makes the crash surface during
    round 3's heavy advance, so the dead worker has in-flight copies for
    the adversary arbitration to omit.
    """

    def __init__(self, link_index, at_round):
        self.link_index = link_index
        self.at_round = at_round
        self.killed = False

    def on_round_end(self, round_no, network):
        if round_no != self.at_round or self.killed:
            return
        link = network._core._links[self.link_index]
        assert link.process is not None
        link.process.kill()
        self.killed = True


class TestTransportFaults:
    def test_killed_worker_becomes_omissions_not_a_hang(self):
        # ppw=4 over n=13 gives links (0-3)(4-7)(8-11)(12): link 3
        # hosts exactly pid 12, so the blast radius is one process.
        killer = _KillWorkerLink(link_index=3, at_round=2)
        metrics_tap = LinkMetricsObserver()
        run = execute(
            "phase-king",
            mixed(13),
            t=3,
            seed=7,
            observers=(killer, metrics_tap),
            transport="tcp",
            transport_options={"processes_per_worker": 4, "link_timeout_s": 5.0},
        )
        assert killer.killed
        result = run.result
        assert 12 in result.faulty
        metrics = result.metrics
        assert metrics.messages_omitted > 0
        # The metering identity survives the transport fault: the dead
        # worker's in-flight copies became omissions, its undeliverable
        # later traffic became losses.
        assert metrics.messages_sent == (
            metrics.messages_delivered
            + metrics.messages_omitted
            + metrics.messages_lost
        )
        summary = metrics_tap.summary()
        assert summary["failures"] >= 1


# ---------------------------------------------------------------------------
# Recipe provenance: the recorded transport rides in the payload but
# replay always runs in-process.
class TestRecipeProvenance:
    def test_recorded_transport_defaults_to_inprocess(self):
        recorded = record("ben-or", mixed(9), t=1, seed=7)
        assert recorded.recipe.transport == "inprocess"
        assert recorded.recipe.transport_options == {}

    def test_payload_round_trips_transport_fields(self):
        recorded = record(
            "ben-or",
            mixed(9),
            t=1,
            seed=7,
            transport="tcp",
            transport_options={"processes_per_worker": 3},
        )
        payload = recipe_payload(recorded.recipe)
        assert payload["transport"] == "tcp"
        assert payload["transport_options"] == {"processes_per_worker": 3}
        rebuilt = recipe_from_payload(payload)
        assert rebuilt.transport == "tcp"
        assert rebuilt.transport_options == {"processes_per_worker": 3}

    def test_pre_transport_payload_reads_as_inprocess(self):
        recorded = record("ben-or", mixed(9), t=1, seed=7)
        payload = recipe_payload(recorded.recipe)
        del payload["transport"]
        del payload["transport_options"]
        legacy = recipe_from_payload(payload)
        assert legacy.transport == "inprocess"
        assert legacy.transport_options == {}


# ---------------------------------------------------------------------------
# Per-link metrics aggregation.
class TestLinkMetricsObserver:
    def _sample(self, **overrides):
        base = dict(
            worker=0,
            pids=(0, 1),
            round=1,
            latency_s=0.010,
            bytes_sent=100,
            bytes_received=200,
        )
        base.update(overrides)
        return LinkSample(**base)

    def test_summary_aggregates_per_link(self):
        observer = LinkMetricsObserver()
        observer.on_transport(
            -1,
            [self._sample(round=-1, latency_s=0.5, retries=2, bytes_sent=0)],
            network=None,
        )
        observer.on_transport(
            1,
            [
                self._sample(latency_s=0.010),
                self._sample(worker=1, pids=(2, 3), latency_s=0.030),
            ],
            network=None,
        )
        observer.on_transport(
            2,
            [self._sample(round=2, latency_s=0.020, ok=False, bytes_received=0)],
            network=None,
        )
        summary = observer.summary()
        assert summary["frames"] == 3
        assert summary["failures"] == 1
        assert summary["bytes_sent"] == 300
        assert [entry["worker"] for entry in summary["links"]] == [0, 1]
        link0 = summary["links"][0]
        assert link0["connect_retries"] == 2
        assert link0["connect_latency_s"] == 0.5
        assert link0["frames"] == 2
        assert link0["latency_s_mean"] == pytest.approx(0.015)
        assert link0["latency_s_max"] == pytest.approx(0.020)

    def test_empty_summary_is_json_safe_zeroes(self):
        summary = LinkMetricsObserver().summary()
        assert summary == {
            "links": [],
            "frames": 0,
            "failures": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }


# ---------------------------------------------------------------------------
# The transport axis in cell identity and campaign specs.
class TestTransportIdentity:
    def _cell(self, **overrides):
        base = dict(
            protocol="algorithm1",
            n=33,
            t=0,
            adversary="none",
            seed=0,
        )
        base.update(overrides)
        return CellId.make(**base)

    def test_transport_changes_the_digest(self):
        default = self._cell()
        pinned = self._cell(transport="tcp")
        assert default.digest != pinned.digest
        # None (unpinned) and an explicit "inprocess" are distinct
        # identities, like the model axis: pinning is part of the ask.
        assert default.digest != self._cell(transport="inprocess").digest

    def test_transport_options_change_the_digest(self):
        plain = self._cell(transport="tcp")
        tuned = self._cell(
            transport="tcp", transport_options={"processes_per_worker": 4}
        )
        assert plain.digest != tuned.digest

    def test_payload_and_record_round_trip(self):
        cell = self._cell(
            transport="tcp", transport_options={"processes_per_worker": 4}
        )
        payload = cell.payload()
        assert payload["transport"] == "tcp"
        record_shape = dict(
            payload,
            transport_options={"processes_per_worker": 4},
            options={},
            model_options={},
        )
        assert CellId.from_record(record_shape) == cell

    def test_pre_transport_record_reads_as_default(self):
        cell = self._cell()
        payload = cell.payload()
        del payload["transport"]
        del payload["transport_options"]
        legacy = dict(payload, options={}, model_options={})
        assert CellId.from_record(legacy) == cell

    def test_campaign_spec_validates_transport(self):
        spec = CampaignSpec(
            name="t", protocol="algorithm1", ns=[33], adversaries=["none"],
            seeds=[0], transport="tcp",
        )
        assert spec.cell_id(33, "none", 0).transport == "tcp"
        with pytest.raises(ValueError, match="unknown transport"):
            CampaignSpec(
                name="t", protocol="algorithm1", ns=[33],
                adversaries=["none"], seeds=[0], transport="smoke-signals",
            )

    def test_campaign_spec_options_require_transport(self):
        with pytest.raises(ValueError, match="explicit transport"):
            CampaignSpec(
                name="t", protocol="algorithm1", ns=[33],
                adversaries=["none"], seeds=[0],
                transport_options={"processes_per_worker": 4},
            )
