"""Tests for repro.replay: recording, invariants, deterministic replay.

The core contract: an execution is a deterministic function of (protocol,
seeds, adversary action sequence), so a recorded recipe replays to a
byte-identical result fingerprint — over either engine send path — and a
recorded *failure* replays to the same invariant violation.
"""

import json
from pathlib import Path

import pytest

from repro.adversary import RandomOmissionAdversary, VoteBalancingAdversary
from repro.replay import (
    ExecutionRecipe,
    InvariantObserver,
    InvariantViolation,
    RecordedAction,
    load_recipe,
    record,
    replay,
    run_checked,
    save_recipe,
)
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess, result_to_dict

GOLDEN = Path(__file__).parent / "data" / "golden-ben-or.json"

# Engine seeds are pinned per cell to recorded *clean* runs: ben-or is a
# randomized baseline whose agreement can genuinely break under the vote
# balancer at some seeds (exactly what run_checked exists to catch), and
# this matrix is about replay fidelity of passing executions.
MATRIX = [
    ("algorithm1", 64, None, "random", 23),
    ("algorithm1", 64, None, "balance", 23),
    ("ben-or", 16, 2, "random", 23),
    ("ben-or", 16, 2, "balance", 3),
    ("phase-king", 13, 3, "random", 23),
    ("phase-king", 13, 3, "balance", 23),
]


def make_adversary(kind, seed):
    if kind == "random":
        return RandomOmissionAdversary(0.5, seed=seed)
    return VoteBalancingAdversary(seed=seed)


class TestRecordReplayMatrix:
    @pytest.mark.parametrize("protocol,n,t,adversary,seed", MATRIX)
    def test_replay_is_byte_identical(self, protocol, n, t, adversary, seed):
        inputs = [pid % 2 for pid in range(n)]
        recorded = record(
            protocol,
            inputs,
            t=t,
            adversary=make_adversary(adversary, seed=5),
            seed=seed,
        )
        assert not recorded.failed
        report = replay(recorded.recipe)
        assert report.ok, report.summary()
        # Byte-identical, not merely "same decision": the full serialized
        # result (every metrics counter, decision round, faulty pid, ...)
        # must match the recording exactly.
        assert json.dumps(
            result_to_dict(report.run.result), sort_keys=True
        ) == json.dumps(dict(recorded.recipe.expected), sort_keys=True)

    @pytest.mark.parametrize("protocol,n,t,adversary,seed", MATRIX[:3])
    def test_replay_across_engine_send_paths(
        self, protocol, n, t, adversary, seed
    ):
        """Omit indices address the flat per-copy order both send paths
        share, so a schedule recorded on the multicast fast path replays
        identically on the legacy per-message path and vice versa."""
        inputs = [pid % 2 for pid in range(n)]
        recorded = record(
            protocol,
            inputs,
            t=t,
            adversary=make_adversary(adversary, seed=5),
            seed=seed,
            multicast=True,
        )
        assert replay(recorded.recipe, multicast=False).ok
        recorded_legacy = record(
            protocol,
            inputs,
            t=t,
            adversary=make_adversary(adversary, seed=5),
            seed=seed,
            multicast=False,
        )
        assert recorded_legacy.recipe.expected == recorded.recipe.expected
        assert replay(recorded_legacy.recipe, multicast=True).ok

    def test_recipe_file_round_trip(self, tmp_path):
        recorded = record(
            "ben-or",
            [0, 1, 1, 0, 1, 0, 1],
            adversary=RandomOmissionAdversary(0.3, seed=1),
            seed=4,
        )
        path = save_recipe(recorded.recipe, tmp_path / "r.json")
        assert load_recipe(path) == recorded.recipe
        assert replay(load_recipe(path)).ok


class TestGoldenRecipe:
    """Cross-version determinism: the committed artifact was recorded once
    (CPython 3.11) and must replay byte-identically on every CI
    interpreter, over both engine send paths — the Mersenne Twister and
    the engine's seed derivation are stable across 3.11/3.12."""

    def test_golden_replays_on_fast_path(self):
        report = replay(load_recipe(GOLDEN), multicast=True)
        assert report.ok, report.summary()

    def test_golden_replays_on_legacy_path(self):
        report = replay(load_recipe(GOLDEN), multicast=False)
        assert report.ok, report.summary()


class SplitDecider(SyncProcess):
    """Planted agreement bug: everyone decides its own parity."""

    def program(self, env: ProcessEnv):
        env.broadcast("x")
        yield
        env.decide(self.pid % 2)
        env.broadcast("y")
        yield
        return None


class AlienDecider(SyncProcess):
    """Planted validity bug: decides a value outside the input domain."""

    def program(self, env: ProcessEnv):
        env.broadcast("x")
        yield
        env.decide(7)
        env.broadcast("y")
        yield
        return None


class TestInvariantObserver:
    def test_agreement_trips_with_round_number(self):
        processes = [SplitDecider(pid, 4) for pid in range(4)]
        network = SyncNetwork(processes, observers=[InvariantObserver()])
        with pytest.raises(InvariantViolation) as excinfo:
            network.run()
        assert excinfo.value.invariant == "agreement"
        assert excinfo.value.round == 1

    def test_validity_trips(self):
        processes = [AlienDecider(pid, 4) for pid in range(4)]
        network = SyncNetwork(
            processes, observers=[InvariantObserver(inputs=[0, 1, 0, 1])]
        )
        with pytest.raises(InvariantViolation) as excinfo:
            network.run()
        assert excinfo.value.invariant == "validity"

    def test_clean_run_unaffected(self):
        recorded = record(
            "phase-king",
            [pid % 2 for pid in range(13)],
            t=3,
            adversary=RandomOmissionAdversary(0.5, seed=8),
            seed=8,
            invariants=True,
        )
        assert not recorded.failed
        bare = record(
            "phase-king",
            [pid % 2 for pid in range(13)],
            t=3,
            adversary=RandomOmissionAdversary(0.5, seed=8),
            seed=8,
            invariants=False,
        )
        # Observers never perturb the execution.
        assert recorded.recipe.expected == bare.recipe.expected

    def test_payload_shape(self):
        violation = InvariantViolation("agreement", 3, "split decisions")
        assert violation.payload() == {
            "invariant": "agreement",
            "round": 3,
            "detail": "split decisions",
        }
        assert isinstance(violation, AssertionError)


class TestRecordedFailures:
    def test_failing_run_folds_into_recipe(self):
        processes_n = 4

        def build(request):
            return (
                [SplitDecider(pid, processes_n) for pid in range(processes_n)],
                0,
            )

        from repro.harness import ProtocolSpec, register_protocol

        register_protocol(
            ProtocolSpec(
                name="split-decider",
                summary="test-only planted agreement bug",
                build=build,
                default_max_rounds=5,
                sweepable=False,
                uses_inputs=False,
            ),
            replace=True,
        )
        recorded = record("split-decider", n=processes_n, seed=0)
        assert recorded.failed
        assert recorded.recipe.failing
        assert recorded.recipe.expected is None
        assert recorded.recipe.expected_failure["invariant"] == "agreement"
        report = replay(recorded.recipe)
        assert report.reproduced_failure
        assert report.ok

    def test_run_checked_saves_replayable_recipe(self, tmp_path):
        from repro.harness import ProtocolSpec, register_protocol

        def build(request):
            return [SplitDecider(pid, 4) for pid in range(4)], 0

        register_protocol(
            ProtocolSpec(
                name="split-decider",
                summary="test-only planted agreement bug",
                build=build,
                default_max_rounds=5,
                sweepable=False,
                uses_inputs=False,
            ),
            replace=True,
        )
        with pytest.raises(InvariantViolation):
            run_checked("split-decider", n=4, seed=0, save_dir=tmp_path)
        saved = list(tmp_path.glob("*.json"))
        assert len(saved) == 1
        assert "agreement" in saved[0].name
        assert replay(load_recipe(saved[0])).reproduced_failure


class TestRecipeDataclass:
    def test_totals_and_with_actions(self):
        recipe = ExecutionRecipe(
            protocol="ben-or",
            n=5,
            seed=1,
            actions=(
                RecordedAction(round=0, corrupt=(1, 2), omit=(0, 1, 2)),
                RecordedAction(round=2, omit=(4,)),
            ),
        )
        assert recipe.total_corruptions() == 2
        assert recipe.total_omissions() == 4
        assert not recipe.failing
        trimmed = recipe.with_actions(recipe.actions[:1])
        assert trimmed.total_omissions() == 3
        assert trimmed.protocol == recipe.protocol


class TestReplayCLI:
    def test_cli_replay_passing_recipe(self, tmp_path, capsys):
        from repro.cli import main

        recorded = record(
            "ben-or",
            [0, 1, 1, 0, 1, 0, 1],
            adversary=RandomOmissionAdversary(0.3, seed=1),
            seed=4,
        )
        path = save_recipe(recorded.recipe, tmp_path / "r.json")
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replay matches recorded fingerprint" in out

    def test_cli_replay_detects_tampering(self, tmp_path, capsys):
        from repro.cli import main

        recorded = record(
            "ben-or",
            [0, 1, 1, 0, 1, 0, 1],
            adversary=RandomOmissionAdversary(0.3, seed=1),
            seed=4,
        )
        data = json.loads(
            save_recipe(recorded.recipe, tmp_path / "r.json").read_text()
        )
        data["expected"]["metrics"]["messages_sent"] += 1
        (tmp_path / "r.json").write_text(json.dumps(data))
        assert main(["replay", str(tmp_path / "r.json")]) == 1
        assert "messages_sent" in capsys.readouterr().out


class TestCampaignFailureRecording:
    def test_failing_cell_saves_recipe_and_sweep_continues(self, tmp_path):
        from repro.analysis.campaign import (
            CampaignSpec,
            run_campaign,
            summarize_campaign,
        )

        spec = CampaignSpec(
            name="replay-smoke",
            protocol="ben-or",
            ns=[9],
            adversaries=["random"],
            seeds=[0, 1],
        )
        records = run_campaign(spec, record_failures=tmp_path)
        assert len(records) == 2
        failed = [rec for rec in records if rec.get("failed")]
        for rec in failed:
            assert Path(rec["recipe"]).exists()
        # Healthy cells keep their usual record shape and still aggregate.
        healthy = [rec for rec in records if not rec.get("failed")]
        summary = summarize_campaign(records)
        if healthy:
            assert summary[0]["runs"] == len(healthy)
        else:
            assert summary == []
