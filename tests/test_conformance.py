"""Tests for (and via) the consensus-conformance harness."""

from repro.analysis.conformance import (
    DEFAULT_GALLERY,
    check_consensus_protocol,
)
from repro.baselines import DolevStrongProcess, PhaseKingProcess
from repro.core import EarlyStoppingConsensus, OptimalOmissionsConsensus
from repro.params import ProtocolParams

PARAMS = ProtocolParams.practical()


def algorithm1_factory(inputs, t):
    n = len(inputs)
    return [
        OptimalOmissionsConsensus(pid, n, inputs[pid], t=t, params=PARAMS)
        for pid in range(n)
    ]


def early_stopping_factory(inputs, t):
    n = len(inputs)
    return [
        EarlyStoppingConsensus(pid, n, inputs[pid], t=t, params=PARAMS)
        for pid in range(n)
    ]


def dolev_strong_factory(inputs, t):
    n = len(inputs)
    return [
        DolevStrongProcess(pid, n, inputs[pid], t) for pid in range(n)
    ]


def phase_king_factory(inputs, t):
    n = len(inputs)
    return [
        PhaseKingProcess(pid, n, inputs[pid], t) for pid in range(n)
    ]


class TestShippedProtocolsConform:
    def test_algorithm1(self):
        report = check_consensus_protocol(
            algorithm1_factory, n=36, t=1, seeds=(0,)
        )
        assert report.passed, report.summary()

    def test_early_stopping(self):
        report = check_consensus_protocol(
            early_stopping_factory, n=36, t=1, seeds=(0,)
        )
        assert report.passed, report.summary()

    def test_dolev_strong(self):
        report = check_consensus_protocol(
            dolev_strong_factory, n=15, t=3, seeds=(0,)
        )
        assert report.passed, report.summary()

    def test_phase_king(self):
        report = check_consensus_protocol(
            phase_king_factory, n=15, t=3, seeds=(0,)
        )
        assert report.passed, report.summary()


class TestHarnessDetectsBrokenProtocols:
    def test_detects_disagreement(self):
        from repro.runtime import SyncProcess

        class DecideOwnBit(SyncProcess):
            def __init__(self, pid, n, bit):
                super().__init__(pid, n)
                self.bit = bit

            def program(self, env):
                env.decide(self.bit)
                return None
                yield  # pragma: no cover

        report = check_consensus_protocol(
            lambda inputs, t: [
                DecideOwnBit(pid, len(inputs), inputs[pid])
                for pid in range(len(inputs))
            ],
            n=12,
            t=0,
            seeds=(0,),
            gallery={"none": DEFAULT_GALLERY["none"]},
        )
        assert not report.passed
        failures = report.failures()
        # Mixed-input scenarios disagree; unanimous ones are fine.
        assert any("correctness" in f.failure for f in failures)
        scenarios = {f.scenario for f in failures}
        assert {"balanced", "skewed"} <= scenarios

    def test_detects_validity_violation(self):
        from repro.runtime import SyncProcess

        class AlwaysZero(SyncProcess):
            def __init__(self, pid, n, bit):
                super().__init__(pid, n)

            def program(self, env):
                env.decide(0)
                return None
                yield  # pragma: no cover

        report = check_consensus_protocol(
            lambda inputs, t: [
                AlwaysZero(pid, len(inputs), inputs[pid])
                for pid in range(len(inputs))
            ],
            n=12,
            t=0,
            seeds=(0,),
            gallery={"none": DEFAULT_GALLERY["none"]},
        )
        failures = report.failures()
        assert any("validity" in f.failure for f in failures)

    def test_detects_non_termination(self):
        from repro.runtime import SyncProcess

        class Mute(SyncProcess):
            def __init__(self, pid, n, bit):
                super().__init__(pid, n)

            def program(self, env):
                yield
                return None

        report = check_consensus_protocol(
            lambda inputs, t: [
                Mute(pid, len(inputs), inputs[pid])
                for pid in range(len(inputs))
            ],
            n=6,
            t=0,
            seeds=(0,),
            gallery={"none": DEFAULT_GALLERY["none"]},
        )
        assert not report.passed
        assert all("correctness" in f.failure for f in report.failures())

    def test_summary_mentions_failures(self):
        from repro.runtime import SyncProcess

        class Mute(SyncProcess):
            def __init__(self, pid, n, bit):
                super().__init__(pid, n)

            def program(self, env):
                yield
                return None

        report = check_consensus_protocol(
            lambda inputs, t: [
                Mute(pid, len(inputs), inputs[pid])
                for pid in range(len(inputs))
            ],
            n=6,
            t=0,
            seeds=(0,),
            gallery={"none": DEFAULT_GALLERY["none"]},
        )
        assert "FAIL" in report.summary()
