"""The unified execution harness: registry, execute(), and wrapper compat."""

from __future__ import annotations

import json

import pytest

from repro.adversary import SilenceAdversary
from repro.analysis.campaign import CampaignSpec, run_campaign
from repro.baselines import (
    BOTTOM,
    run_ben_or,
    run_collectors,
    run_dolev_strong,
    run_phase_king,
    run_trb,
)
from repro.core import ConsensusRun, run_consensus
from repro.harness import (
    ExecutionRequest,
    ProtocolSpec,
    RoundProfiler,
    TraceRecorder,
    available_protocols,
    execute,
    protocol_spec,
    register_protocol,
)
from repro.params import ProtocolParams
from repro.runtime import result_to_dict


def mixed(n):
    return [pid % 2 for pid in range(n)]


# ---------------------------------------------------------------------------
# Registry basics.
def test_all_protocols_registered():
    names = available_protocols()
    assert set(names) >= {
        "algorithm1", "tradeoff", "early-stopping", "multivalued",
        "ben-or", "phase-king", "dolev-strong", "trb", "collectors",
    }


def test_sweepable_filter_excludes_collectors():
    sweepable = available_protocols(sweepable=True)
    assert "collectors" not in sweepable
    assert "ben-or" in sweepable
    assert "collectors" in available_protocols(sweepable=False)


def test_unknown_protocol_raises_with_choices():
    with pytest.raises(ValueError, match="unknown protocol"):
        protocol_spec("nope")


def test_duplicate_registration_rejected():
    spec = protocol_spec("ben-or")
    with pytest.raises(ValueError, match="already registered"):
        register_protocol(spec)
    # replace=True is the explicit override path.
    assert register_protocol(spec, replace=True) is spec


def test_campaign_t_defaults_to_params_max_faults():
    params = ProtocolParams.practical()
    assert protocol_spec("algorithm1").campaign_t(64, params) == (
        params.max_faults(64)
    )
    assert protocol_spec("ben-or").campaign_t(64, params) == 8
    assert protocol_spec("phase-king").campaign_t(64, params) == 8


# ---------------------------------------------------------------------------
# execute() semantics.
def test_execute_requires_inputs_or_n():
    with pytest.raises(ValueError, match="needs `inputs` or an explicit `n`"):
        execute("trb")
    with pytest.raises(ValueError, match="needs an input vector"):
        execute("algorithm1", n=16)


def test_execute_accepts_spec_object():
    run = execute(protocol_spec("ben-or"), mixed(8), seed=2)
    assert run.decision in (0, 1)


def test_execute_matches_legacy_wrapper_exactly():
    inputs = mixed(32)
    adversary = lambda: SilenceAdversary(range(1))  # noqa: E731
    via_wrapper = run_consensus(inputs, adversary=adversary(), seed=5)
    via_execute = execute("algorithm1", inputs, adversary=adversary(), seed=5)
    assert json.dumps(
        result_to_dict(via_wrapper.result), sort_keys=True
    ) == json.dumps(result_to_dict(via_execute.result), sort_keys=True)


def test_execute_threads_observers():
    recorder = TraceRecorder(probe=None)
    profiler = RoundProfiler()
    run = execute(
        "phase-king", mixed(16), t=2, seed=1,
        observers=(recorder, profiler),
    )
    assert len(recorder.rounds) == run.metrics.rounds
    assert profiler.rounds == run.metrics.rounds


def test_execute_options_mapping_and_kwargs_merge():
    run = execute(
        "tradeoff", mixed(16), seed=1, options={"x": 2},
    )
    assert run.request.option("x") == 2
    run = execute("tradeoff", mixed(16), seed=1, options={"x": 2}, x=4)
    # Keyword options win over the mapping.
    assert run.request.option("x") == 4


def test_execution_request_is_read_only_mapping():
    run = execute("ben-or", mixed(8), seed=0, max_phases=4)
    request = run.request
    assert isinstance(request, ExecutionRequest)
    assert request.option("max_phases") == 4
    assert request.option("missing", "default") == "default"
    with pytest.raises(TypeError):
        request.options["max_phases"] = 9


# ---------------------------------------------------------------------------
# Baseline runners return ConsensusRun objects with named fields only —
# the tuple protocol was removed after its deprecation window.
def test_baseline_runners_return_consensus_runs():
    runs = {
        "ben-or": run_ben_or(mixed(8), seed=3),
        "phase-king": run_phase_king(mixed(16), 2, seed=3),
        "dolev-strong": run_dolev_strong(mixed(8), 1, seed=3),
        "trb": run_trb(8, 0, 1, 1, seed=3),
        "collectors": run_collectors(8, 0, None, seed=3),
    }
    for name, run in runs.items():
        assert isinstance(run, ConsensusRun), name
        assert len(run.processes) == run.result.n, name
        # The tuple shims are gone: a ConsensusRun is not iterable or
        # indexable, so stale `result, procs = run_*(...)` code fails fast.
        with pytest.raises(TypeError):
            iter(run)
        with pytest.raises(TypeError):
            run[0]


def test_trb_indexing_and_decision():
    run = run_trb(16, 0, 9, 2, adversary=SilenceAdversary([0]), seed=7)
    assert run.result.time_to_agreement() >= 1
    assert run.decision in (9, BOTTOM)


def test_run_dolev_strong_agrees_with_manual_metrics():
    run = run_dolev_strong(mixed(12), 2, seed=4)
    assert run.decision in (0, 1)
    # t + 1 communication rounds.
    assert run.metrics.rounds == 3


# ---------------------------------------------------------------------------
# Campaign integration: baselines sweep through the registry.
def test_campaign_runs_ben_or_cells():
    spec = CampaignSpec(
        name="harness-ben-or",
        protocol="ben-or",
        ns=[16],
        adversaries=["none", "silence"],
        seeds=[0],
    )
    records = run_campaign(spec)
    assert [r["adversary"] for r in records] == ["none", "silence"]
    for record in records:
        assert record["protocol"] == "ben-or"
        assert record["t"] == 2
        assert record["decision"] in (0, 1)
        assert record["rounds"] >= 1
    assert records[1]["faulty"] == [0, 1]


def test_campaign_runs_trb_cells():
    spec = CampaignSpec(
        name="harness-trb",
        protocol="trb",
        ns=[16],
        adversaries=["silence"],
        seeds=[0],
        options={"sender": 1, "value": 7},
    )
    record = run_campaign(spec)[0]
    assert record["protocol"] == "trb"
    assert record["sender"] == 1
    # Sender 1 is silenced by the adversary, so the BOTTOM delivery is a
    # legal outcome; all processes still agree on it.
    assert record["decision"] in (7, "BOTTOM")
    assert record["delivery_rounds"]

    no_faults = CampaignSpec(
        name="harness-trb-clean",
        protocol="trb",
        ns=[16],
        adversaries=["none"],
        seeds=[0],
        options={"sender": 1, "value": 7},
    )
    assert run_campaign(no_faults)[0]["decision"] == 7


def test_campaign_rejects_non_sweepable_protocol():
    with pytest.raises(ValueError, match="unknown protocol"):
        CampaignSpec(name="x", protocol="collectors")


def test_campaign_capture_channels():
    spec = CampaignSpec(
        name="harness-capture",
        protocol="ben-or",
        ns=[16],
        adversaries=["silence"],
        seeds=[0],
        capture=["trace", "profile"],
    )
    record = run_campaign(spec)[0]
    trace = record["trace"]
    assert trace["corruption_rounds"] == {"0": 0, "1": 0}
    assert trace["total_omissions"] > 0
    assert set(trace["decision_rounds"]) == {str(pid) for pid in range(16)}
    assert set(record["profile"]) == {
        "rounds", "wall_time", "compute", "adversary", "delivery", "overhead"
    }
    assert record["profile"]["rounds"] >= record["rounds"]
    json.dumps(record)  # capture payloads stay JSON-safe


def test_capture_is_not_part_of_cell_identity():
    base = CampaignSpec(
        name="harness-resume", protocol="ben-or", ns=[16],
        adversaries=["none"], seeds=[0],
    )
    records = run_campaign(base)
    with_capture = CampaignSpec(
        name="harness-resume", protocol="ben-or", ns=[16],
        adversaries=["none"], seeds=[0], capture=["profile"],
    )
    resumed = run_campaign(with_capture, resume_from=records)
    # The plain record satisfied the cell, so nothing was re-run.
    assert resumed == records


def test_campaign_rejects_unknown_capture():
    with pytest.raises(ValueError, match="unknown capture"):
        CampaignSpec(name="x", capture=["flamegraph"])


# ---------------------------------------------------------------------------
# Registering a custom protocol makes it sweepable immediately.
def test_custom_protocol_roundtrip():
    from repro.baselines.phase_king import PhaseKingProcess

    def build(request):
        t = request.t if request.t is not None else 1
        return (
            [
                PhaseKingProcess(pid, request.n, request.inputs[pid], t)
                for pid in range(request.n)
            ],
            t,
        )

    name = "test-custom-phase-king"
    spec = ProtocolSpec(name=name, summary="test", build=build)
    register_protocol(spec)
    try:
        assert name in available_protocols(sweepable=True)
        run = execute(name, mixed(8), seed=0)
        assert run.decision in (0, 1)
        campaign = CampaignSpec(
            name="custom", protocol=name, ns=[8], adversaries=["none"],
            seeds=[0],
        )
        record = run_campaign(campaign)[0]
        assert record["protocol"] == name
    finally:
        from repro.harness.registry import _REGISTRY

        _REGISTRY.pop(name, None)
