"""Differential test: the optimized payload_bits vs a reference model.

``payload_bits`` was rewritten with exact-type fast paths for performance;
this module keeps the original recursive definition as an executable
specification and checks the two agree on generated payloads.
"""

from hypothesis import given, strategies as st

from repro.runtime import payload_bits


def reference_payload_bits(payload):
    """The original (slow, obviously-correct) recursive definition."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload) + 8
    if isinstance(payload, (bytes, bytearray)):
        return 8 * len(payload) + 8
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 2 + sum(reference_payload_bits(item) + 1 for item in payload)
    if isinstance(payload, dict):
        return 2 + sum(
            reference_payload_bits(key) + reference_payload_bits(value) + 1
            for key, value in payload.items()
        )
    raise TypeError(type(payload))


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(
            st.integers(min_value=0, max_value=100), children, max_size=4
        ),
    ),
    max_leaves=20,
)


@given(payloads)
def test_optimized_matches_reference(payload):
    assert payload_bits(payload) == reference_payload_bits(payload)


@given(st.lists(st.integers(min_value=-(2**60), max_value=2**60), max_size=30))
def test_int_list_fast_path(items):
    assert payload_bits(tuple(items)) == reference_payload_bits(tuple(items))


@given(st.sets(st.integers(min_value=0, max_value=1000), max_size=10))
def test_sets_match(items):
    assert payload_bits(items) == reference_payload_bits(items)
    assert payload_bits(frozenset(items)) == reference_payload_bits(
        frozenset(items)
    )
