"""Differential test: the optimized payload_bits vs a reference model.

``payload_bits`` was rewritten with exact-type fast paths for performance;
this module keeps the original recursive definition as an executable
specification and checks the two agree on generated payloads.
"""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import payload_bits


def reference_payload_bits(payload):
    """The original (slow, obviously-correct) recursive definition."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload) + 8
    if isinstance(payload, (bytes, bytearray)):
        return 8 * len(payload) + 8
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 2 + sum(reference_payload_bits(item) + 1 for item in payload)
    if isinstance(payload, dict):
        return 2 + sum(
            reference_payload_bits(key) + reference_payload_bits(value) + 1
            for key, value in payload.items()
        )
    raise TypeError(type(payload))


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(
            st.integers(min_value=0, max_value=100), children, max_size=4
        ),
    ),
    max_leaves=20,
)


@given(payloads)
def test_optimized_matches_reference(payload):
    assert payload_bits(payload) == reference_payload_bits(payload)


@given(st.lists(st.integers(min_value=-(2**60), max_value=2**60), max_size=30))
def test_int_list_fast_path(items):
    assert payload_bits(tuple(items)) == reference_payload_bits(tuple(items))


@given(st.sets(st.integers(min_value=0, max_value=1000), max_size=10))
def test_sets_match(items):
    assert payload_bits(items) == reference_payload_bits(items)
    assert payload_bits(frozenset(items)) == reference_payload_bits(
        frozenset(items)
    )


# ---------------------------------------------------------------------------
# Golden values, one (or more) per dispatch branch of the optimized
# implementation.  Hand-derived from the costing model: ints cost
# max(1, bit_length) + 1, None/bool cost 1, floats 64, str/bytes 8 per byte
# + 8, containers 2 + per-item (+1 separator), dicts 2 + key + value + 1.
GOLDEN = [
    # exact-int fast path
    (0, 2),
    (1, 2),
    (5, 4),
    (-5, 4),
    (2**40, 42),
    # None / bool branch
    (None, 1),
    (True, 1),
    (False, 1),
    # float branch
    (1.5, 64),
    (0.0, 64),
    # str / bytes / bytearray branch
    ("", 8),
    ("ab", 24),
    (b"ab", 24),
    (bytearray(b"ab"), 24),
    # tuple / list branch (including the all-int fast path and nesting)
    ((), 2),
    ([], 2),
    ((1, 2), 9),
    ([1, 2], 9),
    (((1,),), 8),
    (("a", 1), 22),
    # set / frozenset branch
    (set(), 2),
    ({3}, 6),
    (frozenset({3}), 6),
    # dict branch
    ({}, 2),
    ({1: 2}, 8),
]


@pytest.mark.parametrize("payload,expected", GOLDEN,
                         ids=[repr(p)[:30] for p, _ in GOLDEN])
def test_payload_bits_golden(payload, expected):
    assert payload_bits(payload) == expected
    assert reference_payload_bits(payload) == expected


def test_int_subclass_uses_fallback_branch():
    class Tagged(int):
        pass

    assert payload_bits(Tagged(5)) == payload_bits(5) == 4


def test_unsupported_payload_type_raises():
    with pytest.raises(TypeError):
        payload_bits(object())
