"""Tests for the reusable sub-protocol generators on member *subsets*.

Algorithm 4 and the multi-valued reduction both embed Algorithm 1's lines
5-16 inside larger programs, sometimes on a strict subset of the system;
these tests exercise that machinery directly.
"""

from repro.core import CoreState, core_total_rounds, optimal_epochs_and_dissemination
from repro.core.multivalued import fixed_length_binary_consensus
from repro.params import ProtocolParams
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess, idle_rounds

PARAMS = ProtocolParams.practical()


class SubsetRunner(SyncProcess):
    """Members run the epochs sub-protocol; non-members idle in lockstep."""

    def __init__(self, pid, n, members, bit):
        super().__init__(pid, n)
        self.members = members
        self.bit = bit
        self.outcome = "idle"

    def program(self, env: ProcessEnv):
        rounds = core_total_rounds(len(self.members), PARAMS)
        if self.pid in self.members:
            state = CoreState(b=self.bit)
            value = yield from optimal_epochs_and_dissemination(
                env, self.members, PARAMS, state, graph_seed=3
            )
            self.outcome = value
        else:
            yield from idle_rounds(env, rounds)
        env.decide(self.outcome)
        return None


class TestSubsetEpochs:
    def test_subset_members_agree(self):
        n = 40
        members = tuple(range(5, 30))
        processes = [
            SubsetRunner(pid, n, members, 1 if pid % 3 else 0)
            for pid in range(n)
        ]
        network = SyncNetwork(processes, seed=1)
        result = network.run()
        member_outcomes = {result.decisions[pid] for pid in members}
        # Fault-free subset run: everyone decides, and on the same value.
        assert member_outcomes <= {0, 1}
        assert len(member_outcomes) == 1

    def test_subset_validity(self):
        n = 30
        members = tuple(range(0, 30, 2))
        processes = [
            SubsetRunner(pid, n, members, 1) for pid in range(n)
        ]
        network = SyncNetwork(processes, seed=2)
        result = network.run()
        for pid in members:
            assert result.decisions[pid] == 1

    def test_non_members_never_send(self):
        n = 24
        members = tuple(range(12))
        processes = [SubsetRunner(pid, n, members, 1) for pid in range(n)]

        outsider_senders = set()

        network = SyncNetwork(processes, seed=3)
        # Wrap the adversary hook to observe senders.
        original = network.adversary.act

        def observing_act(view):
            for message in view.messages:
                if message.sender not in members:
                    outsider_senders.add(message.sender)
            return original(view)

        network.adversary.act = observing_act
        network.run()
        assert outsider_senders == set()

    def test_rounds_budget_is_exact(self):
        """The sub-protocol consumes exactly core_total_rounds on every
        path (the lockstep invariant Algorithm 4 relies on)."""
        n = 20
        members = tuple(range(n))
        processes = [
            SubsetRunner(pid, n, members, pid % 2) for pid in range(n)
        ]
        network = SyncNetwork(processes, seed=4)
        result = network.run()
        assert result.metrics.rounds == core_total_rounds(n, PARAMS)

    def test_singleton_member_decides_own_bit(self):
        n = 8
        members = (5,)
        processes = [SubsetRunner(pid, n, members, 1) for pid in range(n)]
        network = SyncNetwork(processes, seed=5)
        result = network.run()
        assert result.decisions[5] == 1
        assert result.metrics.rounds == core_total_rounds(1, PARAMS) == 1


class BinaryRunner(SyncProcess):
    def __init__(self, pid, n, bit, t):
        super().__init__(pid, n)
        self.bit = bit
        self.t = t
        self.rounds_consumed = 0

    def program(self, env: ProcessEnv):
        members = tuple(range(self.n))
        start = env.round
        decision = yield from fixed_length_binary_consensus(
            env, members, PARAMS, self.t, self.bit, graph_seed=7
        )
        self.rounds_consumed = env.round - start
        env.decide(decision)
        return None


class TestFixedLengthBinary:
    def test_identical_round_consumption(self):
        n = 33
        processes = [BinaryRunner(pid, n, pid % 2, 1) for pid in range(n)]
        network = SyncNetwork(processes, seed=6)
        network.run()
        consumed = {process.rounds_consumed for process in processes}
        assert len(consumed) == 1  # the lockstep guarantee

    def test_agreement_and_validity(self):
        n = 33
        processes = [BinaryRunner(pid, n, 1, 1) for pid in range(n)]
        network = SyncNetwork(processes, seed=7)
        result = network.run()
        assert set(result.decisions.values()) == {1}

    def test_mixed_inputs_agree(self):
        n = 33
        processes = [BinaryRunner(pid, n, pid % 2, 1) for pid in range(n)]
        network = SyncNetwork(processes, seed=8)
        result = network.run()
        assert len(set(result.decisions.values())) == 1

    def test_length_formula(self):
        n, t = 33, 1
        processes = [BinaryRunner(pid, n, 0, t) for pid in range(n)]
        network = SyncNetwork(processes, seed=9)
        network.run()
        expected = core_total_rounds(n, PARAMS) + (t + 1) + 1
        assert processes[0].rounds_consumed == expected
