"""Tests for the biased-majority vote rule (Algorithm 1 lines 9-12)."""

from hypothesis import given, strategies as st

from repro.core import apply_vote_rule
from repro.params import ProtocolParams
from repro.runtime import CountingRandom

PARAMS = ProtocolParams.practical()


def vote(ones, zeros, seed=0):
    return apply_vote_rule(ones, zeros, PARAMS, CountingRandom(seed))


class TestDeterministicBands:
    def test_strong_majority_one(self):
        outcome = vote(19, 11)
        assert outcome.bit == 1
        assert not outcome.used_coin
        assert not outcome.decided

    def test_strong_majority_zero(self):
        outcome = vote(14, 16)
        assert outcome.bit == 0
        assert not outcome.used_coin

    def test_decide_band_high(self):
        outcome = vote(28, 2)
        assert outcome.bit == 1
        assert outcome.decided

    def test_decide_band_low(self):
        outcome = vote(2, 28)
        assert outcome.bit == 0
        assert outcome.decided

    def test_middle_band_uses_coin(self):
        outcome = vote(16, 14)
        assert outcome.used_coin
        assert outcome.bit in (0, 1)
        assert not outcome.decided

    def test_exact_half_uses_coin(self):
        # ones == 15/30 is not < 15/30, and not > 18/30: coin flip.
        outcome = vote(15, 15)
        assert outcome.used_coin

    def test_blackout_uses_coin(self):
        outcome = vote(0, 0)
        assert outcome.used_coin
        assert not outcome.decided


class TestRandomnessAccounting:
    def test_coin_costs_exactly_one_bit(self):
        source = CountingRandom(1)
        apply_vote_rule(16, 14, PARAMS, source)
        assert source.calls == 1
        assert source.bits_drawn == 1

    def test_deterministic_bands_cost_nothing(self):
        source = CountingRandom(1)
        apply_vote_rule(25, 5, PARAMS, source)
        apply_vote_rule(5, 25, PARAMS, source)
        assert source.calls == 0


class TestVoteRuleProperties:
    @given(
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=2000),
    )
    def test_output_always_valid(self, ones, zeros):
        outcome = vote(ones, zeros)
        assert outcome.bit in (0, 1)
        if outcome.decided:
            assert not outcome.used_coin

    @given(st.integers(min_value=1, max_value=500))
    def test_unanimous_counts_never_flip(self, total):
        """Validity backbone: unanimous operative counts deterministically
        keep the common value and decide."""
        outcome_one = vote(total, 0)
        assert outcome_one.bit == 1
        assert outcome_one.decided
        outcome_zero = vote(0, total)
        assert outcome_zero.bit == 0
        assert outcome_zero.decided

    @given(
        st.integers(min_value=0, max_value=900),
        st.integers(min_value=0, max_value=900),
        st.integers(min_value=0, max_value=30),
    )
    def test_perturbed_views_never_deterministically_split(
        self, ones, zeros, perturbation
    ):
        """Two operative processes whose counts differ by at most the
        inoperative perturbation (< 1/10 of the total) can never adopt
        opposite bits deterministically — the Figure-3 gap property."""
        total = ones + zeros
        if total == 0:
            return
        # Second view: the perturbation removes up to `perturbation` counted
        # values, bounded by the protocol's tolerated fraction.
        bound = total // 10
        shift = min(perturbation, bound, ones)
        other_ones = ones - shift
        other_zeros = zeros
        first = vote(ones, zeros, seed=1)
        second = vote(other_ones, other_zeros, seed=2)
        deterministic_split = (
            not first.used_coin
            and not second.used_coin
            and first.bit != second.bit
        )
        assert not deterministic_split
