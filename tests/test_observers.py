"""The observer bus: hook order, neutrality, and the built-in observers.

The load-bearing property is *neutrality*: attaching any observer must not
change the execution.  Decisions, rounds, the faulty set, per-process
randomness, and every Metrics counter (including the per-round series)
must be identical to an unobserved run — checked here for Algorithm 1 and
for the Ben-Or baseline, both under an omitting adversary.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import SilenceAdversary
from repro.baselines import run_ben_or
from repro.core import run_consensus
from repro.runtime import (
    RoundObserver,
    RoundProfiler,
    SyncNetwork,
    TraceRecorder,
    result_to_dict,
)
from repro.runtime.process import SyncProcess, receive_round


class PingPong(SyncProcess):
    """Minimal two-round protocol for hook-order tests."""

    def program(self, env):
        env.broadcast(("ping",))
        yield from receive_round(env)
        env.broadcast(("pong",))
        yield from receive_round(env)
        env.decide(1)


class HookLog(RoundObserver):
    """Record every hook invocation in dispatch order."""

    def __init__(self) -> None:
        self.calls: list[tuple] = []

    def on_run_start(self, network):
        self.calls.append(("run_start",))

    def on_round_start(self, round_no, network):
        self.calls.append(("round_start", round_no))

    def on_messages_sent(self, round_no, outbound, network):
        self.calls.append(("messages_sent", round_no, len(outbound)))

    def on_adversary_action(self, round_no, view, action, network):
        self.calls.append(("adversary_action", round_no, len(action.omit)))

    def on_deliveries(self, round_no, delivered, lost, network):
        self.calls.append(("deliveries", round_no, len(delivered)))

    def on_round_end(self, round_no, network):
        self.calls.append(("round_end", round_no))

    def on_run_end(self, result, network):
        self.calls.append(("run_end", result.rounds))


def _run_fingerprint(run) -> str:
    """Canonical JSON of everything an observer could have perturbed."""
    return json.dumps(result_to_dict(run.result), sort_keys=True)


# ---------------------------------------------------------------------------
# Hook order.
def test_hook_sequence_is_the_documented_order():
    log = HookLog()
    network = SyncNetwork(
        [PingPong(pid, 3) for pid in range(3)], observers=[log]
    )
    result = network.run()

    assert log.calls[0] == ("run_start",)
    assert log.calls[-1] == ("run_end", result.rounds)
    per_round = ("round_start", "messages_sent", "adversary_action",
                 "deliveries", "round_end")
    body = log.calls[1:-1]
    # Full rounds repeat the 5-hook cycle; the terminal compute phase may
    # contribute one unmatched round_start just before run_end.
    full_rounds, trailer = body[: 5 * result.rounds], body[5 * result.rounds:]
    for index, call in enumerate(full_rounds):
        assert call[0] == per_round[index % 5]
        assert call[1] == index // 5
    assert [call[0] for call in trailer] in ([], ["round_start"])


def test_observers_see_adversary_omissions():
    log = HookLog()
    network = SyncNetwork(
        [PingPong(pid, 4) for pid in range(4)],
        adversary=SilenceAdversary([0]),
        t=1,
        observers=[log],
    )
    network.run()
    omitted = sum(
        call[2] for call in log.calls if call[0] == "adversary_action"
    )
    assert omitted == network.metrics.messages_omitted
    assert omitted > 0


def test_add_observer_is_chainable_and_listed():
    log = HookLog()
    network = SyncNetwork([PingPong(pid, 2) for pid in range(2)])
    assert network.add_observer(log) is network
    assert log in network.observers
    network.run()
    assert log.calls[0] == ("run_start",)


def test_observer_order_follows_attachment_order():
    """Constructor observers run before ones attached via add_observer."""
    order = []

    class Tail(RoundObserver):
        def __init__(self, tag):
            self.tag = tag

        def on_round_end(self, round_no, network):
            order.append(self.tag)

    network = SyncNetwork(
        [PingPong(pid, 2) for pid in range(2)],
        observers=[Tail("constructor")],
    )
    network.add_observer(Tail("added"))
    network.run()
    rounds = network.metrics.rounds
    assert order == ["constructor", "added"] * rounds


# ---------------------------------------------------------------------------
# Neutrality: observed and unobserved runs are byte-identical.
def _algorithm1_run(observers=()):
    inputs = [pid % 2 for pid in range(32)]
    return run_consensus(
        inputs,
        adversary=SilenceAdversary(range(1)),
        t=1,
        seed=11,
        observers=observers,
    )


def _ben_or_run(observers=()):
    inputs = [pid % 2 for pid in range(32)]
    return run_ben_or(
        inputs,
        t=4,
        adversary=SilenceAdversary(range(4)),
        seed=11,
        observers=observers,
    )


@pytest.mark.parametrize("runner", [_algorithm1_run, _ben_or_run],
                         ids=["algorithm1", "ben-or"])
def test_observers_are_neutral(runner):
    baseline = runner()
    recorder = TraceRecorder()
    profiler = RoundProfiler(per_round=True)
    observed = runner(observers=(recorder, profiler, HookLog()))

    assert _run_fingerprint(observed) == _run_fingerprint(baseline)
    assert observed.result.decisions == baseline.result.decisions
    assert observed.metrics.summary() == baseline.metrics.summary()
    assert (
        observed.metrics.messages_per_round
        == baseline.metrics.messages_per_round
    )
    assert observed.metrics.bits_per_round == baseline.metrics.bits_per_round
    assert (
        observed.result.randomness_per_process
        == baseline.result.randomness_per_process
    )
    assert observed.result.faulty == baseline.result.faulty

    # The observers actually observed something.
    assert len(recorder.rounds) == baseline.metrics.rounds
    assert recorder.total_omissions() == baseline.metrics.messages_omitted
    assert profiler.rounds == baseline.metrics.rounds


# ---------------------------------------------------------------------------
# RoundProfiler internals.
def test_profiler_accumulates_phases():
    profiler = RoundProfiler(per_round=True)
    network = SyncNetwork(
        [PingPong(pid, 4) for pid in range(4)], observers=[profiler]
    )
    result = network.run()

    assert profiler.rounds == result.metrics.rounds
    assert len(profiler.round_times) == profiler.rounds
    for value in (profiler.compute, profiler.adversary, profiler.delivery,
                  profiler.overhead):
        assert value >= 0.0
    assert profiler.wall_time >= (
        profiler.compute + profiler.adversary + profiler.delivery
    )
    summary = profiler.summary()
    assert summary["rounds"] == profiler.rounds
    assert set(summary) == {
        "rounds", "wall_time", "compute", "adversary", "delivery", "overhead"
    }
    hottest = profiler.hottest_rounds(2)
    assert len(hottest) == min(2, profiler.rounds)
    assert all(seconds >= 0.0 for _, seconds in hottest)


def test_profiler_without_per_round_keeps_no_series():
    profiler = RoundProfiler()
    network = SyncNetwork(
        [PingPong(pid, 2) for pid in range(2)], observers=[profiler]
    )
    network.run()
    assert profiler.round_times == []
    assert profiler.hottest_rounds() == []


def test_metrics_series_visible_from_round_end():
    """MetricsObserver runs first, so user hooks read current series."""

    class SeriesCheck(RoundObserver):
        def __init__(self) -> None:
            self.ok = True

        def on_round_end(self, round_no, network):
            series = network.metrics.messages_per_round
            self.ok = self.ok and len(series) == round_no + 1

    check = SeriesCheck()
    network = SyncNetwork(
        [PingPong(pid, 3) for pid in range(3)], observers=[check]
    )
    network.run()
    assert check.ok
