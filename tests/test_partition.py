"""Tests for the sqrt(n)-decomposition and the binary bag trees (Figure 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    BagTree,
    cached_bag_tree,
    cached_sqrt_partition,
    global_stage_count,
    sqrt_partition,
)


class TestSqrtPartition:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            sqrt_partition(0)

    def test_singleton(self):
        partition = sqrt_partition(1)
        assert partition.groups == ((0,),)

    def test_perfect_square(self):
        partition = sqrt_partition(16)
        assert partition.group_count == 4
        assert all(len(group) == 4 for group in partition.groups)

    @given(st.integers(min_value=1, max_value=3000))
    def test_partition_invariants(self, n):
        partition = sqrt_partition(n)
        side = math.isqrt(n)
        if side * side < n:
            side += 1
        # Paper's shape: ceil(sqrt n) groups of size <= ceil(sqrt n).
        assert partition.group_count == side
        assert all(1 <= len(group) <= side for group in partition.groups)
        # Disjoint cover of range(n).
        seen = [pid for group in partition.groups for pid in group]
        assert sorted(seen) == list(range(n))
        # group_of is consistent.
        for index, group in enumerate(partition.groups):
            for pid in group:
                assert partition.group_index_of(pid) == index

    @given(st.integers(min_value=2, max_value=3000))
    def test_groups_balanced_within_one(self, n):
        partition = sqrt_partition(n)
        sizes = [len(group) for group in partition.groups]
        assert max(sizes) - min(sizes) <= 1

    def test_cache_returns_same_object(self):
        assert cached_sqrt_partition(100) is cached_sqrt_partition(100)


class TestBagTree:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BagTree(())

    def test_singleton_tree(self):
        tree = BagTree((7,))
        assert tree.num_stages == 0
        assert tree.layers[0] == [(7,)]

    def test_binary_structure(self):
        tree = BagTree((10, 11, 12, 13, 14))
        assert tree.num_stages == 3
        assert tree.layers[0] == [(10,), (11,), (12,), (13,), (14,)]
        assert tree.layers[1] == [(10, 11), (12, 13), (14,)]
        assert tree.layers[2] == [(10, 11, 12, 13), (14,)]
        assert tree.layers[3] == [(10, 11, 12, 13, 14)]

    def test_root_is_whole_group(self):
        members = tuple(range(100, 117))
        tree = BagTree(members)
        assert tree.layers[-1] == [members]

    def test_bag_index(self):
        tree = BagTree((0, 1, 2, 3))
        assert tree.bag_index(0, 2) == 2
        assert tree.bag_index(1, 2) == 1
        assert tree.bag_index(2, 3) == 0

    def test_child_indices(self):
        tree = BagTree((0, 1, 2, 3, 4))
        assert tree.child_indices(1, 0) == (0, 1)
        assert tree.child_indices(1, 2) == (4, None)
        with pytest.raises(ValueError):
            tree.child_indices(0, 0)

    @given(st.integers(min_value=1, max_value=200))
    def test_layers_partition_members(self, size):
        members = tuple(range(size))
        tree = BagTree(members)
        for layer in tree.layers:
            flattened = [pid for bag in layer for pid in bag]
            assert sorted(flattened) == list(members)

    @given(st.integers(min_value=1, max_value=200))
    def test_parent_is_union_of_children(self, size):
        tree = BagTree(tuple(range(size)))
        for layer_index in range(1, len(tree.layers)):
            for bag_index, bag in enumerate(tree.layers[layer_index]):
                left, right = tree.child_indices(layer_index, bag_index)
                expected = tree.layers[layer_index - 1][left]
                if right is not None:
                    expected = expected + tree.layers[layer_index - 1][right]
                assert bag == expected

    @given(st.integers(min_value=1, max_value=500))
    def test_height_logarithmic(self, size):
        tree = BagTree(tuple(range(size)))
        assert tree.num_stages == max(0, (size - 1).bit_length())

    def test_cached_tree(self):
        assert cached_bag_tree((1, 2, 3)) is cached_bag_tree((1, 2, 3))


class TestGlobalStageCount:
    @given(st.integers(min_value=1, max_value=2000))
    def test_covers_every_group(self, n):
        partition = cached_sqrt_partition(n)
        stages = global_stage_count(partition)
        for group in partition.groups:
            assert cached_bag_tree(group).num_stages <= stages
