"""Unit tests for the counted random source and seed derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import CountingRandom, derive_seeds, spawn_sources
from repro.runtime.randomness import stable_seed


class TestCountingRandom:
    def test_bit_accounting(self):
        source = CountingRandom(1)
        values = [source.bit() for _ in range(10)]
        assert all(value in (0, 1) for value in values)
        assert source.calls == 10
        assert source.bits_drawn == 10

    def test_bits_accounting(self):
        source = CountingRandom(1)
        value = source.bits(16)
        assert 0 <= value < 1 << 16
        assert source.calls == 1
        assert source.bits_drawn == 16

    def test_zero_bits_free(self):
        source = CountingRandom(1)
        assert source.bits(0) == 0
        assert source.calls == 0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            CountingRandom(1).bits(-1)

    def test_randrange_accounting(self):
        source = CountingRandom(2)
        value = source.randrange(10)
        assert 0 <= value < 10
        assert source.bits_drawn == 4  # ceil(log2 10)

    def test_randrange_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CountingRandom(1).randrange(0)

    def test_choice_accounting(self):
        source = CountingRandom(3)
        value = source.choice([10, 20, 30, 40])
        assert value in (10, 20, 30, 40)
        assert source.bits_drawn == 2

    def test_choice_empty_rejected(self):
        with pytest.raises(IndexError):
            CountingRandom(1).choice([])

    def test_sample_accounting(self):
        source = CountingRandom(4)
        sample = source.sample(list(range(8)), 3)
        assert len(set(sample)) == 3
        assert source.bits_drawn == 9

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError):
            CountingRandom(1).sample([1, 2], 3)

    def test_randrange_exact_bits_beyond_double_precision(self):
        # ceil(log2(2**53 + 1)) via floats rounds down to 53; the integer
        # accounting must charge (upper - 1).bit_length() = 54.
        source = CountingRandom(7)
        source.randrange(2**53 + 1)
        assert source.bits_drawn == 54

    def test_randrange_huge_bounds(self):
        source = CountingRandom(7)
        source.randrange(2**64)
        assert source.bits_drawn == 64
        source.randrange(2**64 + 1)
        assert source.bits_drawn == 64 + 65

    def test_choice_exact_bits_beyond_double_precision(self):
        source = CountingRandom(8)
        value = source.choice(range(2**53 + 1))
        assert 0 <= value <= 2**53
        assert source.bits_drawn == 54

    def test_sample_exact_bits_beyond_double_precision(self):
        source = CountingRandom(9)
        sample = source.sample(range(2**53 + 1), 2)
        assert len(set(sample)) == 2
        assert source.bits_drawn == 2 * 54

    @given(st.integers(min_value=2, max_value=1 << 80))
    def test_randrange_bits_match_bit_length(self, upper):
        source = CountingRandom(0)
        source.randrange(upper)
        assert source.bits_drawn == (upper - 1).bit_length()

    def test_uniform_counts_double_mantissa(self):
        source = CountingRandom(5)
        value = source.uniform()
        assert 0.0 <= value < 1.0
        assert source.bits_drawn == 53

    def test_shuffle_counts_entropy(self):
        source = CountingRandom(6)
        items = list(range(6))
        source.shuffle(items)
        assert sorted(items) == list(range(6))
        assert source.bits_drawn >= 9  # log2(6!) ~ 9.49

    def test_determinism(self):
        a = CountingRandom(99)
        b = CountingRandom(99)
        assert [a.bit() for _ in range(32)] == [b.bit() for _ in range(32)]

    @given(st.lists(st.integers(min_value=1, max_value=24), max_size=30))
    def test_accounting_is_sum_of_requests(self, requests):
        source = CountingRandom(0)
        for request in requests:
            source.bits(request)
        assert source.calls == len(requests)
        assert source.bits_drawn == sum(requests)


class TestSeedDerivation:
    def test_stable_seed_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_stable_seed_fits_prng(self):
        assert 0 <= stable_seed("anything", 42, (1, 2)) < 1 << 63

    def test_derive_seeds_reproducible(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)
        assert derive_seeds(7, 5) != derive_seeds(8, 5)
        assert derive_seeds(7, 5, salt="x") != derive_seeds(7, 5, salt="y")

    def test_derive_seeds_distinct_per_process(self):
        seeds = derive_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_spawn_sources_independent_streams(self):
        sources = spawn_sources(0, 2)
        a = [sources[0].bit() for _ in range(64)]
        b = [sources[1].bit() for _ in range(64)]
        assert a != b
