"""Tests for the probabilistic valency machinery (Pr(H, A) bands)."""

import math

import pytest

from repro.lowerbound import (
    BIVALENT,
    NULL_VALENT,
    ONE_VALENT,
    ZERO_VALENT,
    CoinVotingProtocol,
    classify_state,
    lemma13_probabilistic_witness,
    probability_band,
)


class TestProbabilityBand:
    def test_unanimous_states_are_certain(self):
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        assert probability_band(protocol, (1, 1, 1), t=1) == (1.0, 1.0)
        assert probability_band(protocol, (0, 0, 0), t=1) == (0.0, 0.0)

    def test_band_is_ordered(self):
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        for inputs in ((0, 1, 1), (0, 0, 1), (1, 0, 1)):
            inf_p, sup_p = probability_band(protocol, inputs, t=1)
            assert 0.0 <= inf_p <= sup_p <= 1.0

    def test_no_adversary_collapses_band(self):
        """With t = 0 the adversary has exactly one (empty) strategy, so
        inf == sup: the band is a single probability."""
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        inf_p, sup_p = probability_band(protocol, (0, 1, 1), t=0)
        assert math.isclose(inf_p, sup_p)

    def test_adversary_widens_band(self):
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        inf0, sup0 = probability_band(protocol, (0, 1, 1), t=0)
        inf1, sup1 = probability_band(protocol, (0, 1, 1), t=1)
        assert inf1 <= inf0 and sup1 >= sup0
        assert sup1 - inf1 > sup0 - inf0

    def test_adversary_can_force_one_from_mixed_majority_one(self):
        """Crashing the lone 0-holder before it speaks forces unanimity 1."""
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        _, sup_p = probability_band(protocol, (0, 1, 1), t=1)
        assert sup_p == 1.0

    def test_longer_horizon_extremizes_no_adversary_probability(self):
        """Without an adversary, each extra round gives the mixed system
        another unification attempt, so Pr(consensus on 1) converges; it
        must stay a valid probability and be non-decreasing in rounds for
        this monotone protocol's 1-side."""
        bands = [
            probability_band(CoinVotingProtocol(3, rounds), (0, 1, 1), 0)[1]
            for rounds in (1, 2, 3, 4)
        ]
        assert all(0.0 <= value <= 1.0 for value in bands)

    def test_input_validation(self):
        protocol = CoinVotingProtocol(n=3, max_rounds=2)
        with pytest.raises(ValueError):
            probability_band(protocol, (0, 1), t=1)
        with pytest.raises(ValueError):
            CoinVotingProtocol(n=0, max_rounds=2)


class TestClassification:
    def test_unanimous_states_univalent(self):
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        assert classify_state(protocol, (1, 1, 1), 1).classification == ONE_VALENT
        assert classify_state(protocol, (0, 0, 0), 1).classification == ZERO_VALENT

    def test_epsilon_validation(self):
        protocol = CoinVotingProtocol(n=2, max_rounds=2)
        with pytest.raises(ValueError):
            classify_state(protocol, (0, 1), 1, epsilon=0.6)

    def test_lemma13_witness_at_generous_epsilon(self):
        """With the toy-scale slack, a mixed input is bivalent: the
        adversary can push the outcome probability both above 1-eps and
        below eps (Lemma 13's content)."""
        protocol = CoinVotingProtocol(n=3, max_rounds=3)
        witness = lemma13_probabilistic_witness(protocol, t=1, epsilon=0.2)
        assert witness is not None
        assert witness.classification in (BIVALENT, NULL_VALENT)
        assert witness.sup_probability > 0.8
        assert witness.inf_probability < 0.2

    def test_no_witness_without_adversary(self):
        """With t = 0 every band is a point, so nothing is bivalent at a
        small epsilon — the witness needs adversarial power, exactly as in
        the lemma's statement ('if the adversary can control one
        process')."""
        protocol = CoinVotingProtocol(n=2, max_rounds=2)
        witness = lemma13_probabilistic_witness(protocol, t=0, epsilon=0.05)
        if witness is not None:
            assert witness.classification == NULL_VALENT
