"""Tests for early-stopping terminating reliable broadcast."""

import pytest

from repro.adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
)
from repro.baselines import BOTTOM, TRBProcess, run_trb


class TestConstruction:
    def test_sender_needs_value(self):
        with pytest.raises(ValueError):
            TRBProcess(0, 8, sender=0, t=1, value=None)

    def test_validation(self):
        with pytest.raises(ValueError):
            TRBProcess(0, 8, sender=9, t=1, value=1)
        with pytest.raises(ValueError):
            TRBProcess(0, 8, sender=1, t=8)


class TestFaultFree:
    @pytest.mark.parametrize("t", [1, 3, 7])
    def test_integrity_and_agreement(self, t):
        result = run_trb(24, sender=3, value=9, t=t, seed=1).result
        assert set(result.decisions.values()) == {9}

    def test_early_stopping_is_t_independent(self):
        """Without faults the QUIET quorum fires immediately: rounds do not
        grow with the budget t — the [34] early-stopping property."""
        rounds = [
            run_trb(24, sender=0, value=5, t=t, seed=2).result.time_to_agreement()
            for t in (1, 4, 8)
        ]
        assert len(set(rounds)) == 1
        assert rounds[0] <= 6


class TestFaultySender:
    def test_silenced_sender_delivers_bottom(self):
        result = run_trb(
            24, sender=0, value=5, t=4,
            adversary=SilenceAdversary([0]), seed=3,
        ).result
        assert set(result.non_faulty_decisions().values()) == {BOTTOM}

    def test_sender_crashing_later_still_agrees(self):
        """A sender crashed after its first broadcast: everyone already has
        the value and must agree on it."""
        result = run_trb(
            24, sender=0, value=5, t=4,
            adversary=StaticCrashAdversary({1: [0]}), seed=4,
        ).result
        assert set(result.non_faulty_decisions().values()) == {5}

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_under_noisy_omissions(self, seed):
        result = run_trb(
            20, sender=0, value=3, t=3,
            adversary=RandomOmissionAdversary(0.7, seed=seed), seed=seed,
        ).result
        values = set(result.non_faulty_decisions().values())
        assert len(values) == 1
        assert values <= {3, BOTTOM}

    def test_partial_first_round_converges(self):
        """The adversary delivers the faulty sender's broadcast to nobody:
        without relays the value never enters the system."""
        result = run_trb(
            16, sender=0, value=1, t=2,
            adversary=SilenceAdversary([0]), seed=5,
        ).result
        values = set(result.non_faulty_decisions().values())
        assert values == {BOTTOM}


class TestEarlyStoppingShape:
    def test_rounds_grow_with_actual_faults_not_budget(self):
        """min(f + O(1), t + 1): crashing relays delays termination, but
        only the *actual* crash count matters."""
        t = 5
        fault_free = run_trb(24, sender=0, value=1, t=t, seed=6).result
        sender_dead = run_trb(
            24, sender=0, value=1, t=t,
            adversary=SilenceAdversary([0]), seed=6,
        ).result
        assert fault_free.time_to_agreement() < sender_dead.time_to_agreement()
        # Even the worst case is bounded by the t+2 horizon (+ wind-down).
        assert sender_dead.time_to_agreement() <= t + 4
