"""Tests for repro.lint: rules, pragmas, baselines, and the CLI.

Each rule is demonstrated on a planted violation (findings produced /
nonzero CLI exit) and on clean code (no findings / zero exit); pragma and
baseline semantics get their own sections.  Fixture sources are linted
in-memory via :func:`repro.lint.lint_source` with a *relpath* chosen to
land inside (or outside) each rule's scope.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    lint_paths,
    lint_source,
    write_baseline,
)
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(findings) -> list[str]:
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# REP001 — unseeded randomness
class TestRep001:
    def test_global_random_call_flagged(self):
        src = "import random\nx = random.randint(0, 5)\n"
        assert codes(lint_source(src, "src/foo.py")) == ["REP001"]

    def test_from_import_of_global_function_flagged(self):
        src = "from random import shuffle\n"
        assert codes(lint_source(src, "src/foo.py")) == ["REP001"]

    def test_unseeded_random_instance_flagged(self):
        src = "import random\nr = random.Random()\n"
        assert codes(lint_source(src, "src/foo.py")) == ["REP001"]

    def test_seeded_random_instance_clean(self):
        src = "import random\nr = random.Random(7)\n"
        assert lint_source(src, "src/foo.py") == []

    def test_system_random_flagged(self):
        src = "import random\nr = random.SystemRandom()\n"
        assert codes(lint_source(src, "src/foo.py")) == ["REP001"]

    def test_randomness_module_exempt(self):
        src = "import random\nx = random.getrandbits(8)\n"
        assert lint_source(src, "src/repro/runtime/randomness.py") == []

    def test_method_on_seeded_instance_clean(self):
        src = "import random\nr = random.Random(1)\ny = r.randint(0, 5)\n"
        assert lint_source(src, "src/foo.py") == []


# ---------------------------------------------------------------------------
# REP002 — wall clock / entropy in replayed code
class TestRep002:
    def test_time_time_in_engine_flagged(self):
        src = "import time\nt = time.time()\n"
        assert codes(lint_source(src, "src/repro/runtime/x.py")) == ["REP002"]

    def test_perf_counter_allowed(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "src/repro/runtime/x.py") == []

    def test_uuid_import_in_core_flagged(self):
        src = "import uuid\n"
        assert codes(lint_source(src, "src/repro/core/x.py")) == ["REP002"]

    def test_secrets_import_flagged(self):
        src = "from secrets import token_hex\n"
        assert codes(lint_source(src, "src/repro/adversary/x.py")) == ["REP002"]

    def test_datetime_now_in_replay_flagged(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(lint_source(src, "src/repro/replay/x.py")) == ["REP002"]

    def test_os_urandom_flagged(self):
        src = "import os\nb = os.urandom(16)\n"
        assert codes(lint_source(src, "src/repro/harness/x.py")) == ["REP002"]

    def test_out_of_scope_module_unflagged(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, "src/repro/analysis/x.py") == []


# ---------------------------------------------------------------------------
# REP003 — order-unstable iteration
class TestRep003:
    def test_for_over_set_flagged(self):
        src = "s = {1, 2}\nfor x in s:\n    print(x)\n"
        assert codes(lint_source(src, "src/repro/core/x.py")) == ["REP003"]

    def test_sorted_wrapper_clean(self):
        src = "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_list_of_set_flagged(self):
        src = "s = set([3])\ny = list(s)\n"
        assert codes(lint_source(src, "src/repro/runtime/x.py")) == ["REP003"]

    def test_comprehension_over_frozenset_flagged(self):
        src = "out = [v for v in frozenset((1, 2))]\n"
        assert codes(lint_source(src, "src/repro/adversary/x.py")) == ["REP003"]

    def test_set_annotation_tracked(self):
        src = "def f() -> None:\n    s: set[int] = make()\n    for x in s:\n        pass\n"
        assert codes(lint_source(src, "src/repro/baselines/x.py")) == ["REP003"]

    def test_id_sort_key_flagged(self):
        src = "xs = [3, 1]\nxs.sort(key=id)\n"
        assert codes(lint_source(src, "src/repro/core/x.py")) == ["REP003"]

    def test_id_lambda_sort_key_flagged(self):
        src = "ys = sorted(items, key=lambda v: id(v))\n"
        assert codes(lint_source(src, "src/repro/core/x.py")) == ["REP003"]

    def test_dict_iteration_not_flagged(self):
        # CPython dicts iterate in insertion order (3.7+): deterministic.
        src = "d = {1: 2}\nfor k in d:\n    print(k)\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_set_consumed_by_frozenset_clean(self):
        src = "s = {1, 2}\nf = frozenset(s)\nm = min(s)\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_out_of_scope_module_unflagged(self):
        src = "s = {1}\nfor x in s:\n    print(x)\n"
        assert lint_source(src, "src/repro/analysis/x.py") == []


# ---------------------------------------------------------------------------
# REP004 — deprecated APIs
class TestRep004:
    def test_on_round_keyword_flagged(self):
        src = "net = SyncNetwork(procs, on_round=cb)\n"
        assert codes(lint_source(src, "tests/x.py")) == ["REP004"]

    def test_tuple_unpack_of_run_helper_flagged(self):
        src = "res, procs = run_ben_or([0, 1])\n"
        assert codes(lint_source(src, "tests/x.py")) == ["REP004"]

    def test_indexing_run_variable_flagged(self):
        src = "r = run_consensus(bits)\nval = r[0]\n"
        assert codes(lint_source(src, "tests/x.py")) == ["REP004"]

    def test_named_attributes_clean(self):
        src = "r = run_consensus(bits)\nval = r.result\nprocs = r.processes\n"
        assert lint_source(src, "tests/x.py") == []

    def test_legacy_setup_signature_flagged(self):
        src = (
            "class Bad(Adversary):\n"
            "    def setup(self, n, t, processes):\n"
            "        pass\n"
        )
        assert codes(lint_source(src, "src/x.py")) == ["REP004"]

    def test_context_setup_clean(self):
        src = (
            "class Good(Adversary):\n"
            "    def setup(self, ctx):\n"
            "        self.n = ctx.n\n"
        )
        assert lint_source(src, "src/x.py") == []


# ---------------------------------------------------------------------------
# REP005 — adversary purity
class TestRep005:
    def test_mutating_view_container_flagged(self):
        src = (
            "class Bad(Adversary):\n"
            "    def act(self, view):\n"
            "        view.faulty.add(0)\n"
            "        return None\n"
        )
        assert codes(lint_source(src, "src/x.py")) == ["REP005"]

    def test_assigning_through_loop_variable_flagged(self):
        src = (
            "class Bad(Adversary):\n"
            "    def act(self, view):\n"
            "        for message in view.messages:\n"
            "            message.payload = 0\n"
        )
        assert codes(lint_source(src, "src/x.py")) == ["REP005"]

    def test_pure_adversary_clean(self):
        src = (
            "class Good(Adversary):\n"
            "    def act(self, view):\n"
            "        pool = sorted(view.alive)\n"
            "        return AdversaryAction(corrupt=frozenset(), omit=frozenset())\n"
        )
        assert lint_source(src, "src/x.py") == []

    def test_ctx_rng_draws_exempt(self):
        src = (
            "class Good(Adversary):\n"
            "    def setup(self, ctx):\n"
            "        self.order = ctx.rng.sample(range(4), 4)\n"
        )
        assert lint_source(src, "src/x.py") == []

    def test_self_mutation_clean(self):
        src = (
            "class Good(Adversary):\n"
            "    def act(self, view):\n"
            "        self.seen.append(view.round)\n"
            "        return None\n"
        )
        assert lint_source(src, "src/x.py") == []


# ---------------------------------------------------------------------------
# REP006 — protocol registration
class TestRep006:
    def test_unregistered_protocol_module_flagged(self):
        src = "def run_myproto(bits):\n    return bits\n"
        assert codes(lint_source(src, "src/repro/core/myproto.py")) == ["REP006"]

    def test_in_module_registration_clean(self):
        src = (
            "from repro.harness.registry import register_protocol\n"
            "def run_myproto(bits):\n"
            "    return bits\n"
            "register_protocol(spec)\n"
        )
        assert lint_source(src, "src/repro/core/myproto.py") == []

    def test_module_without_entry_point_clean(self):
        src = "def helper(x):\n    return x\n"
        assert lint_source(src, "src/repro/core/util.py") == []

    def test_out_of_scope_module_unflagged(self):
        src = "def run_myproto(bits):\n    return bits\n"
        assert lint_source(src, "src/repro/analysis/myproto.py") == []


# ---------------------------------------------------------------------------
# REP007 — per-copy Message construction in engine hot loops
class TestRep007:
    def test_message_in_for_loop_flagged(self):
        src = (
            "def deliver(batch):\n"
            "    out = []\n"
            "    for m in batch:\n"
            "        out.append(Message(m.sender, m.recipient, m.payload))\n"
            "    return out\n"
        )
        assert codes(
            lint_source(src, "src/repro/runtime/network.py")
        ) == ["REP007"]

    def test_message_in_comprehension_flagged(self):
        src = (
            "def expand(records):\n"
            "    return [Message(r.sender, p, r.payload)\n"
            "            for r in records for p in r.recipients]\n"
        )
        assert codes(
            lint_source(src, "src/repro/runtime/columnar.py")
        ) == ["REP007"]

    def test_message_in_while_loop_flagged(self):
        src = (
            "def drain(queue):\n"
            "    while queue:\n"
            "        queue.pop().append(Message(0, 1, None))\n"
        )
        assert codes(
            lint_source(src, "src/repro/runtime/network.py")
        ) == ["REP007"]

    def test_single_construction_outside_loop_clean(self):
        src = (
            "def reply(m):\n"
            "    return Message(m.recipient, m.sender, m.payload)\n"
        )
        assert lint_source(src, "src/repro/runtime/network.py") == []

    def test_designated_materialization_points_exempt(self):
        loop = (
            "    def {name}(self, items):\n"
            "        out = []\n"
            "        for item in items:\n"
            "            out.append(Message(0, item, None))\n"
            "        return out\n"
        )
        for relpath, name in (
            ("src/repro/runtime/columnar.py", "_materialize"),
            ("src/repro/runtime/network.py", "_deliver"),
            ("src/repro/runtime/process.py", "_queue_multicast"),
        ):
            src = "class X:\n" + loop.format(name=name)
            assert lint_source(src, relpath) == [], relpath
            renamed = "class X:\n" + loop.format(name="other")
            assert codes(lint_source(renamed, relpath)) == ["REP007"], relpath

    def test_messages_module_wholly_exempt(self):
        src = (
            "def __iter__(self):\n"
            "    for r in self.records:\n"
            "        yield Message(r.sender, r.recipient, r.payload)\n"
        )
        assert lint_source(src, "src/repro/runtime/messages.py") == []

    def test_outside_runtime_unflagged(self):
        src = (
            "def make(n):\n"
            "    return [Message(0, i, None) for i in range(n)]\n"
        )
        assert lint_source(src, "src/repro/adversary/tool.py") == []

    def test_loop_iterable_evaluated_once_is_clean(self):
        src = (
            "def probe(x):\n"
            "    for m in [Message(0, 1, None)]:\n"
            "        use(m)\n"
        )
        assert lint_source(src, "src/repro/runtime/network.py") == []


# ---------------------------------------------------------------------------
# REP008 — direct engine construction outside harness/designated fixtures
class TestRep008:
    def test_library_construction_flagged(self):
        src = "network = SyncNetwork(processes, t=1, seed=0)\n"
        assert codes(
            lint_source(src, "src/repro/analysis/tool.py")
        ) == ["REP008"]

    def test_example_construction_flagged(self):
        src = "net = SyncNetwork(procs)\nnet.run()\n"
        assert codes(lint_source(src, "examples/demo.py")) == ["REP008"]

    def test_dotted_construction_flagged(self):
        src = "net = repro.runtime.SyncNetwork(procs)\n"
        assert codes(lint_source(src, "src/repro/analysis/x.py")) == ["REP008"]

    def test_harness_is_designated_fixture(self):
        src = "network = SyncNetwork(processes, t=budget)\n"
        assert lint_source(src, "src/repro/harness/registry.py") == []

    def test_runtime_package_is_designated_fixture(self):
        src = "network = SyncNetwork(processes)\n"
        assert lint_source(src, "src/repro/runtime/trace.py") == []

    def test_tests_and_benchmarks_are_designated_fixtures(self):
        src = "network = SyncNetwork(processes)\n"
        assert lint_source(src, "tests/test_network.py") == []
        assert lint_source(src, "benchmarks/bench_engine.py") == []

    def test_pragma_designates_a_fixture(self):
        src = (
            "network = SyncNetwork(processes)"
            "  # repro-lint: disable=REP008\n"
        )
        assert lint_source(src, "src/repro/analysis/tool.py") == []

    def test_execute_call_clean(self):
        src = "run = execute('ben-or', inputs, model='partial-synchrony')\n"
        assert lint_source(src, "src/repro/analysis/tool.py") == []


# ---------------------------------------------------------------------------
# REP009 — cell identity derived outside CellId
class TestRep009:
    def test_identity_subscript_tuple_flagged(self):
        src = (
            'key = (record["protocol"], record["n"],'
            ' record["adversary"], record["seed"])\n'
        )
        assert codes(
            lint_source(src, "src/repro/fabric/probe.py")
        ) == ["REP009"]

    def test_identity_attribute_tuple_flagged(self):
        src = "key = (cell.protocol, cell.adversary, cell.seed)\n"
        assert codes(
            lint_source(src, "src/repro/analysis/campaign.py")
        ) == ["REP009"]

    def test_str_options_flagged(self):
        src = "cache[str(options)] = record\n"
        assert codes(lint_source(src, "src/repro/cli.py")) == ["REP009"]

    def test_json_dumps_model_options_flagged(self):
        src = "import json\nkey = json.dumps(model_options)\n"
        assert codes(
            lint_source(src, "src/repro/fabric/probe.py")
        ) == ["REP009"]

    def test_bare_name_tuple_clean(self):
        src = "for n, adversary, seed in grid:\n    run(n, adversary, seed)\n"
        assert lint_source(src, "src/repro/fabric/probe.py") == []

    def test_two_field_tuple_clean(self):
        src = 'pair = (record["protocol"], record["n"])\n'
        assert lint_source(src, "src/repro/fabric/probe.py") == []

    def test_non_identity_dumps_clean(self):
        src = "import json\nline = json.dumps(record, sort_keys=True)\n"
        assert lint_source(src, "src/repro/fabric/probe.py") == []

    def test_out_of_scope_module_unflagged(self):
        src = 'key = (r["protocol"], r["n"], r["adversary"], r["seed"])\n'
        assert lint_source(src, "src/repro/analysis/experiments.py") == []

    def test_designated_implementation_exempt(self):
        src = "payload = (self.protocol, self.n, self.adversary, self.seed)\n"
        assert lint_source(src, "src/repro/fabric/digest.py") == []


# ---------------------------------------------------------------------------
# Pragmas
class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self):
        src = "s = {1}\nfor x in s:  # repro-lint: disable=REP003\n    print(x)\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_line_pragma_does_not_suppress_other_rules(self):
        src = (
            "import random\n"
            "x = random.randint(0, 5)  # repro-lint: disable=REP003\n"
        )
        assert codes(lint_source(src, "src/foo.py")) == ["REP001"]

    def test_disable_all_pragma(self):
        src = "s = {1}\nfor x in s:  # repro-lint: disable=all\n    print(x)\n"
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_file_pragma_suppresses_whole_module(self):
        src = (
            "# repro-lint: disable-file=REP003\n"
            "s = {1}\n"
            "for x in s:\n"
            "    print(x)\n"
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_multiple_codes_in_one_pragma(self):
        src = (
            "import random\n"
            "x = random.randint(0, 5)  # repro-lint: disable=REP001,REP002\n"
        )
        assert lint_source(src, "src/foo.py") == []


# ---------------------------------------------------------------------------
# Fingerprints & baselines
class TestBaseline:
    def make_finding(self, line: int, text: str = "for x in s:") -> Finding:
        return Finding(
            path="src/repro/core/x.py",
            line=line,
            col=9,
            code="REP003",
            message="iterating a set",
            source_line=text,
        )

    def test_fingerprint_survives_line_moves(self):
        assert (
            self.make_finding(2).fingerprint == self.make_finding(40).fingerprint
        )

    def test_fingerprint_changes_with_source_line(self):
        assert (
            self.make_finding(2).fingerprint
            != self.make_finding(2, "for y in s:").fingerprint
        )

    def test_baselined_finding_not_new(self, tmp_path):
        finding = self.make_finding(2)
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        baseline = Baseline.load(path)
        new, baselined = baseline.partition([finding])
        assert new == [] and [f.baselined for f in baselined] == [True]

    def test_duplicate_finding_needs_two_entries(self, tmp_path):
        # The baseline is a multiset: one entry absolves one occurrence.
        finding = self.make_finding(2)
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        baseline = Baseline.load(path)
        new, baselined = baseline.partition(
            [self.make_finding(2), self.make_finding(7)]
        )
        assert len(baselined) == 1 and len(new) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        new, baselined = baseline.partition([self.make_finding(2)])
        assert len(new) == 1 and baselined == []

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema": 99, "findings": []}')
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# CLI
def plant_tree(tmp_path: Path, source: str) -> Path:
    module = tmp_path / "src" / "repro" / "core" / "planted.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    return module


CLEAN = "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n"
DIRTY = "s = {1, 2}\nfor x in s:\n    print(x)\n"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        plant_tree(tmp_path, CLEAN)
        exit_code = lint_main([str(tmp_path), "--no-baseline"])
        assert exit_code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_planted_violation_exits_nonzero(self, tmp_path, capsys):
        plant_tree(tmp_path, DIRTY)
        exit_code = lint_main([str(tmp_path), "--no-baseline"])
        assert exit_code == 1
        assert "REP003" in capsys.readouterr().out

    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        plant_tree(tmp_path, DIRTY)
        exit_code = lint_main(
            [str(tmp_path), "--no-baseline", "--format", "github"]
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert out.startswith("::error file=") and "title=REP003" in out

    def test_json_format_shape(self, tmp_path, capsys):
        plant_tree(tmp_path, DIRTY)
        exit_code = lint_main(
            [str(tmp_path), "--no-baseline", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["version"] == 1
        assert payload["new"] == 1 and payload["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["code"] == "REP003"
        assert finding["line"] == 2 and not finding["baselined"]
        assert isinstance(finding["fingerprint"], str)

    def test_update_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        plant_tree(tmp_path, DIRTY)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src", "--update-baseline"]) == 0
        capsys.readouterr()
        # Grandfathered finding no longer fails the run...
        assert lint_main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but a new violation alongside it still does.
        extra = tmp_path / "src" / "repro" / "core" / "fresh.py"
        extra.write_text(DIRTY)
        assert lint_main(["src"]) == 1

    def test_syntax_error_reported_and_fails(self, tmp_path, capsys):
        plant_tree(tmp_path, "def broken(:\n")
        exit_code = lint_main([str(tmp_path), "--no-baseline"])
        assert exit_code == 1
        assert "REP000" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([str(tmp_path / "nope"), "--no-baseline"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP001", "REP002", "REP003", "REP004",
            "REP005", "REP006", "REP007", "REP008",
        ):
            assert code in out


# ---------------------------------------------------------------------------
# The repo itself stays clean (the same gate CI enforces).
def test_repo_sources_have_no_new_findings():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    report = lint_paths(
        [REPO_ROOT / "src" / "repro"], root=REPO_ROOT, baseline=baseline
    )
    assert report.new == [], [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in report.new
    ]
