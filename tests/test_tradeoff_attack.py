"""Tests for the Theorem-2 constructive attack experiment."""

from repro.lowerbound import (
    BalancingCrashAdversary,
    measure_tradeoff_product,
)


class TestBalancingAdversary:
    def test_attack_is_legal_and_stalls(self):
        """The adversary obeys the engine's legality rules (the run raising
        no AdversaryProtocolError is the check) and forces more rounds than
        an unattacked run."""
        baseline = measure_tradeoff_product(32, 0, [32], seed=1, max_phases=200)
        attacked = measure_tradeoff_product(32, 8, [32], seed=1, max_phases=200)
        assert attacked[0].rounds >= baseline[0].rounds

    def test_corruptions_bounded_by_budget(self):
        adversary = BalancingCrashAdversary()
        from repro.baselines.ben_or import run_ben_or

        result = run_ben_or(
            [pid % 2 for pid in range(32)],
            t=6,
            adversary=adversary,
            seed=2,
            max_phases=150,
        ).result
        assert sum(adversary.corruptions_per_round) <= 6
        assert len(result.faulty) <= 6


class TestProductMeasurements:
    def test_product_respects_lower_bound(self):
        """Theorem 2's shape: the measured T x (R + T) never drops below
        t^2 / log2 n for any randomness throttling."""
        points = measure_tradeoff_product(
            48, 12, [0, 8, 48], seed=3, max_phases=250
        )
        for point in points:
            assert point.normalized >= 1.0

    def test_throttled_runs_are_slower(self):
        points = measure_tradeoff_product(
            48, 12, [0, 48], seed=4, max_phases=250
        )
        throttled, full = points
        assert throttled.coin_processes == 0
        assert throttled.rounds > full.rounds

    def test_fields_populated(self):
        points = measure_tradeoff_product(24, 4, [24], seed=5, max_phases=150)
        point = points[0]
        assert point.rounds > 0
        assert point.reference > 0
        assert isinstance(point.agreement_ok, bool)
        assert isinstance(point.decided_all, bool)

    def test_zero_coins_means_zero_calls(self):
        points = measure_tradeoff_product(24, 4, [0], seed=6, max_phases=100)
        assert points[0].random_calls == 0
