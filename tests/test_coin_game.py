"""Tests for the one-round coin-flipping game (Lemma 12 machinery)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbound import (
    ThresholdCoinGame,
    bias_success_probability,
    lemma12_budget,
    minimal_budget_for_success,
    sweep_lemma12,
)


class TestGameMechanics:
    def test_outcome_majority(self):
        game = ThresholdCoinGame(k=4, threshold=0)
        assert game.outcome([1, 1, -1, -1], frozenset()) == 1
        assert game.outcome([1, -1, -1, -1], frozenset()) == 0

    def test_hidden_values_count_zero(self):
        game = ThresholdCoinGame(k=3, threshold=1)
        assert game.outcome([1, -1, -1], frozenset({1, 2})) == 1

    def test_draw_uses_fair_coins(self):
        game = ThresholdCoinGame(k=1000)
        values = game.draw(random.Random(1))
        assert set(values) == {-1, 1}
        assert abs(sum(values)) < 150

    def test_bias_toward_zero_exact(self):
        game = ThresholdCoinGame(k=5, threshold=0)
        values = [1, 1, 1, -1, -1]  # sum = 1, need < 0: hide 2 ones
        hidden = game.bias_toward(values, target=0, budget=2)
        assert hidden is not None
        assert len(hidden) == 2
        assert game.outcome(values, hidden) == 0

    def test_bias_toward_one_exact(self):
        game = ThresholdCoinGame(k=5, threshold=0)
        values = [-1, -1, -1, 1, 1]  # sum = -1, need >= 0: hide 1 minus
        hidden = game.bias_toward(values, target=1, budget=1)
        assert hidden is not None
        assert len(hidden) == 1
        assert game.outcome(values, hidden) == 1

    def test_bias_impossible_with_small_budget(self):
        game = ThresholdCoinGame(k=4, threshold=0)
        assert game.bias_toward([1, 1, 1, 1], target=0, budget=2) is None

    def test_already_biased_needs_nothing(self):
        game = ThresholdCoinGame(k=3, threshold=0)
        assert game.bias_toward([-1, -1, -1], target=0, budget=0) == frozenset()

    @settings(max_examples=60)
    @given(
        st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=40),
        st.sampled_from([0, 1]),
    )
    def test_bias_result_always_achieves_target(self, values, budget, target):
        game = ThresholdCoinGame(k=len(values), threshold=0)
        hidden = game.bias_toward(values, target, budget)
        if hidden is not None:
            assert len(hidden) <= budget
            assert game.outcome(values, hidden) == target

    @settings(max_examples=40)
    @given(
        st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=30),
        st.sampled_from([0, 1]),
    )
    def test_greedy_is_minimal(self, values, target):
        """No smaller hidden set forces the target (greedy optimality for
        threshold games)."""
        game = ThresholdCoinGame(k=len(values), threshold=0)
        hidden = game.bias_toward(values, target, budget=len(values))
        if hidden is None or len(hidden) == 0:
            return
        smaller_budget = len(hidden) - 1
        assert game.bias_toward(values, target, smaller_budget) is None


class TestEmpiricalBounds:
    def test_success_monotone_in_budget(self):
        game = ThresholdCoinGame(k=64)
        low = bias_success_probability(game, 0, 2, trials=500)
        high = bias_success_probability(game, 0, 12, trials=500)
        assert high >= low

    def test_minimal_budget_within_lemma12(self):
        game = ThresholdCoinGame(k=256)
        budget = minimal_budget_for_success(
            game, target=0, success_probability=0.75, trials=500
        )
        assert budget <= lemma12_budget(256, 0.25)

    def test_budget_scales_like_sqrt_k(self):
        points = sweep_lemma12([64, 1024], [0.25], trials=600)
        small, large = points[0].measured_budget, points[1].measured_budget
        # sqrt(1024/64) = 4: allow generous slack around the sqrt scaling.
        assert 2 <= large / max(1, small) <= 8

    def test_lemma12_budget_validation(self):
        with pytest.raises(ValueError):
            lemma12_budget(16, 0.9)
        assert lemma12_budget(0, 0.25) == 0.0

    def test_minimal_budget_validation(self):
        game = ThresholdCoinGame(k=8)
        with pytest.raises(ValueError):
            minimal_budget_for_success(game, 0, 0.0)
