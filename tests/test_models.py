"""Tests for the round-model layer: registry, equivalence, deferral.

Three contracts pin the model axis down:

* **Registry** — models resolve by instance > name > environment >
  lockstep, and every model round-trips through ``options_payload``.
* **Cross-model equivalence** — ``PartialSynchronyModel`` in its
  lockstep-equivalent regime (``timeout=None``; zero-variance latency /
  ``gst=0``) produces byte-identical result fingerprints to
  ``LockstepModel`` for every registered protocol, and the committed
  golden recipe replays under both models.
* **Deferral semantics** — with a finite ``timeout``, slow copies cross
  round boundaries, the conservation invariant holds via the in-flight
  delta, late copies to terminated processes count as losses, and
  recorded partial-synchrony executions replay to identical fingerprints.
"""

import json

import pytest

from repro.adversary import RandomOmissionAdversary
from repro.harness import available_protocols, execute
from repro.replay import (
    InvariantObserver,
    load_recipe,
    record,
    recipe_from_payload,
    recipe_payload,
    replay,
)
from repro.runtime import (
    LockstepModel,
    PartialSynchronyModel,
    ProcessEnv,
    RoundObserver,
    SyncNetwork,
    SyncProcess,
    available_models,
    create_model,
    default_model_name,
    resolve_model,
    result_to_dict,
)

from .test_replay import GOLDEN

MODEL_ENV_VAR = "REPRO_EXECUTION_MODEL"


def mixed(n):
    return [pid % 2 for pid in range(n)]


def fingerprint(run):
    return json.dumps(result_to_dict(run.result), sort_keys=True)


# ---------------------------------------------------------------------------
# Registry and resolution.
class TestModelRegistry:
    def test_available_models(self):
        assert available_models() == ("lockstep", "partial-synchrony")

    def test_create_model_by_name(self):
        assert isinstance(create_model("lockstep"), LockstepModel)
        model = create_model("partial-synchrony", {"max_latency": 7})
        assert isinstance(model, PartialSynchronyModel)
        assert model.max_latency == 7

    def test_create_model_unknown_name(self):
        with pytest.raises(ValueError, match="unknown execution model"):
            create_model("bounded-asynchrony")

    def test_options_payload_round_trips(self):
        model = PartialSynchronyModel(
            min_latency=2, max_latency=5, gst=9, timeout=3
        )
        clone = create_model(model.name, model.options_payload())
        assert clone.options_payload() == model.options_payload()
        assert create_model("lockstep").options_payload() == {}

    def test_resolve_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv(MODEL_ENV_VAR, raising=False)
        assert default_model_name() == "lockstep"
        assert isinstance(resolve_model(None), LockstepModel)

    def test_resolve_honours_environment(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV_VAR, "partial-synchrony")
        assert default_model_name() == "partial-synchrony"
        assert isinstance(resolve_model(None), PartialSynchronyModel)
        # An explicit name still beats the environment.
        assert isinstance(resolve_model("lockstep"), LockstepModel)

    def test_environment_names_unknown_model(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV_VAR, "warp-speed")
        with pytest.raises(ValueError, match="REPRO_EXECUTION_MODEL"):
            default_model_name()

    def test_resolve_instance_passthrough(self):
        model = PartialSynchronyModel(timeout=2)
        assert resolve_model(model) is model

    def test_resolve_rejects_options_with_instance(self):
        with pytest.raises(ValueError, match="model_options"):
            resolve_model(PartialSynchronyModel(), {"gst": 1})


class TestPartialSynchronyValidation:
    @pytest.mark.parametrize(
        "kwargs,message",
        [
            ({"min_latency": 0}, "min_latency"),
            ({"min_latency": 3, "max_latency": 2}, "max_latency"),
            ({"gst": -1}, "gst"),
            ({"timeout": 0}, "timeout"),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            PartialSynchronyModel(**kwargs)


# ---------------------------------------------------------------------------
# Cross-model equivalence: every registered protocol, byte-identical
# counters between lockstep and the lockstep-equivalent partial-synchrony
# regimes.
EQUIVALENCE_CASES = {
    "algorithm1": {"inputs": mixed(36)},
    "tradeoff": {"inputs": mixed(36)},
    "early-stopping": {"inputs": mixed(24)},
    "multivalued": {"inputs": mixed(16)},
    "ben-or": {"inputs": mixed(9), "t": 1},
    "phase-king": {"inputs": mixed(13), "t": 3},
    "dolev-strong": {"inputs": mixed(9), "t": 2},
    "trb": {"n": 8},
    "collectors": {"n": 8},
}

BUILTIN_PROTOCOLS = frozenset(
    {
        "algorithm1",
        "tradeoff",
        "early-stopping",
        "multivalued",
        "ben-or",
        "phase-king",
        "dolev-strong",
        "trb",
        "collectors",
    }
)


def run_case(protocol, model=None, model_options=None, adversary=None):
    case = dict(EQUIVALENCE_CASES[protocol])
    inputs = case.pop("inputs", None)
    return execute(
        protocol,
        inputs,
        seed=7,
        adversary=adversary,
        model=model,
        model_options=model_options,
        **case,
    )


class TestCrossModelEquivalence:
    def test_cases_cover_builtin_registry(self):
        assert BUILTIN_PROTOCOLS <= set(available_protocols())
        assert set(EQUIVALENCE_CASES) == BUILTIN_PROTOCOLS

    @pytest.mark.parametrize("protocol", sorted(EQUIVALENCE_CASES))
    def test_partial_synchrony_matches_lockstep(self, protocol):
        baseline = fingerprint(run_case(protocol, model="lockstep"))
        # Default options: timeout=None waits out the slowest copy.
        assert fingerprint(
            run_case(protocol, model="partial-synchrony")
        ) == baseline
        # The timely network: zero latency variance from time zero.
        assert fingerprint(
            run_case(
                protocol,
                model="partial-synchrony",
                model_options={"min_latency": 1, "max_latency": 1, "gst": 0},
            )
        ) == baseline

    @pytest.mark.parametrize("protocol", ["algorithm1", "phase-king"])
    def test_equivalence_under_adversary(self, protocol):
        runs = [
            run_case(
                protocol,
                model=name,
                adversary=RandomOmissionAdversary(0.4, seed=5),
            )
            for name in ("lockstep", "partial-synchrony")
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_model_instance_axis(self):
        baseline = fingerprint(run_case("phase-king", model="lockstep"))
        run = run_case(
            "phase-king", model=PartialSynchronyModel(max_latency=4)
        )
        assert fingerprint(run) == baseline


class TestGoldenAcrossModels:
    def test_golden_recipe_implies_lockstep(self):
        assert load_recipe(GOLDEN).execution_model == "lockstep"

    def test_golden_replays_under_lockstep(self):
        report = replay(load_recipe(GOLDEN), model="lockstep")
        assert report.ok, report.summary()

    def test_golden_replays_under_partial_synchrony(self):
        report = replay(load_recipe(GOLDEN), model="partial-synchrony")
        assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Recording and replaying on the partial-synchrony model.
class TestPartialSynchronyRecordReplay:
    def test_record_stores_model_and_replays(self):
        recorded = record(
            "ben-or",
            mixed(9),
            t=1,
            adversary=RandomOmissionAdversary(0.3, seed=2),
            seed=11,
            model="partial-synchrony",
        )
        assert not recorded.failed
        assert recorded.recipe.execution_model == "partial-synchrony"
        report = replay(recorded.recipe)
        assert report.ok, report.summary()

    def test_replay_honours_recipe_not_environment(self, monkeypatch):
        recorded = record(
            "phase-king", mixed(13), t=3, seed=5, model="partial-synchrony"
        )
        monkeypatch.setenv(MODEL_ENV_VAR, "lockstep")
        assert replay(recorded.recipe).ok

    def test_record_resolves_environment_default(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV_VAR, "partial-synchrony")
        recorded = record("phase-king", mixed(13), t=3, seed=5)
        assert recorded.recipe.execution_model == "partial-synchrony"

    def test_finite_timeout_replays_to_identical_fingerprint(self):
        options = {"min_latency": 1, "max_latency": 3, "gst": 10**9,
                   "timeout": 1}
        recorded = record(
            "phase-king",
            mixed(13),
            t=3,
            adversary=RandomOmissionAdversary(0.3, seed=4),
            seed=9,
            model="partial-synchrony",
            model_options=options,
            invariants=True,
        )
        assert not recorded.failed
        assert recorded.recipe.model_options == options
        report = replay(recorded.recipe)
        assert report.ok, report.summary()
        assert json.dumps(
            result_to_dict(report.run.result), sort_keys=True
        ) == json.dumps(dict(recorded.recipe.expected), sort_keys=True)

    def test_recipe_payload_round_trip(self):
        recorded = record(
            "ben-or", mixed(9), t=1, seed=3, model="partial-synchrony",
            model_options={"timeout": 2, "gst": 10**9},
        )
        payload = recipe_payload(recorded.recipe)
        assert payload["execution_model"] == "partial-synchrony"
        assert recipe_from_payload(payload) == recorded.recipe

    def test_legacy_payload_defaults_to_lockstep(self):
        recorded = record("ben-or", mixed(9), t=1, seed=3)
        payload = recipe_payload(recorded.recipe)
        del payload["execution_model"]
        del payload["model_options"]
        recipe = recipe_from_payload(payload)
        assert recipe.execution_model == "lockstep"
        assert recipe.model_options == {}
        assert replay(recipe).ok


# ---------------------------------------------------------------------------
# Deferral semantics under a finite timeout.
class FloodAndCount(SyncProcess):
    """Broadcasts for a few rounds, then decides how many copies it saw.

    Under any latency regime where every copy eventually arrives, all
    processes see the same total — so agreement doubles as an
    every-message-arrived check.
    """

    def __init__(self, pid, n, rounds=3, drain=4):
        super().__init__(pid, n)
        self.rounds = rounds
        self.drain = drain

    def program(self, env: ProcessEnv):
        seen = 0
        for _ in range(self.rounds):
            env.broadcast("ping")
            inbox = yield
            seen += len(inbox)
        for _ in range(self.drain):
            inbox = yield
            seen += len(inbox)
        env.decide(seen)
        return None


class StopsEarly(SyncProcess):
    """Terminates before the slow copies addressed to it can arrive."""

    def program(self, env: ProcessEnv):
        env.broadcast("hello")
        yield
        env.decide(0)
        return None


class TalksToEveryone(SyncProcess):
    def program(self, env: ProcessEnv):
        env.broadcast("hello")
        yield
        env.broadcast("world")
        yield
        yield
        yield
        env.decide(0)
        return None


class InFlightProbe(RoundObserver):
    def __init__(self):
        self.samples = []

    def on_round_end(self, round_no, network):
        self.samples.append(network.in_flight_messages)


class TestFiniteTimeoutDeferral:
    def make_network(self, processes, model, observers=()):
        return SyncNetwork(processes, model=model, observers=observers)

    def test_slow_copies_cross_round_boundaries(self):
        n = 5
        model = PartialSynchronyModel(
            min_latency=2, max_latency=2, gst=10**9, timeout=1
        )
        probe = InFlightProbe()
        network = self.make_network(
            [FloodAndCount(pid, n) for pid in range(n)],
            model,
            observers=[InvariantObserver(), probe],
        )
        result = network.run()
        # Every copy arrived one round late; nobody lost anything, so all
        # processes agree on the full 3 broadcasts x (n-1) copies each.
        assert result.agreement_value() == 3 * (n - 1)
        assert max(probe.samples) == n * (n - 1)
        assert probe.samples[-1] == 0
        assert result.metrics.messages_delivered == 3 * n * (n - 1)
        assert model.time == sum(model.round_durations)
        assert set(model.round_durations) == {1}

    def test_late_copy_to_terminated_process_is_lost(self):
        n = 4
        model = PartialSynchronyModel(
            min_latency=3, max_latency=3, gst=10**9, timeout=1
        )
        processes = [StopsEarly(0, n)] + [
            TalksToEveryone(pid, n) for pid in range(1, n)
        ]
        network = self.make_network(
            processes, model, observers=[InvariantObserver()]
        )
        result = network.run()
        # Process 0 decides in round 1 and terminates; every copy takes 3
        # time units against a 1-unit deadline, so the copies addressed to
        # it from round 1 onwards arrive after it is gone.
        assert result.metrics.messages_lost > 0
        assert (
            result.metrics.messages_sent
            == result.metrics.messages_delivered
            + result.metrics.messages_lost
        )

    def test_deferral_is_deterministic(self):
        def run_once():
            model = PartialSynchronyModel(
                min_latency=1, max_latency=4, gst=6, timeout=2
            )
            network = self.make_network(
                [FloodAndCount(pid, 5, rounds=4, drain=6) for pid in range(5)],
                model,
                observers=[InvariantObserver()],
            )
            return json.dumps(
                result_to_dict(network.run()), sort_keys=True
            )

        assert run_once() == run_once()

    def test_latency_draws_never_touch_process_randomness(self):
        n = 5
        runs = []
        for model in (
            LockstepModel(),
            PartialSynchronyModel(min_latency=1, max_latency=4, gst=10**9),
        ):
            network = self.make_network(
                [FloodAndCount(pid, n) for pid in range(n)], model
            )
            runs.append(network.run())
        assert (
            runs[0].randomness_per_process == runs[1].randomness_per_process
        )
        assert runs[0].metrics.random_calls == runs[1].metrics.random_calls
        assert runs[0].metrics.random_bits == runs[1].metrics.random_bits


# ---------------------------------------------------------------------------
# Campaign and CLI surfaces of the model axis.
class TestModelAxisSurfaces:
    def test_campaign_model_is_part_of_cell_identity(self, tmp_path):
        from repro.analysis.campaign import (
            CampaignSpec,
            record_cell_key,
            run_campaign,
        )

        spec = CampaignSpec(
            name="model-axis",
            protocol="phase-king",
            ns=[9],
            adversaries=["none"],
            seeds=[0],
            model="partial-synchrony",
        )
        records = run_campaign(spec, journal=tmp_path / "journal.jsonl")
        assert records[0]["model"] == "partial-synchrony"
        assert record_cell_key(records[0]) == spec.cell_id(9, "none", 0)
        lockstep = CampaignSpec(
            name="model-axis",
            protocol="phase-king",
            ns=[9],
            adversaries=["none"],
            seeds=[0],
        )
        # A model-pinned record can never satisfy a legacy (model-free)
        # spec's cell, and vice versa.
        assert record_cell_key(records[0]) != lockstep.cell_id(9, "none", 0)

    def test_campaign_rejects_unknown_model(self):
        from repro.analysis.campaign import CampaignSpec

        with pytest.raises(ValueError, match="model"):
            CampaignSpec(
                name="x", protocol="phase-king", model="warp-speed"
            )

    def test_cli_run_model_flag(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run", "--protocol", "phase-king", "--n", "9",
                "--inputs", "mixed", "--model", "partial-synchrony",
            ]
        ) == 0
        assert "decision" in capsys.readouterr().out

    def test_cli_replay_model_override(self, tmp_path, capsys):
        from repro.cli import main
        from repro.replay import save_recipe

        recorded = record("phase-king", mixed(9), t=2, seed=1)
        path = save_recipe(recorded.recipe, tmp_path / "r.json")
        assert main(
            ["replay", str(path), "--model", "partial-synchrony"]
        ) == 0
        assert "replay matches" in capsys.readouterr().out
