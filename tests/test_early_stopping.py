"""Tests for the early-stopping variant of Algorithm 1."""

import pytest

from repro.adversary import (
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)
from repro.core import run_consensus, run_early_stopping_consensus
from repro.params import ProtocolParams

PARAMS = ProtocolParams.practical()


def mixed(n):
    return [pid % 2 for pid in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        run = run_early_stopping_consensus([bit] * 48, t=1, seed=1)
        assert run.decision == bit

    def test_validity_zero_randomness(self):
        run = run_early_stopping_consensus([1] * 48, t=1, seed=2)
        assert run.metrics.random_bits == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement_balanced(self, seed):
        run = run_early_stopping_consensus(mixed(64), t=2, seed=seed)
        assert run.decision in (0, 1)

    def test_agreement_under_silence(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_early_stopping_consensus(
            mixed(n), t=t, adversary=SilenceAdversary(range(t)), seed=3
        )
        assert run.decision in (0, 1)

    def test_agreement_under_balancer(self):
        n = 96
        t = PARAMS.max_faults(n)
        run = run_early_stopping_consensus(
            mixed(n), t=t, adversary=VoteBalancingAdversary(seed=4), seed=4
        )
        assert run.decision in (0, 1)

    def test_agreement_under_staggered_crashes(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_early_stopping_consensus(
            mixed(n),
            t=t,
            adversary=StaticCrashAdversary({7 * k: [k] for k in range(t)}),
            seed=5,
        )
        assert run.decision in (0, 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_with_ready_suppression(self, seed):
        """The silence adversary also suppresses faulty READY broadcasts,
        so exit epochs can differ; agreement must survive the desync."""
        n = 64
        t = PARAMS.max_faults(n)
        run = run_early_stopping_consensus(
            [1] * n, t=t, adversary=SilenceAdversary(range(t)),
            seed=100 + seed,
        )
        assert run.decision == 1


class TestEarlyExit:
    def test_unanimous_exits_after_first_epoch(self):
        run = run_early_stopping_consensus([1] * 64, t=2, seed=6)
        exits = {process.exited_epoch for process in run.processes}
        assert exits == {0}

    def test_unanimous_beats_fixed_budget(self):
        fixed = run_consensus([1] * 64, t=2, seed=7)
        adaptive = run_early_stopping_consensus([1] * 64, t=2, seed=7)
        assert (
            adaptive.result.time_to_agreement()
            < fixed.result.time_to_agreement() / 2
        )

    def test_balanced_needs_more_epochs_than_unanimous(self):
        unanimous = run_early_stopping_consensus([1] * 64, t=2, seed=8)
        balanced = run_early_stopping_consensus(mixed(64), t=2, seed=8)
        assert max(
            p.exited_epoch for p in balanced.processes
        ) >= max(p.exited_epoch for p in unanimous.processes)

    def test_exit_epoch_exposed_and_bounded(self):
        run = run_early_stopping_consensus(mixed(48), t=1, seed=9)
        budget = run.processes[0].num_epochs
        for process in run.processes:
            assert process.exited_epoch is not None
            assert 0 <= process.exited_epoch <= budget

    def test_poll_adds_one_round_per_epoch(self):
        process = run_early_stopping_consensus(
            [1] * 48, t=1, seed=10
        ).processes[0]
        base = run_consensus([1] * 48, t=1, seed=10).processes[0]
        assert process.epoch_rounds() == base.epoch_rounds() + 1

    def test_time_metric_reflects_early_exit(self):
        run = run_early_stopping_consensus([1] * 64, t=2, seed=11)
        epoch_len = run.processes[0].epoch_rounds()
        # One epoch + dissemination + decide resume, nothing more.
        assert run.result.time_to_agreement() <= epoch_len + 3
