"""Tests for the terminal visualization helpers."""

from hypothesis import given, strategies as st

from repro.analysis.sparkline import BARS, hbar, render_series, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_lowest_bar(self):
        assert sparkline([5, 5, 5]) == BARS[0] * 3

    def test_extremes_map_to_extreme_bars(self):
        line = sparkline([0, 10])
        assert line[0] == BARS[0]
        assert line[1] == BARS[-1]

    def test_resampling_caps_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=10)) == 3

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=50,
        )
    )
    def test_output_only_bar_characters(self, values):
        line = sparkline(values)
        assert len(line) == len(values)
        assert set(line) <= set(BARS)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200
        ),
        st.integers(min_value=1, max_value=40),
    )
    def test_width_respected(self, values, width):
        assert len(sparkline(values, width)) <= max(width, len(values))


class TestHbar:
    def test_full_and_empty(self):
        assert hbar(10, 10, width=5) == "#####"
        assert hbar(0, 10, width=5) == ""

    def test_clamped(self):
        assert hbar(20, 10, width=4) == "####"
        assert hbar(-3, 10, width=4) == ""

    def test_zero_maximum(self):
        assert hbar(1, 0) == ""


class TestRenderSeries:
    def test_contains_label_and_range(self):
        text = render_series("traffic", [1, 2, 3])
        assert text.startswith("traffic:")
        assert "[1..3]" in text

    def test_empty_series(self):
        assert "(empty)" in render_series("x", [])
