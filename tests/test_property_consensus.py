"""Property-based end-to-end tests: consensus invariants under randomly
generated inputs, fault budgets and adversarial schedules.

These are the heavyweight hypothesis tests; sizes are kept small so the
whole module stays in seconds.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import run_consensus
from repro.adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
)
from repro.baselines import run_phase_king
from repro.baselines.dolev_strong import DolevStrongProcess
from repro.runtime import SyncNetwork

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(
    inputs=st.lists(st.integers(0, 1), min_size=32, max_size=48),
    seed=st.integers(0, 10**6),
)
def test_algorithm1_agreement_and_validity(inputs, seed):
    n = len(inputs)
    run = run_consensus(inputs, t=1, adversary=SilenceAdversary([seed % n]),
                        seed=seed)
    decision = run.decision  # asserts agreement + termination
    assert decision in (0, 1)
    non_faulty_inputs = {
        inputs[pid] for pid in range(n) if pid not in run.result.faulty
    }
    if len(non_faulty_inputs) == 1:
        assert decision == non_faulty_inputs.pop()


@SLOW
@given(
    seed=st.integers(0, 10**6),
    omit_probability=st.floats(0.0, 1.0),
)
def test_algorithm1_under_random_omission_noise(seed, omit_probability):
    n = 48
    inputs = [(pid * 7 + seed) % 2 for pid in range(n)]
    run = run_consensus(
        inputs,
        t=1,
        adversary=RandomOmissionAdversary(omit_probability, seed=seed),
        seed=seed,
    )
    assert run.decision in (0, 1)


@SLOW
@given(
    data=st.data(),
    seed=st.integers(0, 10**6),
)
def test_dolev_strong_under_arbitrary_crash_schedules(data, seed):
    n, t = 10, 3
    inputs = [data.draw(st.integers(0, 1)) for _ in range(n)]
    schedule = {}
    for victim in data.draw(
        st.lists(st.integers(0, n - 1), max_size=t, unique=True)
    ):
        schedule.setdefault(data.draw(st.integers(0, t + 1)), []).append(victim)
    processes = [
        DolevStrongProcess(pid, n, inputs[pid], t) for pid in range(n)
    ]
    network = SyncNetwork(
        processes, adversary=StaticCrashAdversary(schedule), t=t, seed=seed
    )
    result = network.run()
    decision = result.agreement_value()
    non_faulty_inputs = {
        inputs[pid] for pid in range(n) if pid not in result.faulty
    }
    if non_faulty_inputs == {1} and len(result.faulty) == 0:
        assert decision == 1


@SLOW
@given(
    inputs=st.lists(st.integers(0, 1), min_size=13, max_size=13),
    seed=st.integers(0, 10**6),
)
def test_phase_king_agreement_with_silenced_prefix(inputs, seed):
    result = run_phase_king(
        inputs, t=3, adversary=SilenceAdversary([seed % 13]), seed=seed
    ).result
    assert result.agreement_value() in (0, 1)
