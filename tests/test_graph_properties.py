"""Tests for the Theorem-4 property checkers and Lemma-3/4 core machinery."""

import math

from repro.graphs import (
    SpreadingGraph,
    connected_components,
    degree_report,
    dense_neighborhood_layers,
    is_edge_sparse,
    is_expanding,
    robust_core,
    spreading_graph,
    subgraph_diameter,
    theorem4_report,
)


def complete_graph(n: int) -> SpreadingGraph:
    return SpreadingGraph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def cycle_graph(n: int) -> SpreadingGraph:
    return SpreadingGraph(n, [(i, (i + 1) % n) for i in range(n)])


class TestDegreeReport:
    def test_complete_graph_within_bounds(self):
        report = degree_report(complete_graph(10), delta=9)
        assert report.within_bounds
        assert report.minimum == report.maximum == 9

    def test_detects_outliers(self):
        # A star: center degree n-1, leaves degree 1.
        star = SpreadingGraph(6, [(0, i) for i in range(1, 6)])
        report = degree_report(star, delta=5)
        assert not report.within_bounds

    def test_relaxed_factors(self):
        graph = spreading_graph(256, 24, seed=1)
        report = degree_report(graph, 24, lower_factor=0.4, upper_factor=1.8)
        assert report.within_bounds


class TestExpansion:
    def test_complete_graph_expands(self):
        assert is_expanding(complete_graph(10), ell=2)

    def test_disconnected_graph_fails(self):
        two_triangles = SpreadingGraph(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert not is_expanding(two_triangles, ell=3)

    def test_vacuous_for_large_ell(self):
        assert is_expanding(cycle_graph(4), ell=3)

    def test_random_graph_expands_at_log_degree(self):
        graph = spreading_graph(300, 28, seed=2)
        assert is_expanding(graph, ell=30, samples=100, seed=2)

    def test_sampling_path_detects_disconnection(self):
        # Two cliques of 20: lowest-degree greedy split finds no crossing edge.
        edges = [(u, v) for u in range(20) for v in range(u + 1, 20)]
        edges += [(u, v) for u in range(20, 40) for v in range(u + 1, 40)]
        graph = SpreadingGraph(40, edges)
        assert not is_expanding(graph, ell=20, samples=300, seed=0)


class TestEdgeSparsity:
    def test_cycle_is_sparse(self):
        assert is_edge_sparse(cycle_graph(12), ell=6, alpha=1.0)

    def test_clique_is_dense(self):
        assert not is_edge_sparse(complete_graph(12), ell=6, alpha=1.0)

    def test_trivial_ell(self):
        assert is_edge_sparse(cycle_graph(5), ell=1, alpha=0.1)

    def test_random_graph_sparse_at_generous_alpha(self):
        graph = spreading_graph(300, 28, seed=3)
        assert is_edge_sparse(graph, ell=30, alpha=28 / 2, samples=100, seed=3)

    def test_planted_clique_detected(self):
        base = spreading_graph(120, 10, seed=4)
        edges = list(base.edges())
        edges += [(u, v) for u in range(10) for v in range(u + 1, 10)]
        planted = SpreadingGraph(120, edges)
        assert not is_edge_sparse(planted, ell=12, alpha=2.0, samples=400, seed=4)


class TestTheorem4Report:
    def test_report_fields(self):
        graph = spreading_graph(200, 20, seed=5)
        report = theorem4_report(graph, 20, samples=50, seed=5)
        assert isinstance(report.all_hold, bool)
        assert report.expanding

    def test_complete_graph_fully_satisfies(self):
        graph = complete_graph(12)
        # With delta = n-1, expansion holds; sparsity with alpha = delta/1.
        report = theorem4_report(
            graph, 11, sparsity_alpha_divisor=1.0, samples=20
        )
        assert report.degrees.within_bounds
        assert report.expanding


class TestRobustCore:
    def test_no_removals_high_threshold_keeps_clique(self):
        graph = complete_graph(8)
        core = robust_core(graph, removed=[], degree_threshold=7)
        assert core == frozenset(range(8))

    def test_threshold_above_degree_empties(self):
        graph = cycle_graph(8)
        assert robust_core(graph, [], degree_threshold=3) == frozenset()

    def test_removals_cascade(self):
        # A path 0-1-2-3: removing 1 leaves 0 isolated at threshold 1.
        path = SpreadingGraph(4, [(0, 1), (1, 2), (2, 3)])
        core = robust_core(path, removed=[1], degree_threshold=1)
        assert core == frozenset({2, 3})

    def test_lemma4_size_bound_on_random_graph(self):
        """Lemma 4: removing |T| <= n/15 vertices leaves a core of size
        >= n - 4/3 |T| where everyone keeps Delta/3 in-core neighbours."""
        n, delta = 450, 30
        graph = spreading_graph(n, delta, seed=6)
        removed = list(range(n // 15))
        core = robust_core(graph, removed, degree_threshold=delta // 3)
        assert len(core) >= n - (4 * len(removed)) // 3 - 1
        members = frozenset(core)
        for vertex in core:
            assert graph.degree_within(vertex, members) >= delta // 3

    def test_adversarial_removal_of_hub_neighbourhood(self):
        n, delta = 300, 24
        graph = spreading_graph(n, delta, seed=7)
        victim_neighbors = sorted(graph.neighbors(0))[: n // 20]
        core = robust_core(graph, victim_neighbors, delta // 3)
        assert len(core) >= n - 3 * len(victim_neighbors)


class TestComponentsAndDiameter:
    def test_components(self):
        graph = SpreadingGraph(5, [(0, 1), (2, 3)])
        components = connected_components(graph, frozenset(range(5)))
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2, 2]

    def test_diameter_cycle(self):
        assert subgraph_diameter(cycle_graph(8), frozenset(range(8))) == 4

    def test_diameter_disconnected(self):
        graph = SpreadingGraph(4, [(0, 1)])
        assert subgraph_diameter(graph, frozenset(range(4))) == -1

    def test_diameter_empty(self):
        assert subgraph_diameter(cycle_graph(3), frozenset()) == 0

    def test_random_core_is_shallow(self):
        """The 'shallow' half of Theorem 4's consequence: the robust core of
        a log-degree random graph has O(log n) diameter."""
        n, delta = 350, 26
        graph = spreading_graph(n, delta, seed=8)
        core = robust_core(graph, removed=range(12), degree_threshold=delta // 3)
        assert len(core) > 0.9 * n
        diameter = subgraph_diameter(graph, core)
        assert 0 < diameter <= 2 * math.ceil(math.log2(n))


class TestDenseNeighborhoods:
    def test_layers_grow_geometrically(self):
        """Lemma 3: BFS balls within a Delta/3 core double until ~n/10."""
        n, delta = 400, 28
        graph = spreading_graph(n, delta, seed=9)
        core = robust_core(graph, removed=[], degree_threshold=delta // 3)
        vertex = min(core)
        layers = dense_neighborhood_layers(graph, vertex, core, max_depth=4)
        for depth in range(1, 4):
            assert layers[depth] >= min(2**depth, n // 10)

    def test_requires_membership(self):
        graph = cycle_graph(5)
        core = frozenset({0, 1, 2})
        try:
            dense_neighborhood_layers(graph, 4, core, 2)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError for non-member vertex")
