"""Tests exercising the verbatim paper constants (ProtocolParams.paper()).

The paper's constants are meant for asymptotic n, but the protocol must
still *run* with them at small n (where Delta caps at the complete graph
and the epoch count is floor-dominated) — the preset exists so property
checks and tiny-system runs can use the untouched numbers.
"""

import pytest

from repro.adversary import SilenceAdversary
from repro.core import run_consensus, run_tradeoff_consensus
from repro.params import ProtocolParams

PAPER = ProtocolParams.paper()


class TestPaperDerivedQuantities:
    def test_delta_caps_at_complete_graph(self):
        # 832 * log2(64) = 4992 >> 63.
        assert PAPER.delta(64) == 63

    def test_spread_rounds_follow_eight_log_n(self):
        assert PAPER.spread_rounds(256) == 8 * 8

    def test_fault_fraction_is_one_thirtieth(self):
        assert PAPER.fault_fraction_denominator == 30
        assert PAPER.max_faults(64) == 2
        with pytest.raises(ValueError):
            PAPER.validate_fault_budget(64, 3)

    def test_relay_quorum_divisor(self):
        assert PAPER.group_relay_quorum_divisor == 2


class TestPaperModeExecution:
    def test_unanimous_run_with_paper_constants(self):
        """Full Algorithm 1 with untouched constants on a small complete
        overlay: validity and zero randomness must hold exactly."""
        run = run_consensus([1] * 36, t=1, params=PAPER, seed=1)
        assert run.decision == 1
        assert run.metrics.random_bits == 0

    def test_mixed_run_with_paper_constants(self):
        run = run_consensus(
            [pid % 2 for pid in range(36)], t=1, params=PAPER, seed=2
        )
        assert run.decision in (0, 1)

    def test_adversarial_run_with_paper_constants(self):
        run = run_consensus(
            [pid % 2 for pid in range(36)],
            t=1,
            params=PAPER,
            adversary=SilenceAdversary([0]),
            seed=3,
        )
        assert run.decision in (0, 1)

    def test_tradeoff_with_paper_constants(self):
        run = run_tradeoff_consensus(
            [pid % 2 for pid in range(36)], 3, params=PAPER, seed=4
        )
        assert run.decision in (0, 1)

    def test_paper_epochs_exceed_practical(self):
        """The paper's 8-log-n spreading budget makes epochs longer than
        the practical preset's — the cost the practical preset trims."""
        practical = ProtocolParams.practical()
        from repro.core import epoch_rounds

        assert epoch_rounds(64, PAPER) > epoch_rounds(64, practical)
