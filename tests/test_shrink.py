"""Tests for the delta-debugging recipe shrinker.

The planted bug: a one-round broadcast-majority "protocol" with no fault
tolerance — omissions can split the tally across the majority threshold,
so non-faulty processes disagree.  A fuzzer-recorded failure carries a
large random schedule; the shrinker must reduce it to a handful of
omissions that still reproduce the agreement violation on replay.
"""

import pytest

from repro.adversary import RandomOmissionAdversary
from repro.harness import ProtocolSpec, register_protocol
from repro.replay import (
    InvariantViolation,
    load_recipe,
    record,
    replay,
    run_checked,
    shrink_recipe,
)
from repro.replay.shrink import _ddmin
from repro.runtime import ProcessEnv, SyncProcess

INPUTS = [0, 1, 0, 1, 0, 1, 0, 1, 1]


class BuggyMajority(SyncProcess):
    """Decide the majority of *heard* bits — deliberately not
    omission-tolerant: a split inbox splits the decisions."""

    def __init__(self, pid, n, bit):
        super().__init__(pid, n)
        self.bit = bit

    def program(self, env: ProcessEnv):
        env.broadcast(self.bit)
        inbox = yield
        ones = sum(message.payload for message in inbox) + self.bit
        total = len(inbox) + 1
        env.decide(1 if 2 * ones >= total else 0)
        return None


def _build(request):
    processes = [
        BuggyMajority(pid, request.n, bit)
        for pid, bit in enumerate(request.inputs)
    ]
    return processes, request.t if request.t is not None else 4


register_protocol(
    ProtocolSpec(
        name="buggy-majority",
        summary="test-only planted agreement bug (broadcast majority)",
        build=_build,
        default_max_rounds=10,
        sweepable=False,
    ),
    replace=True,
)


def record_planted_failure():
    """Seed 0 is a verified failing execution (agreement violation)."""
    recorded = record(
        "buggy-majority",
        INPUTS,
        t=4,
        adversary=RandomOmissionAdversary(0.6, corrupt_count=4, seed=0),
        seed=0,
    )
    assert recorded.failed
    assert recorded.recipe.expected_failure["invariant"] == "agreement"
    return recorded.recipe


class TestDdmin:
    @staticmethod
    def needs_three_and_seven(items):
        return 3 in items and 7 in items

    def test_minimizes_to_the_two_required_items(self):
        result = _ddmin(list(range(10)), self.needs_three_and_seven)
        assert sorted(result) == [3, 7]

    def test_preserves_order(self):
        result = _ddmin(
            [9, 7, 5, 3, 1], self.needs_three_and_seven
        )
        assert result == [7, 3]

    def test_single_relevant_item(self):
        assert _ddmin(list(range(8)), lambda items: 5 in items) == [5]

    def test_empty_when_predicate_ignores_input(self):
        assert _ddmin([1, 2, 3], lambda items: True) == []


class TestShrinkPlantedBug:
    def test_shrinks_below_quarter_of_original_omissions(self):
        recipe = record_planted_failure()
        original = recipe.total_omissions()
        assert original >= 8
        result = shrink_recipe(recipe)
        shrunk = result.recipe
        # The acceptance bar: <= 25% of the original omission entries...
        assert shrunk.total_omissions() <= original // 4
        assert shrunk.total_corruptions() <= recipe.total_corruptions()
        # ...while the minimized schedule still fails the same invariant
        # on replay.
        report = replay(shrunk)
        assert report.reproduced_failure
        assert report.failure.invariant == "agreement"
        assert shrunk.expected_failure["invariant"] == "agreement"
        assert "(shrunk)" in shrunk.note

    def test_shrunk_schedule_is_locally_minimal(self):
        """Dropping any single remaining round-action must lose the bug
        (1-minimality at round granularity — what ddmin guarantees)."""
        result = shrink_recipe(record_planted_failure())
        actions = result.recipe.actions
        for index in range(len(actions)):
            candidate = result.recipe.with_actions(
                actions[:index] + actions[index + 1:]
            )
            assert not replay(candidate, strict=False).reproduced_failure

    def test_rejects_recipe_that_does_not_fail(self):
        recorded = record(
            "phase-king",
            [pid % 2 for pid in range(13)],
            t=3,
            adversary=RandomOmissionAdversary(0.4, seed=6),
            seed=6,
        )
        assert not recorded.failed
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_recipe(recorded.recipe)


class TestRunCheckedShrinks:
    def test_fuzz_failure_lands_as_shrunk_recipe(self, tmp_path):
        with pytest.raises(InvariantViolation) as excinfo:
            run_checked(
                "buggy-majority",
                INPUTS,
                t=4,
                adversary=RandomOmissionAdversary(
                    0.6, corrupt_count=4, seed=0
                ),
                seed=0,
                save_dir=tmp_path,
            )
        assert excinfo.value.invariant == "agreement"
        (saved,) = tmp_path.glob("*.json")
        recipe = load_recipe(saved)
        # The artifact on disk is the *shrunk* schedule and still fails.
        assert "(shrunk)" in recipe.note
        assert recipe.total_omissions() <= record_planted_failure(
        ).total_omissions() // 4
        assert replay(recipe).reproduced_failure
        # The exception points the developer at the artifact.
        assert str(saved) in "".join(excinfo.value.__notes__)
