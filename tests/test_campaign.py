"""Tests for the batch-campaign runner."""

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    load_campaign,
    run_campaign,
    save_campaign,
    summarize_campaign,
)


def small_spec(**overrides):
    base = dict(
        name="test-campaign",
        protocol="algorithm1",
        ns=[33],
        adversaries=["none", "silence"],
        seeds=[0, 1],
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpec:
    def test_grid_enumerates_all_cells(self):
        spec = small_spec()
        assert len(list(spec.grid())) == 4

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            small_spec(protocol="paxos")

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ValueError):
            small_spec(adversaries=["byzantine"])


class TestRun:
    def test_records_have_expected_fields(self):
        records = run_campaign(small_spec(seeds=[0]))
        assert len(records) == 2
        for record in records:
            assert record["decision"] in (0, 1)
            assert record["rounds"] > 0
            assert record["bits"] > 0
            assert record["protocol"] == "algorithm1"

    def test_early_stopping_records_exit_epochs(self):
        records = run_campaign(
            small_spec(protocol="early-stopping", adversaries=["none"],
                       seeds=[0])
        )
        assert "exit_epochs" in records[0]

    def test_tradeoff_records_x(self):
        records = run_campaign(
            small_spec(protocol="tradeoff", adversaries=["none"], seeds=[0],
                       options={"x": 3})
        )
        assert records[0]["x"] == 3

    def test_resume_skips_done_cells(self):
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        first = run_campaign(spec)
        marker = dict(first[0])
        marker["rounds"] = -1  # sentinel proving reuse
        resumed = run_campaign(spec, resume_from=[marker, first[1]])
        assert resumed[0]["rounds"] == -1
        assert resumed[1] == first[1]

    def test_resume_ignores_other_campaigns(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        foreign = dict(run_campaign(spec)[0])
        foreign["campaign"] = "someone-else"
        foreign["rounds"] = -1
        records = run_campaign(spec, resume_from=[foreign])
        assert records[0]["rounds"] > 0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        records = run_campaign(small_spec(adversaries=["none"], seeds=[0]))
        path = tmp_path / "campaign.json"
        save_campaign(records, path)
        assert load_campaign(path) == records


class TestSummary:
    def test_aggregates_per_cell(self):
        records = run_campaign(small_spec())
        summary = summarize_campaign(records)
        assert len(summary) == 2  # two adversaries, one n
        for row in summary:
            assert row["runs"] == 2
            assert row["mean_rounds"] > 0
            assert 0.0 <= row["fallback_rate"] <= 1.0
            assert set(row["decisions"]) <= {0, 1}
