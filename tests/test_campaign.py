"""Tests for the batch-campaign runner."""

import json

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    append_journal_record,
    load_campaign,
    load_journal,
    record_cell_key,
    run_campaign,
    save_campaign,
    summarize_campaign,
)


def small_spec(**overrides):
    base = dict(
        name="test-campaign",
        protocol="algorithm1",
        ns=[33],
        adversaries=["none", "silence"],
        seeds=[0, 1],
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpec:
    def test_grid_enumerates_all_cells(self):
        spec = small_spec()
        assert len(list(spec.grid())) == 4

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            small_spec(protocol="paxos")

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ValueError):
            small_spec(adversaries=["byzantine"])


class TestRun:
    def test_records_have_expected_fields(self):
        records = run_campaign(small_spec(seeds=[0]))
        assert len(records) == 2
        for record in records:
            assert record["decision"] in (0, 1)
            assert record["rounds"] > 0
            assert record["bits"] > 0
            assert record["protocol"] == "algorithm1"

    def test_early_stopping_records_exit_epochs(self):
        records = run_campaign(
            small_spec(protocol="early-stopping", adversaries=["none"],
                       seeds=[0])
        )
        assert "exit_epochs" in records[0]

    def test_tradeoff_records_x(self):
        records = run_campaign(
            small_spec(protocol="tradeoff", adversaries=["none"], seeds=[0],
                       options={"x": 3})
        )
        assert records[0]["x"] == 3

    def test_resume_skips_done_cells(self):
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        first = run_campaign(spec)
        marker = dict(first[0])
        marker["rounds"] = -1  # sentinel proving reuse
        resumed = run_campaign(spec, resume_from=[marker, first[1]])
        assert resumed[0]["rounds"] == -1
        assert resumed[1] == first[1]

    def test_resume_ignores_other_campaigns(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        foreign = dict(run_campaign(spec)[0])
        foreign["campaign"] = "someone-else"
        foreign["rounds"] = -1
        records = run_campaign(spec, resume_from=[foreign])
        assert records[0]["rounds"] > 0

    def test_resume_respects_options(self):
        """A record from a differently-parameterized sweep is not reused."""
        spec_x2 = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 2},
        )
        spec_x3 = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 3},
        )
        stale = dict(run_campaign(spec_x2)[0])
        stale["rounds"] = -1  # sentinel proving reuse
        same_options = run_campaign(spec_x2, resume_from=[stale])
        assert same_options[0]["rounds"] == -1
        other_options = run_campaign(spec_x3, resume_from=[stale])
        assert other_options[0]["rounds"] > 0
        assert other_options[0]["x"] == 3

    def test_legacy_records_without_options_match_empty_options(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        legacy = dict(run_campaign(spec)[0])
        del legacy["options"]
        legacy["rounds"] = -1
        records = run_campaign(spec, resume_from=[legacy])
        assert records[0]["rounds"] == -1

    def test_record_cell_key_round_trips_through_json(self):
        spec = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 2},
        )
        record = run_campaign(spec)[0]
        rehydrated = json.loads(json.dumps(record))
        assert record_cell_key(rehydrated) == spec.cell_key(33, "none", 0)


class TestParallel:
    def test_parallel_records_identical_to_serial(self):
        spec = small_spec()  # 4 cells
        serial = run_campaign(spec, jobs=1)
        fanned = run_campaign(spec, jobs=2)
        assert json.dumps(fanned, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_parallel_streams_journal_and_resumes(self, tmp_path):
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        path = tmp_path / "journal.jsonl"
        records = run_campaign(spec, jobs=2, journal=path)
        on_disk = load_journal(path)
        assert len(on_disk) == 2
        assert sorted(map(record_cell_key, on_disk)) == sorted(
            map(record_cell_key, records)
        )
        # A re-run resumes entirely from the journal: nothing recomputed,
        # nothing re-appended.
        recomputed = []
        resumed = run_campaign(
            spec, resume_from=on_disk, jobs=2, journal=path,
            on_record=recomputed.append,
        )
        assert recomputed == []
        assert len(load_journal(path)) == 2
        assert resumed == records


class TestJournal:
    def test_interrupted_campaign_resumes_from_journal(self, tmp_path):
        """Kill a campaign mid-grid; the journal completes the sweep."""
        spec = small_spec()  # 4 cells
        path = tmp_path / "journal.jsonl"
        seen = []

        def interrupt(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, journal=path, on_record=interrupt)
        on_disk = load_journal(path)
        assert len(on_disk) == 2  # the finished cells survived the crash

        finished = []
        resumed = run_campaign(
            spec, resume_from=on_disk, journal=path,
            on_record=finished.append,
        )
        assert len(finished) == 2  # only the missing cells ran
        assert len(resumed) == 4
        assert len(load_journal(path)) == 4
        done = {record_cell_key(rec) for rec in resumed}
        assert done == {spec.cell_key(*cell) for cell in spec.grid()}

    def test_load_journal_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_journal_record(path, {"campaign": "c", "seed": 0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"campaign": "c", "se')  # crash mid-append
        assert load_journal(path) == [{"campaign": "c", "seed": 0}]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        records = run_campaign(small_spec(adversaries=["none"], seeds=[0]))
        path = tmp_path / "campaign.json"
        save_campaign(records, path)
        assert load_campaign(path) == records


class TestSummary:
    def test_aggregates_per_cell(self):
        records = run_campaign(small_spec())
        summary = summarize_campaign(records)
        assert len(summary) == 2  # two adversaries, one n
        for row in summary:
            assert row["runs"] == 2
            assert row["mean_rounds"] > 0
            assert 0.0 <= row["fallback_rate"] <= 1.0
            assert set(row["decisions"]) <= {0, 1}
