"""Tests for the batch-campaign runner."""

import json
import warnings

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    append_journal_record,
    load_campaign,
    load_journal,
    record_cell_key,
    repair_journal,
    run_campaign,
    save_campaign,
    summarize_campaign,
)


def small_spec(**overrides):
    base = dict(
        name="test-campaign",
        protocol="algorithm1",
        ns=[33],
        adversaries=["none", "silence"],
        seeds=[0, 1],
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpec:
    def test_grid_enumerates_all_cells(self):
        spec = small_spec()
        assert len(list(spec.grid())) == 4

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            small_spec(protocol="paxos")

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ValueError):
            small_spec(adversaries=["byzantine"])


class TestRun:
    def test_records_have_expected_fields(self):
        records = run_campaign(small_spec(seeds=[0]))
        assert len(records) == 2
        for record in records:
            assert record["decision"] in (0, 1)
            assert record["rounds"] > 0
            assert record["bits"] > 0
            assert record["protocol"] == "algorithm1"

    def test_early_stopping_records_exit_epochs(self):
        records = run_campaign(
            small_spec(protocol="early-stopping", adversaries=["none"],
                       seeds=[0])
        )
        assert "exit_epochs" in records[0]

    def test_tradeoff_records_x(self):
        records = run_campaign(
            small_spec(protocol="tradeoff", adversaries=["none"], seeds=[0],
                       options={"x": 3})
        )
        assert records[0]["x"] == 3

    def test_resume_skips_done_cells(self):
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        first = run_campaign(spec)
        marker = dict(first[0])
        marker["rounds"] = -1  # sentinel proving reuse
        resumed = run_campaign(spec, resume_from=[marker, first[1]])
        assert resumed[0]["rounds"] == -1
        assert resumed[1] == first[1]

    def test_resume_ignores_other_campaigns(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        foreign = dict(run_campaign(spec)[0])
        foreign["campaign"] = "someone-else"
        foreign["rounds"] = -1
        records = run_campaign(spec, resume_from=[foreign])
        assert records[0]["rounds"] > 0

    def test_resume_respects_options(self):
        """A record from a differently-parameterized sweep is not reused."""
        spec_x2 = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 2},
        )
        spec_x3 = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 3},
        )
        stale = dict(run_campaign(spec_x2)[0])
        stale["rounds"] = -1  # sentinel proving reuse
        same_options = run_campaign(spec_x2, resume_from=[stale])
        assert same_options[0]["rounds"] == -1
        other_options = run_campaign(spec_x3, resume_from=[stale])
        assert other_options[0]["rounds"] > 0
        assert other_options[0]["x"] == 3

    def test_legacy_records_without_options_match_empty_options(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        legacy = dict(run_campaign(spec)[0])
        del legacy["options"]
        legacy["rounds"] = -1
        records = run_campaign(spec, resume_from=[legacy])
        assert records[0]["rounds"] == -1

    def test_record_cell_key_round_trips_through_json(self):
        spec = small_spec(
            protocol="tradeoff", adversaries=["none"], seeds=[0],
            options={"x": 2},
        )
        record = run_campaign(spec)[0]
        rehydrated = json.loads(json.dumps(record))
        assert record_cell_key(rehydrated) == spec.cell_id(33, "none", 0)


class TestParallel:
    def test_parallel_records_identical_to_serial(self):
        spec = small_spec()  # 4 cells
        serial = run_campaign(spec, jobs=1)
        fanned = run_campaign(spec, jobs=2)
        assert json.dumps(fanned, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_parallel_streams_journal_and_resumes(self, tmp_path):
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        path = tmp_path / "journal.jsonl"
        records = run_campaign(spec, jobs=2, journal=path)
        on_disk = load_journal(path)
        assert len(on_disk) == 2
        assert sorted(map(record_cell_key, on_disk)) == sorted(
            map(record_cell_key, records)
        )
        # A re-run resumes entirely from the journal: nothing recomputed,
        # nothing re-appended.
        recomputed = []
        resumed = run_campaign(
            spec, resume_from=on_disk, jobs=2, journal=path,
            on_record=recomputed.append,
        )
        assert recomputed == []
        assert len(load_journal(path)) == 2
        assert resumed == records


class TestJournal:
    def test_interrupted_campaign_resumes_from_journal(self, tmp_path):
        """Kill a campaign mid-grid; the journal completes the sweep."""
        spec = small_spec()  # 4 cells
        path = tmp_path / "journal.jsonl"
        seen = []

        def interrupt(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, journal=path, on_record=interrupt)
        on_disk = load_journal(path)
        assert len(on_disk) == 2  # the finished cells survived the crash

        finished = []
        resumed = run_campaign(
            spec, resume_from=on_disk, journal=path,
            on_record=finished.append,
        )
        assert len(finished) == 2  # only the missing cells ran
        assert len(resumed) == 4
        assert len(load_journal(path)) == 4
        done = {record_cell_key(rec) for rec in resumed}
        assert done == {spec.cell_id(*cell) for cell in spec.grid()}

    def test_load_journal_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_journal_record(path, {"campaign": "c", "seed": 0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"campaign": "c", "se')  # crash mid-append
        assert load_journal(path) == [{"campaign": "c", "seed": 0}]

    RECORDS = [
        {"campaign": "c", "seed": 0},
        {"campaign": "αβγ", "seed": 1},  # multi-byte UTF-8 in the middle
        {"campaign": "c", "seed": 2},
    ]

    def full_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        for record in self.RECORDS:
            append_journal_record(path, record)
        return path

    def test_load_survives_truncation_at_every_byte_offset(self, tmp_path):
        """A crash can cut the final ``write`` anywhere — including inside
        a multi-byte UTF-8 character.  Whatever the offset, ``load_journal``
        must return exactly the records whose lines survived intact."""
        source = self.full_journal(tmp_path)
        data = source.read_bytes()
        boundaries = [0]
        for index, byte in enumerate(data):
            if byte == ord("\n"):
                boundaries.append(index + 1)
        victim = tmp_path / "truncated.jsonl"
        for offset in range(len(data) + 1):
            victim.write_bytes(data[:offset])
            intact = sum(1 for b in boundaries if b <= offset) - 1
            loaded = load_journal(victim)
            # Always a clean prefix: the terminated lines, plus the tail
            # line iff the cut landed exactly at the end of its JSON.
            assert loaded == self.RECORDS[: len(loaded)], (
                f"truncation at byte {offset}"
            )
            assert intact <= len(loaded) <= intact + 1, (
                f"truncation at byte {offset}"
            )

    def test_repair_quarantines_corrupt_tail(self, tmp_path):
        path = self.full_journal(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-9])  # cut inside the final record
        tail = repair_journal(path)
        assert tail  # the severed bytes are reported back
        # The journal itself is clean again...
        assert path.read_bytes() == data[: data.rfind(b"\n", 0, -1) + 1]
        assert load_journal(path) == self.RECORDS[:2]
        # ...and no bytes were destroyed: the tail sits in the sidecar.
        quarantine = path.with_name(path.name + ".quarantine")
        assert quarantine.read_bytes() == tail + b"\n"

    def test_append_after_crash_does_not_merge_records(self, tmp_path):
        path = self.full_journal(tmp_path)
        path.write_bytes(path.read_bytes()[:-9])
        fresh = {"campaign": "c", "seed": 3}
        append_journal_record(path, fresh)
        # The torn tail was quarantined first, so the new record landed on
        # its own line instead of gluing onto the partial one.
        assert load_journal(path) == self.RECORDS[:2] + [fresh]
        assert path.with_name(path.name + ".quarantine").exists()

    def test_repair_restores_missing_newline_on_intact_tail(self, tmp_path):
        """A crash *between* the record write and its newline leaves a
        valid JSON line with no terminator: repair must restore the
        newline, not quarantine a perfectly good record."""
        path = self.full_journal(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-1])  # strip only the final newline
        assert repair_journal(path) == b""
        assert path.read_bytes() == data
        assert load_journal(path) == self.RECORDS
        assert not path.with_name(path.name + ".quarantine").exists()

    def test_repair_on_clean_journal_is_a_no_op(self, tmp_path):
        path = self.full_journal(tmp_path)
        before = path.read_bytes()
        assert repair_journal(path) == b""
        assert path.read_bytes() == before

    def test_load_journal_dedupes_rerun_cells_latest_write_wins(
        self, tmp_path
    ):
        """A cell appended twice (e.g. a sweep re-run after a partial
        resume) must surface once: the *last* record appended, at the
        position of the first."""
        spec = small_spec(adversaries=["none"], seeds=[0, 1])
        path = tmp_path / "journal.jsonl"
        first, second = run_campaign(spec, journal=path)
        stale = dict(first)
        stale["rounds"] = -1  # the superseded earlier write
        rerun = dict(first)
        rerun["rounds"] = 99  # the authoritative re-run
        path.write_text("", encoding="utf-8")
        for record in (stale, second, rerun):
            append_journal_record(path, record)
        loaded = load_journal(path)
        assert loaded == [rerun, second]  # deduped, first-seen position
        assert len(load_journal(path, dedupe=False)) == 3

    def test_load_journal_dedupe_keeps_non_cell_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        note = {"note": "sweep started"}
        cell = {"campaign": "c", "protocol": "algorithm1", "n": 33,
                "t": 8, "adversary": "none", "seed": 0}
        for record in (note, cell, note, cell):
            append_journal_record(path, record)
        assert load_journal(path) == [note, cell, note]

    def test_resume_after_torn_append(self, tmp_path):
        """End-to-end: a campaign whose journal was torn mid-record still
        resumes, re-running only the severed cell."""
        spec = small_spec()  # 4 cells
        path = tmp_path / "journal.jsonl"
        run_campaign(spec, journal=path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # sever the final record
        on_disk = load_journal(path)
        assert len(on_disk) == 3
        finished = []
        resumed = run_campaign(
            spec, resume_from=on_disk, journal=path,
            on_record=finished.append,
        )
        assert len(finished) == 1
        assert len(resumed) == 4
        assert len(load_journal(path)) == 4


class TestRemovedGridKwargs:
    """The PR-9 one-cycle loose-keyword adapter is gone: spec required."""

    def test_loose_keywords_rejected(self):
        with pytest.raises(TypeError):
            run_campaign(  # repro-lint: disable=REP004
                name="test-campaign", protocol="algorithm1", ns=[33],
                adversaries=["none"], seeds=[0],
            )

    def test_positional_name_rejected(self):
        with pytest.raises(TypeError, match="CampaignSpec"):
            run_campaign("test-campaign")

    def test_no_spec_at_all_rejected(self):
        with pytest.raises(TypeError):
            run_campaign()

    def test_cell_key_alias_is_gone(self):
        spec = small_spec(adversaries=["none"], seeds=[0])
        assert not hasattr(spec, "cell_key")

    def test_spec_path_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_campaign(small_spec(adversaries=["none"], seeds=[0]))


class TestPersistence:
    def test_round_trip(self, tmp_path):
        records = run_campaign(small_spec(adversaries=["none"], seeds=[0]))
        path = tmp_path / "campaign.json"
        save_campaign(records, path)
        assert load_campaign(path) == records


class TestSummary:
    def test_aggregates_per_cell(self):
        records = run_campaign(small_spec())
        summary = summarize_campaign(records)
        assert len(summary) == 2  # two adversaries, one n
        for row in summary:
            assert row["runs"] == 2
            assert row["mean_rounds"] > 0
            assert 0.0 <= row["fallback_rate"] <= 1.0
            assert set(row["decisions"]) <= {0, 1}
