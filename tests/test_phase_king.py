"""Tests for the phase-king deterministic baseline."""

import pytest

from repro.adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
)
from repro.baselines import PhaseKingProcess, run_phase_king


class TestConstruction:
    def test_rejects_insufficient_redundancy(self):
        with pytest.raises(ValueError):
            PhaseKingProcess(0, 8, 1, t=2)  # needs n > 4t

    def test_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            PhaseKingProcess(0, 8, 2, t=1)


class TestCorrectness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        result = run_phase_king([bit] * 9, t=2).result
        assert result.agreement_value() == bit

    def test_rounds_are_three_per_phase(self):
        result = run_phase_king([1] * 9, t=2).result
        assert result.time_to_agreement() == 3 * 3 + 1

    def test_agreement_mixed_inputs(self):
        result = run_phase_king([pid % 2 for pid in range(9)], t=2).result
        assert result.agreement_value() in (0, 1)

    def test_agreement_with_silenced_kings(self):
        """Silencing the first kings forces reliance on later phases."""
        result = run_phase_king(
            [pid % 2 for pid in range(13)],
            t=3,
            adversary=SilenceAdversary([0, 1, 2]),
        ).result
        assert result.agreement_value() in (0, 1)

    def test_agreement_under_random_omissions(self):
        for seed in range(3):
            result = run_phase_king(
                [pid % 2 for pid in range(13)],
                t=3,
                adversary=RandomOmissionAdversary(0.5, seed=seed),
                seed=seed,
            ).result
            assert result.agreement_value() in (0, 1)

    def test_agreement_under_crashes(self):
        result = run_phase_king(
            [pid % 2 for pid in range(17)],
            t=4,
            adversary=StaticCrashAdversary({2: [0], 5: [5], 8: [9]}),
        ).result
        assert result.agreement_value() in (0, 1)

    def test_validity_beats_faulty_minority(self):
        inputs = [0] * 2 + [1] * 11
        result = run_phase_king(
            inputs, t=2, adversary=SilenceAdversary([0, 1])
        ).result
        assert result.agreement_value() == 1
