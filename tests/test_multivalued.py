"""Tests for multi-valued consensus (bit-prefix agreement)."""

import random

import pytest

from repro.adversary import SilenceAdversary, VoteBalancingAdversary
from repro.core import MultiValuedConsensus, run_multivalued_consensus
from repro.core.multivalued import _bit_of, _matches_prefix


class TestBitHelpers:
    def test_bit_of_msb_first(self):
        # 0b1010 with width 4: bits are 1,0,1,0.
        assert [_bit_of(0b1010, index, 4) for index in range(4)] == [1, 0, 1, 0]

    def test_matches_prefix(self):
        assert _matches_prefix(0b1010, [1, 0], 4)
        assert not _matches_prefix(0b1010, [1, 1], 4)
        assert _matches_prefix(0b1010, [], 4)


class TestConstruction:
    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            MultiValuedConsensus(0, 8, 256, value_bits=8)
        with pytest.raises(ValueError):
            MultiValuedConsensus(0, 8, -1, value_bits=8)
        with pytest.raises(ValueError):
            MultiValuedConsensus(0, 8, 0, value_bits=0)


class TestCorrectness:
    def test_unanimous_value_decided(self):
        result = run_multivalued_consensus([42] * 33, value_bits=6, seed=1).result
        assert result.agreement_value() == 42

    def test_decision_is_some_input(self):
        """Strong validity: the decided value is an actual input even when
        inputs avoid 'easy' values like 0."""
        rng = random.Random(7)
        inputs = [rng.randrange(128, 256) for _ in range(36)]
        result = run_multivalued_consensus(inputs, value_bits=8, seed=2).result
        assert result.agreement_value() in inputs

    def test_two_distinct_values(self):
        inputs = [13 if pid % 2 else 29 for pid in range(36)]
        result = run_multivalued_consensus(inputs, value_bits=5, seed=3).result
        assert result.agreement_value() in (13, 29)

    def test_agreement_under_silence(self):
        rng = random.Random(11)
        n = 36
        inputs = [rng.randrange(16) for _ in range(n)]
        result = run_multivalued_consensus(
            inputs, value_bits=4, adversary=SilenceAdversary([0]), t=1, seed=4
        ).result
        decision = result.agreement_value()
        assert decision in inputs

    def test_agreement_under_balancer(self):
        rng = random.Random(13)
        n = 36
        inputs = [rng.randrange(8) for _ in range(n)]
        result = run_multivalued_consensus(
            inputs,
            value_bits=3,
            adversary=VoteBalancingAdversary(seed=5),
            t=1,
            seed=5,
        ).result
        assert result.agreement_value() in inputs

    def test_single_bit_width(self):
        result = run_multivalued_consensus(
            [pid % 2 for pid in range(33)], value_bits=1, seed=6
        ).result
        assert result.agreement_value() in (0, 1)

    def test_deterministic_given_seed(self):
        inputs = [3, 5, 7] * 11
        a = run_multivalued_consensus(inputs, value_bits=3, seed=7).result
        b = run_multivalued_consensus(inputs, value_bits=3, seed=7).result
        assert a.agreement_value() == b.agreement_value()
        assert a.metrics.bits_sent == b.metrics.bits_sent


class TestProcessState:
    def test_prefix_and_candidate_exposed(self):
        run = run_multivalued_consensus([9] * 33, value_bits=4, seed=8)
        processes = run.processes
        for process in processes:
            assert process.prefix == [1, 0, 0, 1]
            assert process.candidate == 9
            assert 9 in process.seen
