"""Protocol fuzzing: randomized legal adversarial schedules.

Every ChaosAdversary schedule is within the model, so the consensus
properties must hold for every seed — the protocol-level analogue of
property-based testing.
"""

import pytest

from repro.adversary import ChaosAdversary
from repro.baselines import run_phase_king
from repro.baselines.dolev_strong import DolevStrongProcess
from repro.core import run_consensus, run_early_stopping_consensus, run_tradeoff_consensus
from repro.params import ProtocolParams
from repro.runtime import SyncNetwork

PARAMS = ProtocolParams.practical()


class TestChaosConstruction:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChaosAdversary(corrupt_rate=1.5)


@pytest.mark.parametrize("seed", range(6))
def test_algorithm1_survives_chaos(seed):
    n = 64
    t = PARAMS.max_faults(n)
    run = run_consensus(
        [pid % 2 for pid in range(n)],
        t=t,
        adversary=ChaosAdversary(seed=seed),
        params=PARAMS,
        seed=seed,
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_algorithm1_validity_under_chaos(seed):
    n = 64
    t = PARAMS.max_faults(n)
    run = run_consensus(
        [1] * n,
        t=t,
        adversary=ChaosAdversary(seed=seed, corrupt_rate=0.2),
        params=PARAMS,
        seed=seed,
    )
    assert run.decision == 1


@pytest.mark.parametrize("seed", range(4))
def test_early_stopping_survives_chaos(seed):
    n = 64
    t = PARAMS.max_faults(n)
    run = run_early_stopping_consensus(
        [pid % 2 for pid in range(n)],
        t=t,
        adversary=ChaosAdversary(seed=100 + seed),
        params=PARAMS,
        seed=seed,
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(3))
def test_tradeoff_survives_chaos(seed):
    n = 64
    run = run_tradeoff_consensus(
        [pid % 2 for pid in range(n)],
        4,
        adversary=ChaosAdversary(seed=200 + seed),
        params=PARAMS,
        seed=seed,
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_dolev_strong_survives_chaos(seed):
    n, t = 13, 3
    processes = [
        DolevStrongProcess(pid, n, pid % 2, t) for pid in range(n)
    ]
    network = SyncNetwork(
        processes,
        adversary=ChaosAdversary(seed=300 + seed, corrupt_rate=0.3),
        t=t,
        seed=seed,
    )
    result = network.run()
    assert result.agreement_value() in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_phase_king_survives_chaos(seed):
    result = run_phase_king(
        [pid % 2 for pid in range(13)],
        t=3,
        adversary=ChaosAdversary(seed=400 + seed, corrupt_rate=0.3),
        seed=seed,
    ).result
    assert result.agreement_value() in (0, 1)
