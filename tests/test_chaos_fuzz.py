"""Protocol fuzzing: randomized legal adversarial schedules.

Every ChaosAdversary schedule is within the model, so the consensus
properties must hold for every seed — the protocol-level analogue of
property-based testing.

Each run goes through ``repro.replay.run_checked``: invariants (agreement,
validity, termination, budget, metering conservation) are checked *during*
the run, and a violation is automatically shrunk to a minimal adversary
schedule and saved as a replayable recipe under ``counterexamples/``
(override with ``$REPRO_COUNTEREXAMPLE_DIR``; CI uploads the directory as
a workflow artifact).  Re-run a saved failure with::

    python -m repro.cli replay counterexamples/<name>.json
"""

import pytest

from repro.adversary import ChaosAdversary
from repro.params import ProtocolParams
from repro.replay import run_checked

PARAMS = ProtocolParams.practical()


class TestChaosConstruction:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChaosAdversary(corrupt_rate=1.5)


@pytest.mark.parametrize("seed", range(6))
def test_algorithm1_survives_chaos(seed):
    n = 64
    run = run_checked(
        "algorithm1",
        [pid % 2 for pid in range(n)],
        t=PARAMS.max_faults(n),
        adversary=ChaosAdversary(seed=seed),
        params=PARAMS,
        seed=seed,
        label="chaos-algorithm1",
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_algorithm1_validity_under_chaos(seed):
    n = 64
    run = run_checked(
        "algorithm1",
        [1] * n,
        t=PARAMS.max_faults(n),
        adversary=ChaosAdversary(seed=seed, corrupt_rate=0.2),
        params=PARAMS,
        seed=seed,
        label="chaos-algorithm1-validity",
    )
    assert run.decision == 1


@pytest.mark.parametrize("seed", range(4))
def test_early_stopping_survives_chaos(seed):
    n = 64
    run = run_checked(
        "early-stopping",
        [pid % 2 for pid in range(n)],
        t=PARAMS.max_faults(n),
        adversary=ChaosAdversary(seed=100 + seed),
        params=PARAMS,
        seed=seed,
        label="chaos-early-stopping",
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(3))
def test_tradeoff_survives_chaos(seed):
    n = 64
    run = run_checked(
        "tradeoff",
        [pid % 2 for pid in range(n)],
        adversary=ChaosAdversary(seed=200 + seed),
        params=PARAMS,
        seed=seed,
        x=4,
        label="chaos-tradeoff",
    )
    assert run.decision in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_dolev_strong_survives_chaos(seed):
    run = run_checked(
        "dolev-strong",
        [pid % 2 for pid in range(13)],
        t=3,
        adversary=ChaosAdversary(seed=300 + seed, corrupt_rate=0.3),
        seed=seed,
        label="chaos-dolev-strong",
    )
    assert run.result.agreement_value() in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_phase_king_survives_chaos(seed):
    run = run_checked(
        "phase-king",
        [pid % 2 for pid in range(13)],
        t=3,
        adversary=ChaosAdversary(seed=400 + seed, corrupt_rate=0.3),
        seed=seed,
        label="chaos-phase-king",
    )
    assert run.result.agreement_value() in (0, 1)
