"""Unit tests for message bit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import MESSAGE_OVERHEAD_BITS, Message, payload_bits


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_ints(self):
        assert payload_bits(0) == 2  # 1 magnitude bit + sign
        assert payload_bits(1) == 2
        assert payload_bits(255) == 9
        assert payload_bits(-255) == 9

    def test_int_grows_logarithmically(self):
        assert payload_bits(1 << 20) == 22

    def test_float(self):
        assert payload_bits(1.5) == 64

    def test_strings_and_bytes(self):
        assert payload_bits("ab") == 24
        assert payload_bits(b"ab") == 24

    def test_containers_sum_elements(self):
        flat = payload_bits((1, 2, 3))
        assert flat == 2 + sum(payload_bits(item) + 1 for item in (1, 2, 3))

    def test_nested_containers(self):
        nested = payload_bits(((1, 2), (3,)))
        assert nested > payload_bits((1, 2)) + payload_bits((3,))

    def test_dict(self):
        assert payload_bits({1: 2}) == 2 + payload_bits(1) + payload_bits(2) + 1

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            payload_bits(object())

    @given(st.integers())
    def test_int_bits_positive_and_monotone_in_magnitude(self, value):
        bits = payload_bits(value)
        assert bits >= 2
        assert bits >= payload_bits(value // 2) or abs(value) < 2

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=20)
    )
    def test_list_bits_superadditive(self, items):
        """A container always costs at least the sum of its items."""
        total = payload_bits(items)
        assert total >= sum(payload_bits(item) for item in items)


class TestMessage:
    def test_auto_sizing_includes_overhead(self):
        message = Message(0, 1, (1, 0))
        assert message.bits == payload_bits((1, 0)) + MESSAGE_OVERHEAD_BITS

    def test_explicit_bits_respected(self):
        message = Message(0, 1, "ignored", bits=5)
        assert message.bits == 5

    def test_fields(self):
        message = Message(3, 7, "x")
        assert message.sender == 3
        assert message.recipient == 7
        assert message.payload == "x"
