"""Tests for the repro-consensus CLI."""

import pytest

from repro.cli import main


def test_run_subcommand(capsys):
    code = main(["run", "--n", "36", "--adversary", "silence", "--seed", "1"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "decision" in captured
    assert "comm. bits" in captured


def test_run_unanimous_inputs(capsys):
    code = main(["run", "--n", "36", "--inputs", "1", "--seed", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "decision      : 1" in captured


def test_tradeoff_subcommand(capsys):
    code = main(["tradeoff", "--n", "32", "--xs", "1,4", "--seed", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "random bits" in captured
    lines = [line for line in captured.splitlines() if line.strip()]
    assert len(lines) == 3  # header + two sweep rows


def test_table1_subcommand(capsys):
    code = main(["table1", "--n", "36", "--seed", "4"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Thm 1 (measured)" in captured


def test_coin_game_subcommand(capsys):
    code = main(["coin-game", "--ks", "16", "--trials", "100"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Lemma 12" in captured


def test_graph_check_subcommand(capsys):
    code = main(["graph-check", "--n", "128", "--seed", "5"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "expanding" in captured


def test_unknown_adversary_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--n", "32", "--adversary", "nonsense"])


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_run_json_output(capsys):
    import json

    code = main(["run", "--n", "33", "--seed", "6", "--json"])
    captured = capsys.readouterr().out
    assert code == 0
    payload = json.loads(captured)
    assert payload["decision"] in (0, 1)
    assert payload["time_to_agreement"] > 0
    assert payload["n"] == 33


def test_campaign_run_subcommand(tmp_path, capsys):
    output = tmp_path / "campaign.json"
    journal = tmp_path / "campaign.jsonl"
    argv = [
        "campaign", "run",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0",
        "--journal", str(journal),
        "--output", str(output),
    ]
    code = main(argv)
    captured = capsys.readouterr().out
    assert code == 0
    assert output.exists()
    assert "rounds=" in captured
    # Second invocation resumes from the journal instead of recomputing.
    code = main(argv)
    captured = capsys.readouterr().out
    assert code == 0
    assert "resuming" in captured


def test_campaign_jobs_and_jsonl_resume(tmp_path, capsys):
    from repro.analysis.campaign import load_journal

    journal = tmp_path / "campaign.jsonl"
    output = tmp_path / "campaign.json"
    argv = [
        "campaign", "run",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0,1",
        "--jobs", "2",
        "--resume", str(journal),
        "--output", str(output),
    ]
    code = main(argv)
    captured = capsys.readouterr().out
    assert code == 0
    assert "rounds=" in captured
    assert len(load_journal(journal)) == 2
    # Second invocation resumes from the JSONL journal: no re-runs, so
    # nothing new is appended.
    code = main(argv)
    captured = capsys.readouterr().out
    assert code == 0
    assert f"resuming from {journal}" in captured
    assert len(load_journal(journal)) == 2


def test_campaign_x_option_recorded(tmp_path, capsys):
    output = tmp_path / "tradeoff.json"
    code = main(
        [
            "campaign", "run",
            "--protocol", "tradeoff",
            "--ns", "33",
            "--adversaries", "none",
            "--seeds", "0",
            "--x", "2",
            "--output", str(output),
        ]
    )
    assert code == 0
    from repro.analysis.campaign import load_campaign

    records = load_campaign(output)
    assert records[0]["x"] == 2
    assert records[0]["options"] == {"x": 2}


def test_campaign_flat_flags_removed(tmp_path, capsys):
    """The one-cycle flat spelling is gone: a subcommand is required."""
    output = tmp_path / "campaign.json"
    with pytest.raises(SystemExit):
        main(
            [
                "campaign",
                "--ns", "33",
                "--adversaries", "none",
                "--seeds", "0",
                "--output", str(output),
            ]
        )
    assert not output.exists()


def test_campaign_run_cold_then_warm_cache(tmp_path, capsys):
    import json

    cache = tmp_path / "cache"
    argv_tail = [
        "--name", "cli-cache",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0,1",
        "--cache", str(cache),
    ]
    cold_out = tmp_path / "cold.json"
    cold_stats = tmp_path / "cold-stats.json"
    code = main(
        ["campaign", "run", "--output", str(cold_out),
         "--cache-stats", str(cold_stats), *argv_tail]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "cache: 0 hits, 2 computed" in captured

    warm_out = tmp_path / "warm.json"
    warm_stats = tmp_path / "warm-stats.json"
    code = main(
        ["campaign", "run", "--output", str(warm_out),
         "--cache-stats", str(warm_stats), *argv_tail]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "cache: 2 hits, 0 computed" in captured
    stats = json.loads(warm_stats.read_text())
    assert stats["computed"] == 0
    assert stats["hits"] == 2
    assert stats["hit_rate"] == 1.0
    # The cached sweep is byte-identical to the computed one.
    assert cold_out.read_bytes() == warm_out.read_bytes()


def test_campaign_status_subcommand(tmp_path, capsys):
    import json

    cache = tmp_path / "cache"
    argv_tail = [
        "--name", "cli-status",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0,1",
        "--cache", str(cache),
    ]
    code = main(["campaign", "status", *argv_tail])
    captured = capsys.readouterr().out
    assert code == 0
    assert "missing       : 2" in captured

    main(["campaign", "run", "--output", str(tmp_path / "out.json"),
          *argv_tail])
    capsys.readouterr()
    code = main(["campaign", "status", "--json", *argv_tail])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["cache"] == 2
    assert payload["missing"] == 0
    assert payload["missing_cells"] == []


def test_campaign_query_subcommand(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv_tail = [
        "--name", "cli-query",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0",
        "--cache", str(cache),
    ]
    # An empty cache is all misses: nonzero exit, nothing executed.
    code = main(["campaign", "query", *argv_tail])
    captured = capsys.readouterr().out
    assert code == 1
    assert "MISS" in captured

    main(["campaign", "run", "--output", str(tmp_path / "out.json"),
          *argv_tail])
    capsys.readouterr()
    code = main(["campaign", "query", *argv_tail])
    captured = capsys.readouterr().out
    assert code == 0
    assert "HIT " in captured
    assert "hit rate 1.00" in captured


def test_campaign_resume_requires_journal(tmp_path):
    import pytest

    with pytest.raises(SystemExit, match="requires --journal"):
        main(["campaign", "resume", "--ns", "33", "--seeds", "0",
              "--output", str(tmp_path / "out.json")])


def test_campaign_resume_subcommand(tmp_path, capsys):
    journal = tmp_path / "sweep.jsonl"
    argv = [
        "campaign", "resume",
        "--name", "cli-resume",
        "--ns", "33",
        "--adversaries", "none",
        "--seeds", "0,1",
        "--journal", str(journal),
        "--output", str(tmp_path / "out.json"),
    ]
    code = main(argv)
    capsys.readouterr()
    assert code == 0
    from repro.analysis.campaign import load_journal

    assert len(load_journal(journal)) == 2
    # Second pass resumes every cell from the journal.
    code = main(argv)
    captured = capsys.readouterr().out
    assert code == 0
    assert f"resuming from {journal}" in captured
    assert len(load_journal(journal)) == 2


def test_ablation_subcommand(capsys):
    code = main(
        ["ablation", "--n", "33", "--epochs", "1,6", "--trials", "2"]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "fallback rate" in captured
    assert "decision bias" in captured
