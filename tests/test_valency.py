"""Tests for the valency classifier (Lemma-13 machinery)."""

import pytest

from repro.lowerbound import (
    DISAGREEMENT,
    FloodMinProtocol,
    MajorityRoundsProtocol,
    classify_all_inputs,
    reachable_outcomes,
)


class TestFloodMin:
    def test_unanimous_inputs_univalent(self):
        protocol = FloodMinProtocol(n=3, max_rounds=2)
        assert reachable_outcomes(protocol, (0, 0, 0), t=1) == frozenset({0})
        assert reachable_outcomes(protocol, (1, 1, 1), t=1) == frozenset({1})

    def test_correct_with_t_plus_one_rounds(self):
        """Flood-min with rounds = t+1 never violates agreement (classic)."""
        protocol = FloodMinProtocol(n=3, max_rounds=2)
        report = classify_all_inputs(protocol, t=1)
        assert report.broken() == []

    def test_lemma13_witness_exists(self):
        """Some initial state is not uni-valent — the adversary picks the
        outcome (Lemma 13)."""
        protocol = FloodMinProtocol(n=3, max_rounds=2)
        report = classify_all_inputs(protocol, t=1)
        witness = report.lemma13_witness()
        assert witness is not None
        assert witness in report.bivalent()

    def test_breaks_with_t_rounds(self):
        """With only t rounds the crash-round message splits create
        disagreement — t+1 rounds are necessary."""
        protocol = FloodMinProtocol(n=3, max_rounds=1)
        report = classify_all_inputs(protocol, t=1)
        broken = report.broken()
        assert broken != []
        for inputs in broken:
            assert DISAGREEMENT in report.outcomes[inputs]

    def test_no_faults_no_choice(self):
        protocol = FloodMinProtocol(n=3, max_rounds=2)
        for inputs in ((0, 1, 1), (1, 0, 1)):
            assert reachable_outcomes(protocol, inputs, t=0) == frozenset({0})

    def test_four_processes_two_faults(self):
        protocol = FloodMinProtocol(n=4, max_rounds=3)
        outcomes = reachable_outcomes(protocol, (0, 1, 1, 1), t=2)
        assert outcomes == frozenset({0, 1})


class TestMajorityRounds:
    def test_unanimity_preserved(self):
        protocol = MajorityRoundsProtocol(n=3, max_rounds=2)
        assert reachable_outcomes(protocol, (1, 1, 1), t=1) == frozenset({1})

    def test_naive_majority_is_breakable(self):
        """One-round majority without any defence is not consensus: a
        crash-round partial delivery splits the tie-breaks."""
        protocol = MajorityRoundsProtocol(n=3, max_rounds=1)
        report = classify_all_inputs(protocol, t=1)
        assert report.broken() != []

    def test_extra_rounds_repair_three_processes(self):
        """With n=3, t=1 and two rounds, any crash-free round re-unifies the
        system, so the exhaustive search certifies safety — the budget is
        what limits the adversary, exactly as in the paper's amortized
        analysis."""
        protocol = MajorityRoundsProtocol(n=3, max_rounds=2)
        report = classify_all_inputs(protocol, t=1)
        assert report.broken() == []


class TestValidation:
    def test_input_length_checked(self):
        protocol = FloodMinProtocol(n=3, max_rounds=2)
        with pytest.raises(ValueError):
            reachable_outcomes(protocol, (0, 1), t=1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FloodMinProtocol(n=0, max_rounds=1)
        with pytest.raises(ValueError):
            FloodMinProtocol(n=2, max_rounds=0)

    def test_report_accessors(self):
        protocol = FloodMinProtocol(n=2, max_rounds=2)
        report = classify_all_inputs(protocol, t=1)
        # With t = n-1... t=1, n=2: crashing one process leaves the other's
        # value as the outcome; mixed inputs are bivalent.
        assert (0, 0) in report.univalent(0)
        assert (1, 1) in report.univalent(1)
        assert set(report.bivalent()) <= {(0, 1), (1, 0)}
