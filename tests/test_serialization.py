"""Tests for JSON serialization of results and traces."""

import json

import pytest

from repro.adversary import SilenceAdversary
from repro.core import build_processes, run_consensus
from repro.runtime import (
    SyncNetwork,
    TraceRecorder,
    load_result,
    metrics_from_dict,
    metrics_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    trace_to_dict,
)


def sample_result():
    return run_consensus(
        [pid % 2 for pid in range(36)],
        t=1,
        adversary=SilenceAdversary([0]),
        seed=1,
    ).result


class TestMetricsRoundTrip:
    def test_round_trip_preserves_everything(self):
        metrics = sample_result().metrics
        rebuilt = metrics_from_dict(metrics_to_dict(metrics))
        assert rebuilt.summary() == metrics.summary()
        assert rebuilt.messages_per_round == metrics.messages_per_round
        assert rebuilt.bits_per_round == metrics.bits_per_round


class TestResultRoundTrip:
    def test_dict_round_trip(self):
        result = sample_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.n == result.n
        assert rebuilt.decisions == result.decisions
        assert rebuilt.faulty == result.faulty
        assert rebuilt.decision_rounds == result.decision_rounds
        assert rebuilt.randomness_per_process == result.randomness_per_process
        assert rebuilt.agreement_value() == result.agreement_value()
        assert rebuilt.time_to_agreement() == result.time_to_agreement()

    def test_json_serializable(self):
        payload = json.dumps(result_to_dict(sample_result()))
        assert "decisions" in payload

    def test_file_round_trip(self, tmp_path):
        result = sample_result()
        path = tmp_path / "result.json"
        save_result(result, path)
        rebuilt = load_result(path)
        assert rebuilt.agreement_value() == result.agreement_value()
        assert rebuilt.metrics.bits_sent == result.metrics.bits_sent

    def test_version_checked(self):
        data = result_to_dict(sample_result())
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema version 999"):
            result_from_dict(data)

    def test_untagged_payload_rejected(self):
        data = result_to_dict(sample_result())
        del data["schema"]
        with pytest.raises(ValueError, match="schema version None"):
            result_from_dict(data)

    def test_legacy_format_version_accepted(self):
        """Files written before the ``schema`` tag carried
        ``format_version: 1`` and must still load."""
        result = sample_result()
        data = result_to_dict(result)
        del data["schema"]
        data["metrics"].pop("schema")
        data["format_version"] = 1
        rebuilt = result_from_dict(data)
        assert rebuilt.agreement_value() == result.agreement_value()

    def test_metrics_schema_checked(self):
        data = metrics_to_dict(sample_result().metrics)
        data["schema"] = 999
        with pytest.raises(ValueError, match="metrics schema"):
            metrics_from_dict(data)


class TestRecipeSerialization:
    def test_round_trip_through_runtime_wrappers(self):
        from repro.replay import ExecutionRecipe, RecordedAction
        from repro.runtime import recipe_from_dict, recipe_to_dict

        recipe = ExecutionRecipe(
            protocol="ben-or",
            n=7,
            seed=3,
            inputs=(0, 1, 1, 0, 1, 0, 1),
            t=1,
            actions=(RecordedAction(round=0, corrupt=(2,), omit=(0, 5)),),
            note="unit",
        )
        payload = json.loads(json.dumps(recipe_to_dict(recipe)))
        assert payload["schema"] == 2
        assert payload["kind"] == "execution-recipe"
        rebuilt = recipe_from_dict(payload)
        assert rebuilt == recipe

    def test_unknown_schema_rejected(self):
        from repro.runtime import recipe_from_dict

        with pytest.raises(ValueError, match="recipe schema"):
            recipe_from_dict({"schema": 999, "kind": "execution-recipe"})

    def test_non_recipe_payload_rejected(self):
        from repro.runtime import recipe_from_dict

        with pytest.raises(ValueError, match="not an execution recipe"):
            recipe_from_dict(result_to_dict(sample_result()))


class TestTraceSerialization:
    def test_trace_to_dict_json_safe(self):
        processes = build_processes([1] * 33, t=1)
        recorder = TraceRecorder(sample_every=4)
        network = recorder.attach(
            SyncNetwork(processes, adversary=SilenceAdversary([0]), t=1, seed=2)
        )
        network.run()
        data = trace_to_dict(recorder)
        payload = json.dumps(data)
        assert "newly_corrupted" in payload
        assert len(data["rounds"]) == len(recorder.rounds)
        first = data["rounds"][0]
        assert first["newly_corrupted"] == [0]
