"""Tests for the structured execution tracer."""

import pytest

from repro.adversary import SilenceAdversary, StaticCrashAdversary
from repro.core import build_processes
from repro.runtime import SyncNetwork, TraceRecorder


def traced_run(n=64, adversary=None, t=0, seed=1, sample_every=1):
    processes = build_processes([pid % 2 for pid in range(n)], t=t)
    recorder = TraceRecorder(sample_every=sample_every)
    network = recorder.attach(
        SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    )
    result = network.run()
    return recorder, result


class TestRoundTraces:
    def test_one_trace_per_round(self):
        recorder, result = traced_run()
        assert len(recorder.rounds) == result.metrics.rounds
        assert [trace.round for trace in recorder.rounds] == list(
            range(result.metrics.rounds)
        )

    def test_traffic_matches_metrics(self):
        recorder, result = traced_run()
        assert [t.messages_sent for t in recorder.rounds] == (
            result.metrics.messages_per_round
        )
        assert sum(t.bits_sent for t in recorder.rounds) == (
            result.metrics.bits_sent
        )

    def test_corruption_rounds_recorded(self):
        recorder, result = traced_run(
            adversary=StaticCrashAdversary({4: [0], 9: [1]}), t=2
        )
        schedule = recorder.corruption_rounds()
        assert schedule == {0: 4, 1: 9}

    def test_omissions_counted(self):
        recorder, result = traced_run(adversary=SilenceAdversary([0]), t=1)
        assert recorder.total_omissions() == result.metrics.messages_omitted
        assert recorder.total_omissions() > 0

    def test_decision_rounds_subset_of_result(self):
        """The trace sees every decision made before the terminal
        local-computation phase; the engine's map is the superset."""
        recorder, result = traced_run()
        observed = recorder.decision_rounds()
        for pid, round_no in observed.items():
            assert result.decision_rounds[pid] == round_no

    def test_decision_rounds_observed_for_staggered_deciders(self):
        """With silenced processes the inoperative waiters decide in a
        later communication round, which the trace does capture."""
        recorder, result = traced_run(adversary=SilenceAdversary([0]), t=1)
        observed = recorder.decision_rounds()
        assert observed  # at least the early deciders are visible
        for pid, round_no in observed.items():
            assert result.decision_rounds[pid] == round_no

    def test_sampling_interval(self):
        recorder, _ = traced_run(sample_every=10)
        sampled = [t.round for t in recorder.rounds if t.state_sample]
        assert sampled
        assert all(round_no % 10 == 0 for round_no in sampled)

    def test_operative_series_monotone_down(self):
        recorder, _ = traced_run(adversary=SilenceAdversary([0, 1]), t=2)
        series = [count for _, count in recorder.operative_series()]
        assert series
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_state_sample_contains_protocol_fields(self):
        recorder, _ = traced_run()
        sample = recorder.rounds[0].state_sample
        assert sample
        snapshot = sample[0]
        assert {"b", "operative", "decided", "epoch"} <= set(snapshot)

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_probe_none_skips_sampling(self):
        processes = build_processes([1] * 16, t=0)
        recorder = TraceRecorder(probe=None)
        network = recorder.attach(SyncNetwork(processes, seed=2))
        network.run()
        assert all(not trace.state_sample for trace in recorder.rounds)
