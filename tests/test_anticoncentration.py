"""Tests for the Lemma-9 anti-concentration verification."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbound import (
    adversary_cost_to_cancel,
    deviation_probability,
    lemma9_lower_bound,
    verify_lemma9,
)


class TestBound:
    def test_at_zero(self):
        assert math.isclose(
            lemma9_lower_bound(0.0),
            math.exp(-4.0) / math.sqrt(2 * math.pi),
        )

    def test_decreasing_in_t(self):
        values = [lemma9_lower_bound(t) for t in (0.0, 0.5, 1.0, 2.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lemma9_lower_bound(-0.1)


class TestExactProbability:
    def test_symmetric_point(self):
        # Pr[X >= n/2] > 0.5 for even n (includes the mean).
        assert deviation_probability(64, 0.0) > 0.5

    def test_decreasing_in_t(self):
        probs = [deviation_probability(256, t) for t in (0.0, 0.5, 1.0, 2.0)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            deviation_probability(0, 1.0)

    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=8, max_value=2000),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_is_a_probability(self, n, t):
        value = deviation_probability(n, t)
        assert 0.0 <= value <= 1.0


class TestLemma9:
    def test_grid_holds(self):
        checks = verify_lemma9([16, 64, 256, 1024, 4096])
        assert checks
        assert all(check.holds for check in checks)

    def test_respects_validity_range(self):
        # t values beyond sqrt(n)/8 are skipped.
        checks = verify_lemma9([16], t_values=[10.0])
        assert checks == []

    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=64, max_value=2048),
        st.floats(min_value=0.0, max_value=0.9),
    )
    def test_property_within_range(self, n, fraction):
        t = fraction * math.sqrt(n) / 8.0
        exact = deviation_probability(n, t)
        assert exact >= lemma9_lower_bound(t)


class TestAdversaryCost:
    def test_scales_like_sqrt_n(self):
        small = adversary_cost_to_cancel(64)
        large = adversary_cost_to_cancel(4096)
        # sqrt(4096/64) = 8; allow slack for the discrete quantile.
        assert 4 <= large / max(1, small) <= 12

    def test_higher_quantile_means_lower_cost(self):
        assert adversary_cost_to_cancel(256, 0.45) <= adversary_cost_to_cancel(
            256, 0.05
        )

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            adversary_cost_to_cancel(64, 0.0)
