"""Integration tests for OptimalOmissionsConsensus (Algorithm 1).

Agreement / validity / termination across the adversary gallery, plus the
randomness accounting and fallback-path behaviour the paper specifies.
"""

import pytest

from repro import ProtocolParams, run_consensus
from repro.adversary import (
    GroupKnockoutAdversary,
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)
from repro.core import cached_sqrt_partition, epoch_rounds

PARAMS = ProtocolParams.practical()


def mixed(n):
    return [pid % 2 for pid in range(n)]


class TestValidity:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_unanimous_decides_input(self, bit):
        run = run_consensus([bit] * 40, t=1, seed=3)
        assert run.decision == bit

    @pytest.mark.parametrize("bit", [0, 1])
    def test_unanimous_uses_zero_randomness(self, bit):
        """Theorem 5's validity argument: with one value in the system no
        process ever touches its random source."""
        run = run_consensus([bit] * 40, t=1, seed=3)
        assert run.metrics.random_bits == 0

    def test_unanimous_under_silence_adversary(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            [1] * n, t=t, adversary=SilenceAdversary(range(t)), seed=4
        )
        assert run.decision == 1

    def test_unanimous_under_balancer(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            [0] * n, t=t, adversary=VoteBalancingAdversary(seed=1), seed=5
        )
        assert run.decision == 0


class TestAgreementUnderAdversaries:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_adversary(self, seed):
        run = run_consensus(mixed(48), t=1, seed=seed)
        assert run.decision in (0, 1)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_silence(self, seed):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            mixed(n), t=t, adversary=SilenceAdversary(range(t)), seed=seed
        )
        assert run.decision in (0, 1)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_omissions(self, seed):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            mixed(n),
            t=t,
            adversary=RandomOmissionAdversary(0.7, seed=seed),
            seed=seed,
        )
        assert run.decision in (0, 1)

    def test_staggered_crashes(self):
        n = 64
        t = PARAMS.max_faults(n)
        schedule = {5 * k: [k] for k in range(t)}
        run = run_consensus(
            mixed(n), t=t, adversary=StaticCrashAdversary(schedule), seed=6
        )
        assert run.decision in (0, 1)

    def test_vote_balancer(self):
        n = 96
        t = PARAMS.max_faults(n)
        run = run_consensus(
            mixed(n), t=t, adversary=VoteBalancingAdversary(seed=2), seed=7
        )
        assert run.decision in (0, 1)

    def test_group_knockout(self):
        n = 100
        t = PARAMS.max_faults(n)
        partition = cached_sqrt_partition(n)
        run = run_consensus(
            mixed(n),
            t=t,
            adversary=GroupKnockoutAdversary(partition.group_members(0)),
            seed=8,
        )
        assert run.decision in (0, 1)


class TestComplexityAccounting:
    def test_randomness_at_most_one_bit_per_process_per_epoch(self):
        n = 64
        run = run_consensus(mixed(n), t=2, seed=9)
        epochs = run.processes[0].num_epochs
        assert run.metrics.random_bits <= n * epochs
        assert run.metrics.random_calls == run.metrics.random_bits

    def test_fast_path_round_count_formula(self):
        """Without the fallback, rounds = epochs * epoch_rounds + 1
        dissemination round + the final decide resume."""
        n = 49
        run = run_consensus([1] * n, t=1, seed=10)
        assert not run.used_fallback
        epochs = run.processes[0].num_epochs
        expected = epochs * epoch_rounds(n, PARAMS) + 1
        assert run.result.time_to_agreement() == expected + 1

    def test_time_metric_ignores_faulty_stragglers(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            mixed(n), t=t, adversary=SilenceAdversary(range(t)), seed=11
        )
        assert run.result.time_to_agreement() <= run.metrics.rounds

    def test_deterministic_given_seed(self):
        a = run_consensus(mixed(48), t=1, seed=12)
        b = run_consensus(mixed(48), t=1, seed=12)
        assert a.decision == b.decision
        assert a.metrics.bits_sent == b.metrics.bits_sent
        assert a.metrics.random_bits == b.metrics.random_bits


class TestFallbackPath:
    def test_zero_epochs_forces_dolev_strong(self):
        """num_epochs=0 sends every operative process into the fallback —
        agreement must still hold with probability 1."""
        n = 33
        t = PARAMS.max_faults(n)
        run = run_consensus(mixed(n), t=t, num_epochs=0, seed=13)
        assert run.used_fallback
        assert run.decision in (0, 1)

    def test_zero_epochs_unanimous_validity(self):
        n = 33
        run = run_consensus([1] * n, t=1, num_epochs=0, seed=14)
        assert run.decision == 1

    def test_zero_epochs_with_silence_adversary(self):
        n = 64
        t = PARAMS.max_faults(n)
        run = run_consensus(
            mixed(n),
            t=t,
            num_epochs=0,
            adversary=SilenceAdversary(range(t)),
            seed=15,
        )
        assert run.decision in (0, 1)


class TestStateExposure:
    def test_process_state_visible(self):
        run = run_consensus(mixed(36), t=1, seed=16)
        process = run.processes[0]
        assert process.b in (0, 1)
        assert process.epoch == process.num_epochs
        assert isinstance(process.operative, bool)

    def test_small_systems(self):
        for n in (2, 3, 5, 9):
            run = run_consensus([pid % 2 for pid in range(n)], t=0, seed=17)
            assert run.decision in (0, 1)

    def test_invalid_input_bit_rejected(self):
        with pytest.raises(ValueError):
            run_consensus([2, 0, 1], t=0)

    def test_excess_fault_budget_rejected(self):
        with pytest.raises(ValueError):
            run_consensus(mixed(32), t=5)
