"""Engine tests: lockstep delivery, adversary legality, metrics, results.

Uses small scripted processes rather than the real protocols, so each engine
behaviour is exercised in isolation.
"""

import pytest

from repro.runtime import (
    Adversary,
    AdversaryAction,
    AdversaryProtocolError,
    LockstepError,
    ProcessEnv,
    SyncNetwork,
    SyncProcess,
)


class EchoOnce(SyncProcess):
    """Round 0: broadcast own pid; round 1: record inbox; decide."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self.heard: list[int] = []

    def program(self, env: ProcessEnv):
        env.broadcast(("pid", self.pid))
        inbox = yield
        self.heard = sorted(message.payload[1] for message in inbox)
        env.decide(tuple(self.heard))
        return None


class Chatter(SyncProcess):
    """Broadcasts every round for a fixed number of rounds; never decides."""

    def __init__(self, pid: int, n: int, rounds: int) -> None:
        super().__init__(pid, n)
        self.rounds = rounds

    def program(self, env: ProcessEnv):
        for round_no in range(self.rounds):
            env.broadcast(("r", round_no))
            yield
        env.decide("done")
        return None


class SelfTalker(SyncProcess):
    def program(self, env: ProcessEnv):
        env.send(self.pid, "hello me")
        inbox = yield
        env.decide(len(inbox))
        return None


def test_all_to_all_delivery():
    n = 5
    network = SyncNetwork([EchoOnce(pid, n) for pid in range(n)])
    result = network.run()
    for pid in range(n):
        expected = tuple(sorted(set(range(n)) - {pid}))
        assert result.decisions[pid] == expected


def test_inbox_sorted_by_sender():
    n = 4
    processes = [EchoOnce(pid, n) for pid in range(n)]
    network = SyncNetwork(processes)
    network.run()
    for process in processes:
        assert process.heard == sorted(process.heard)


def test_self_messages_delivered():
    network = SyncNetwork([SelfTalker(0, 1)])
    result = network.run()
    assert result.decisions[0] == 1


def test_metrics_counts_messages_and_rounds():
    n = 3
    network = SyncNetwork([Chatter(pid, n, rounds=4) for pid in range(n)])
    result = network.run()
    # 4 rounds of n*(n-1) broadcasts, plus the final decide-advance round.
    assert result.metrics.messages_sent == 4 * n * (n - 1)
    assert result.metrics.messages_delivered == result.metrics.messages_sent
    assert result.metrics.bits_sent > 0
    assert result.rounds >= 4


def test_decision_rounds_recorded():
    n = 3
    network = SyncNetwork([Chatter(pid, n, rounds=2) for pid in range(n)])
    result = network.run()
    assert set(result.decision_rounds) == {0, 1, 2}
    assert result.time_to_agreement() == max(result.decision_rounds.values()) + 1


def test_max_rounds_enforced():
    class Forever(SyncProcess):
        def program(self, env):
            while True:
                yield

    network = SyncNetwork([Forever(0, 1)], max_rounds=10)
    with pytest.raises(LockstepError):
        network.run()


def test_pid_position_mismatch_rejected():
    with pytest.raises(ValueError):
        SyncNetwork([EchoOnce(1, 2), EchoOnce(0, 2)])


def test_process_size_mismatch_rejected():
    with pytest.raises(ValueError):
        SyncNetwork([EchoOnce(0, 3)])


def test_invalid_fault_budget_rejected():
    with pytest.raises(ValueError):
        SyncNetwork([EchoOnce(0, 1)], t=1)


class CorruptAndOmitAll(Adversary):
    """Corrupts process 0 in round 0 and omits everything it sends."""

    def act(self, view):
        corrupt = frozenset({0}) if view.round == 0 else frozenset()
        return AdversaryAction(
            corrupt=corrupt,
            omit=view.message_indices_from({0}),
        )


def test_omissions_silence_faulty_sender():
    n = 3
    processes = [EchoOnce(pid, n) for pid in range(n)]
    network = SyncNetwork(processes, adversary=CorruptAndOmitAll(), t=1)
    result = network.run()
    assert result.faulty == frozenset({0})
    assert result.decisions[1] == (2,)
    assert result.decisions[2] == (1,)
    # Process 0 still hears the others (only ITS messages were dropped).
    assert result.decisions[0] == (1, 2)
    assert result.metrics.messages_omitted == 2


class OverBudget(Adversary):
    def act(self, view):
        if view.round == 0:
            return AdversaryAction(corrupt=frozenset({0, 1}))
        return AdversaryAction.nothing()


def test_corruption_budget_enforced():
    network = SyncNetwork(
        [EchoOnce(pid, 3) for pid in range(3)], adversary=OverBudget(), t=1
    )
    with pytest.raises(AdversaryProtocolError):
        network.run()


class IllegalOmission(Adversary):
    def act(self, view):
        if view.messages:
            return AdversaryAction(omit=frozenset({0}))
        return AdversaryAction.nothing()


def test_omission_requires_faulty_endpoint():
    network = SyncNetwork(
        [EchoOnce(pid, 2) for pid in range(2)], adversary=IllegalOmission(), t=1
    )
    with pytest.raises(AdversaryProtocolError):
        network.run()


class OutOfRangeOmission(Adversary):
    def act(self, view):
        return AdversaryAction(omit=frozenset({10_000}))


def test_omission_index_validated():
    network = SyncNetwork(
        [EchoOnce(pid, 2) for pid in range(2)],
        adversary=OutOfRangeOmission(),
        t=1,
    )
    with pytest.raises(AdversaryProtocolError):
        network.run()


def test_agreement_value_detects_disagreement():
    class DecideOwnPid(SyncProcess):
        def program(self, env):
            env.decide(self.pid)
            return None
            yield  # pragma: no cover

    network = SyncNetwork([DecideOwnPid(pid, 2) for pid in range(2)])
    result = network.run()
    with pytest.raises(AssertionError, match="agreement violated"):
        result.agreement_value()


def test_agreement_value_detects_non_termination():
    class Silent(SyncProcess):
        def program(self, env):
            yield
            return None

    network = SyncNetwork([Silent(pid, 2) for pid in range(2)])
    result = network.run()
    with pytest.raises(AssertionError, match="termination violated"):
        result.agreement_value()


def test_final_round_sends_are_delivered():
    """Messages queued just before a process returns still go out."""

    class LastWord(SyncProcess):
        def program(self, env):
            if self.pid == 0:
                yield
                env.broadcast("bye")
                env.decide("sender")
                return None
            inbox = yield
            inbox = yield
            env.decide([m.payload for m in inbox])
            return None

    network = SyncNetwork([LastWord(pid, 2) for pid in range(2)])
    result = network.run()
    assert result.decisions[1] == ["bye"]


def test_messages_to_terminated_recipients_counted_as_lost():
    """Delivered counters agree on which messages they count; traffic to
    terminated recipients is accounted as lost, in neither of them."""

    class QuickDecider(SyncProcess):
        def program(self, env):
            env.decide("gone")
            return None
            yield  # pragma: no cover

    class LateSender(SyncProcess):
        def program(self, env):
            yield  # round 0: silent; peer terminates this round
            env.broadcast("too late")
            env.decide("sent")
            return None

    network = SyncNetwork([QuickDecider(0, 2), LateSender(1, 2)])
    result = network.run()
    metrics = result.metrics
    assert metrics.messages_sent == 1
    assert metrics.messages_delivered == 0
    assert metrics.bits_delivered == 0
    assert metrics.messages_lost == 1
    assert metrics.bits_lost > 0
    assert (
        metrics.messages_delivered
        + metrics.messages_omitted
        + metrics.messages_lost
        == metrics.messages_sent
    )


def test_delivery_counters_agree_on_delivered_set():
    """bits_delivered covers exactly the messages in messages_delivered."""
    n = 3
    network = SyncNetwork([Chatter(pid, n, rounds=3) for pid in range(n)])
    result = network.run()
    metrics = result.metrics
    assert metrics.messages_delivered == metrics.messages_sent
    assert metrics.bits_delivered == metrics.bits_sent
    assert metrics.messages_lost == 0
    assert metrics.bits_lost == 0


def test_randomness_metered_into_result():
    class Flipper(SyncProcess):
        def program(self, env):
            env.random.bit()
            env.random.bits(7)
            env.decide(0)
            return None
            yield  # pragma: no cover

    network = SyncNetwork([Flipper(0, 1)], seed=5)
    result = network.run()
    assert result.metrics.random_calls == 2
    assert result.metrics.random_bits == 8
    assert result.randomness_per_process == [(2, 8)]


def test_runs_reproducible_for_same_seed():
    def run_once():
        class Flip(SyncProcess):
            def program(self, env):
                env.decide(env.random.bits(32))
                return None
                yield  # pragma: no cover

        network = SyncNetwork([Flip(pid, 3) for pid in range(3)], seed=11)
        return network.run().decisions

    assert run_once() == run_once()
