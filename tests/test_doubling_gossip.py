"""Tests for the B.3 doubling-collector experiment."""

import pytest

from repro.baselines import (
    CrashCollectors,
    DoublingCollector,
    ResponseStarver,
    measure_amortization,
    run_collectors,
)


class TestCollector:
    def test_rejects_bad_quorum(self):
        with pytest.raises(ValueError):
            DoublingCollector(0, 8, 0)
        with pytest.raises(ValueError):
            DoublingCollector(0, 8, 8)

    def test_fault_free_all_satisfied(self):
        processes = run_collectors(32, 0, None, seed=1).processes
        for process in processes:
            assert process.satisfied
            assert len(process.responses) >= process.quorum

    def test_doubling_stops_at_quorum_wave(self):
        """Contacts follow 1+2+4+... and stop at the first wave covering
        the quorum — never the whole system when everyone answers."""
        processes = run_collectors(64, 0, None, quorum=10, seed=2).processes
        for process in processes:
            assert process.contacted == 15  # 1+2+4+8

    def test_small_quorum_one_wave(self):
        processes = run_collectors(16, 0, None, quorum=1, seed=3).processes
        assert all(process.contacted == 1 for process in processes)


class TestCrashSemantics:
    def test_crashed_collectors_cost_nothing(self):
        points = measure_amortization(64, 2, seed=4)
        assert points["crash"].responses_to_victims == 0

    def test_crashed_collectors_never_satisfied(self):
        processes = run_collectors(
            32, 2, CrashCollectors([0, 1]), seed=5
        ).processes
        assert not processes[0].satisfied
        assert not processes[1].satisfied
        for process in processes[2:]:
            assert process.satisfied


class TestOmissionSemantics:
    def test_starved_collector_sweeps_everyone(self):
        processes = run_collectors(
            64, 1, ResponseStarver([0]), seed=6
        ).processes
        assert processes[0].contacted == 63
        assert not processes[0].satisfied

    def test_starved_collector_charges_everyone(self):
        points = measure_amortization(64, 1, seed=7)
        assert points["omission"].responses_to_victims == 63

    def test_healthy_collectors_unaffected(self):
        """The starver only touches responses to its victims; healthy
        collectors finish exactly as in the fault-free run."""
        points = measure_amortization(64, 2, seed=8)
        assert (
            points["omission"].healthy_requests_max
            == points["none"].healthy_requests_max
        )

    def test_omission_beats_crash_in_forced_work(self):
        for n, t in ((64, 2), (96, 3)):
            points = measure_amortization(n, t, seed=9)
            assert (
                points["omission"].responses_to_victims
                > points["crash"].responses_to_victims
            )
            # Each victim is answered by every healthy process exactly
            # once: t * (n - t) forced responses.
            assert points["omission"].responses_to_victims == t * (n - t)
