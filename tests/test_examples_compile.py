"""Every example script must at least compile and import its dependencies.

Full example runs take minutes (they execute many consensus instances), so
CI-speed coverage is: byte-compile each script and verify every module it
imports from ``repro`` resolves.  The quickstart is the exception — it is
the first thing a reader runs, so it executes end-to-end here.
"""

import ast
import importlib
import py_compile
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[script.stem for script in SCRIPTS]
)
def test_example_compiles(script, tmp_path):
    py_compile.compile(
        str(script), cfile=str(tmp_path / (script.stem + ".pyc")), doraise=True
    )


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[script.stem for script in SCRIPTS]
)
def test_example_repro_imports_resolve(script):
    tree = ast.parse(script.read_text(encoding="utf-8"))
    imported: set[tuple[str, tuple[str, ...]]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.split(".")[0] == "repro":
                imported.add(
                    (node.module, tuple(alias.name for alias in node.names))
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    imported.add((alias.name, ()))
    assert imported, f"{script.name} should exercise the repro API"
    for module_name, names in imported:
        module = importlib.import_module(module_name)
        for name in names:
            assert hasattr(module, name), (
                f"{script.name}: {module_name} has no attribute {name}"
            )


def test_quickstart_executes(capsys):
    """The quickstart runs end-to-end, not merely compiles.

    Asserts the run's actual claims: a decision is reached under the
    silence adversary, and a unanimous system decides its common input
    while drawing zero random bits (the paper's validity argument).
    """
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "decision             : 0" in out
    assert "decision=1, random bits=0" in out


def test_every_example_has_a_main():
    for script in SCRIPTS:
        text = script.read_text(encoding="utf-8")
        assert 'if __name__ == "__main__":' in text, script.name


def test_examples_readme_lists_every_script():
    readme = (EXAMPLES_DIR / "README.md").read_text(encoding="utf-8")
    for script in SCRIPTS:
        assert script.name in readme, f"{script.name} missing from README"
