"""Unit tests for the adversary strategy gallery."""

from repro.adversary import (
    EclipseAdversary,
    GroupKnockoutAdversary,
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)
from repro.runtime import (
    Message,
    NetworkView,
    ProcessEnv,
    SyncNetwork,
    SyncProcess,
)


class Babbler(SyncProcess):
    """Broadcasts its pid each round; tracks what it hears."""

    def __init__(self, pid, n, rounds=6):
        super().__init__(pid, n)
        self.rounds = rounds
        self.heard: list[set[int]] = []

    def program(self, env: ProcessEnv):
        for _ in range(self.rounds):
            env.broadcast(("hi", self.pid))
            inbox = yield
            self.heard.append({message.sender for message in inbox})
        env.decide("done")
        return None


def run_babble(n, adversary, t, rounds=6, seed=0):
    processes = [Babbler(pid, n, rounds) for pid in range(n)]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    result = network.run()
    return result, processes


class TestSilenceAdversary:
    def test_victims_never_heard(self):
        result, processes = run_babble(6, SilenceAdversary([0, 1]), t=2)
        assert result.faulty == frozenset({0, 1})
        for process in processes[2:]:
            for heard in process.heard[1:]:
                assert heard.isdisjoint({0, 1})

    def test_respects_budget(self):
        result, _ = run_babble(6, SilenceAdversary(range(6)), t=2)
        assert len(result.faulty) == 2


class TestStaticCrashAdversary:
    def test_crash_round_honoured(self):
        adversary = StaticCrashAdversary({3: [2]})
        result, processes = run_babble(5, adversary, t=1)
        assert result.faulty == frozenset({2})
        listener = processes[0]
        # Heard process 2 before its crash round, never after.
        assert 2 in listener.heard[1]
        for heard in listener.heard[4:]:
            assert 2 not in heard


class TestRandomOmissionAdversary:
    def test_only_faulty_links_touched(self):
        adversary = RandomOmissionAdversary(1.0, corrupt_count=1, seed=3)
        result, processes = run_babble(6, adversary, t=1)
        (victim,) = result.faulty
        for process in processes:
            if process.pid == victim:
                continue
            for heard in process.heard[1:]:
                assert victim not in heard

    def test_zero_probability_never_omits(self):
        adversary = RandomOmissionAdversary(0.0, seed=4)
        result, _ = run_babble(6, adversary, t=2)
        assert result.metrics.messages_omitted == 0


class TestEclipseAdversary:
    def test_only_victim_links_omitted(self):
        victim, neighbors = 0, [1, 2]
        adversary = EclipseAdversary(victim, neighbors)
        result, processes = run_babble(6, adversary, t=2)
        assert result.faulty == frozenset(neighbors)
        # Victim stops hearing its eclipsed neighbours...
        for heard in processes[victim].heard[1:]:
            assert heard.isdisjoint(neighbors)
        # ...but everyone else still hears them (only victim-bound messages
        # are dropped).
        for heard in processes[3].heard[1:]:
            assert {1, 2} <= heard


class TestGroupKnockoutAdversary:
    def test_majority_of_group_silenced(self):
        group = (0, 1, 2, 3)
        adversary = GroupKnockoutAdversary(group)
        result, processes = run_babble(8, adversary, t=3)
        assert result.faulty == frozenset({0, 1, 2})
        for heard in processes[5].heard[1:]:
            assert heard.isdisjoint({0, 1, 2})


class TestVoteBalancingAdversary:
    def test_silences_leading_holders(self):
        class Holder(Babbler):
            def __init__(self, pid, n):
                super().__init__(pid, n)
                self.b = 1 if pid < 5 else 0  # 5 ones vs 1 zero
                self.operative = True
                self.decided = False

        processes = [Holder(pid, 6) for pid in range(6)]
        adversary = VoteBalancingAdversary(seed=1)
        network = SyncNetwork(processes, adversary=adversary, t=2, seed=1)
        result = network.run()
        # margin = 4 -> silence min(margin//2, budget) = 2 ones-holders.
        assert len(result.faulty) == 2
        assert all(pid < 5 for pid in result.faulty)

    def test_does_nothing_when_balanced(self):
        class Holder(Babbler):
            def __init__(self, pid, n):
                super().__init__(pid, n)
                self.b = pid % 2
                self.operative = True
                self.decided = False

        processes = [Holder(pid, 6) for pid in range(6)]
        adversary = VoteBalancingAdversary(seed=2)
        network = SyncNetwork(processes, adversary=adversary, t=2, seed=2)
        result = network.run()
        assert result.faulty == frozenset()


class TestViewHelpers:
    def test_message_index_helpers(self):
        messages = [Message(0, 1, "a"), Message(1, 2, "b"), Message(2, 0, "c")]
        view = NetworkView(
            round_no=0,
            processes=[],
            messages=messages,
            faulty=frozenset(),
            budget_left=0,
            decisions={},
            terminated=frozenset(),
        )
        assert view.message_indices_from({1}) == frozenset({1})
        assert view.message_indices_to({0}) == frozenset({2})
        assert view.message_indices_touching({0}) == frozenset({0, 2})

class TestCapToBudgetBoundaries:
    """Regression: exact-budget edges of the strategies' budget capping."""

    @staticmethod
    def make_view(faulty=(), budget_left=0):
        return NetworkView(
            0, (), (), frozenset(faulty), budget_left, {}, frozenset()
        )

    def test_zero_remaining_budget_chooses_nobody(self):
        from repro.adversary.strategies import _cap_to_budget

        view = self.make_view(faulty=[0, 1], budget_left=0)
        assert _cap_to_budget([2, 3, 4], view) == frozenset()

    def test_already_holding_t_corruptions(self):
        """With the budget fully spent, re-proposed and fresh candidates
        alike must be dropped (the engine would reject either)."""
        from repro.adversary.strategies import _cap_to_budget

        view = self.make_view(faulty=[0, 1, 2], budget_left=0)
        assert _cap_to_budget([0, 1, 2, 3], view) == frozenset()

    def test_exactly_budget_many_candidates_all_chosen(self):
        from repro.adversary.strategies import _cap_to_budget

        view = self.make_view(budget_left=3)
        assert _cap_to_budget([4, 5, 6], view) == frozenset({4, 5, 6})

    def test_faulty_and_duplicate_candidates_free(self):
        """Already-faulty pids and duplicates must not consume budget."""
        from repro.adversary.strategies import _cap_to_budget

        view = self.make_view(faulty=[0], budget_left=2)
        assert _cap_to_budget([0, 1, 1, 0, 2, 3], view) == frozenset({1, 2})

    def test_silence_adversary_at_exact_budget(self):
        """End-to-end: t victims against budget exactly t is legal and
        total — one more victim must be silently dropped, not an error."""
        result, _ = run_babble(6, SilenceAdversary([0, 1, 2]), t=3)
        assert result.faulty == frozenset({0, 1, 2})
        result, _ = run_babble(6, SilenceAdversary([0, 1, 2, 3]), t=3)
        assert len(result.faulty) == 3


class TestSetupMigration:
    """The AdversaryContext lifecycle hook (the legacy 3-arg adapter is gone)."""

    def test_in_repo_strategies_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_babble(6, RandomOmissionAdversary(0.5, seed=1), t=2)
            run_babble(6, VoteBalancingAdversary(seed=1), t=2)

    def test_setup_receives_a_context_not_positional_args(self):
        from repro.runtime import Adversary, AdversaryContext

        class Recorder(Adversary):
            def __init__(self):
                self.saw = None

            def setup(self, ctx):
                assert isinstance(ctx, AdversaryContext)
                self.saw = (ctx.n, ctx.t, len(ctx.processes))

        recorder = Recorder()
        result, _ = run_babble(6, recorder, t=2)
        assert recorder.saw == (6, 2, 6)
        assert result.all_terminated

    def test_context_carries_seeded_rng(self):
        from repro.runtime import Adversary

        draws = []

        class Sampler(Adversary):
            def setup(self, ctx):
                assert ctx.n == 6 and ctx.t == 2
                draws.append(ctx.rng.random())

        run_babble(6, Sampler(), t=2, seed=9)
        run_babble(6, Sampler(), t=2, seed=9)
        assert draws[0] == draws[1]
