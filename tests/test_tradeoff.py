"""Integration tests for ParamOmissions (Algorithm 4, the T<->R trade-off)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import SilenceAdversary, VoteBalancingAdversary
from repro.core import run_tradeoff_consensus, super_partition, sweep_tradeoff
from repro.params import ProtocolParams

PARAMS = ProtocolParams.practical()


def mixed(n):
    return [pid % 2 for pid in range(n)]


class TestSuperPartition:
    def test_single_group(self):
        assert super_partition(6, 1) == (tuple(range(6)),)

    def test_singletons(self):
        assert super_partition(3, 3) == ((0,), (1,), (2,))

    def test_rejects_bad_x(self):
        with pytest.raises(ValueError):
            super_partition(4, 0)
        with pytest.raises(ValueError):
            super_partition(4, 5)

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    def test_partition_invariants(self, n, x):
        if x > n:
            return
        groups = super_partition(n, x)
        flattened = [pid for group in groups for pid in group]
        assert flattened == list(range(n))
        import math

        size = math.ceil(n / x)
        assert all(1 <= len(group) <= size for group in groups)


class TestCorrectness:
    @pytest.mark.parametrize("x", [1, 2, 4, 8, 32])
    def test_agreement_no_adversary(self, x):
        run = run_tradeoff_consensus(mixed(32), x, seed=1)
        assert run.decision in (0, 1)

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        run = run_tradeoff_consensus([bit] * 32, 4, seed=2)
        assert run.decision == bit

    def test_validity_uses_zero_randomness(self):
        run = run_tradeoff_consensus([1] * 32, 4, seed=3)
        assert run.metrics.random_bits == 0

    def test_agreement_under_silence(self):
        n = 64
        run = run_tradeoff_consensus(
            mixed(n), 4, adversary=SilenceAdversary([0]), seed=4
        )
        assert run.decision in (0, 1)

    def test_agreement_under_balancer(self):
        n = 64
        run = run_tradeoff_consensus(
            mixed(n), 4, adversary=VoteBalancingAdversary(seed=5), seed=5
        )
        assert run.decision in (0, 1)

    def test_fault_budget_is_halved(self):
        """Theorem 8 tolerates t < n/60 — half of Algorithm 1's budget."""
        run_small = run_tradeoff_consensus(mixed(124), 4, seed=6)
        run_large = run_tradeoff_consensus(mixed(248), 4, seed=6)
        # Strictly below n/60, at roughly half Algorithm 1's budget.
        for run, n in ((run_small, 124), (run_large, 248)):
            t = run.processes[0].t
            assert t * 60 < n
            assert t <= PARAMS.max_faults(n)
        assert run_large.processes[0].t > run_small.processes[0].t

    def test_small_n_edge_cases(self):
        for n, x in ((2, 1), (2, 2), (5, 3), (7, 7)):
            run = run_tradeoff_consensus(mixed(n), x, seed=7)
            assert run.decision in (0, 1)


class TestTradeoffShape:
    def test_randomness_decreases_with_x(self):
        """Theorem 3's dial: more super-processes => fewer random bits
        (peak at x=1, exactly zero at x=n; the tail may wiggle by a few
        per-epoch coins in tiny groups)."""
        points = sweep_tradeoff(mixed(64), [1, 4, 16, 64], seed=8)
        randomness = [point.random_bits for point in points]
        assert randomness[0] == max(randomness)
        assert randomness[-1] == 0  # singleton phases are deterministic
        assert all(r < randomness[0] for r in randomness[1:])

    def test_rounds_increase_with_x(self):
        points = sweep_tradeoff(mixed(64), [1, 4, 16, 64], seed=8)
        rounds = [point.rounds for point in points]
        assert rounds[0] == min(rounds)
        assert rounds[-1] > 4 * rounds[0]

    def test_decisions_consistent_fields(self):
        points = sweep_tradeoff(mixed(32), [2, 8], seed=9)
        for point in points:
            assert point.decision in (0, 1)
            assert point.bits_sent > 0


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_agreement_random_configurations(n, seed):
    """Random (n, x, seed) configurations always reach agreement."""
    x = max(1, (seed % n) or 1)
    inputs = [(pid * seed + pid) % 2 for pid in range(n)]
    run = run_tradeoff_consensus(inputs, x, seed=seed)
    assert run.decision in (0, 1)


class TestAdversarialSuperProcesses:
    def test_knocked_out_super_process_is_survivable(self):
        """Silencing a majority of the FIRST super-process wrecks its phase;
        Lemma 17's reliable super-process argument says a later phase still
        unifies the system."""
        from repro.adversary import GroupKnockoutAdversary
        from repro.core import super_partition

        n, x = 64, 4
        supers = super_partition(n, x)
        run = run_tradeoff_consensus(
            mixed(n),
            x,
            adversary=GroupKnockoutAdversary(supers[0][:3]),
            seed=31,
        )
        assert run.decision in (0, 1)

    def test_chaos_over_phases(self):
        from repro.adversary import ChaosAdversary

        run = run_tradeoff_consensus(
            mixed(64), 8, adversary=ChaosAdversary(seed=9), seed=32
        )
        assert run.decision in (0, 1)

    def test_validity_survives_super_process_knockout(self):
        from repro.adversary import GroupKnockoutAdversary
        from repro.core import super_partition

        n, x = 64, 4
        supers = super_partition(n, x)
        run = run_tradeoff_consensus(
            [1] * n,
            x,
            adversary=GroupKnockoutAdversary(supers[1][:3]),
            seed=33,
        )
        assert run.decision == 1
