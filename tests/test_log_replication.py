"""Tests for the repeated-consensus log API."""

import pytest

from repro.adversary import SilenceAdversary
from repro.core import ConsensusLog


class TestConstruction:
    def test_defaults(self):
        log = ConsensusLog(n=33)
        assert log.t == 1
        assert log.value_bits == 1

    def test_rejects_bad_value_bits(self):
        with pytest.raises(ValueError):
            ConsensusLog(n=33, value_bits=0)

    def test_rejects_wrong_proposal_count(self):
        log = ConsensusLog(n=33)
        with pytest.raises(ValueError):
            log.append([1] * 5)


class TestBinaryLog:
    def test_slots_accumulate(self):
        log = ConsensusLog(n=33, seed=1)
        for slot in range(3):
            entry = log.append([(pid + slot) % 2 for pid in range(33)])
            assert entry.slot == slot
            assert entry.value in (0, 1)
        assert len(log.entries) == 3
        assert log.totals()["slots"] == 3
        assert log.totals()["rounds"] > 0

    def test_consistency_invariant(self):
        log = ConsensusLog(
            n=33,
            seed=2,
            adversary_factory=lambda slot, n, t: SilenceAdversary([slot]),
        )
        for slot in range(3):
            log.append([pid % 2 for pid in range(33)])
        log.check_consistency()  # must not raise

    def test_replica_view_masks_faulty_slots(self):
        log = ConsensusLog(
            n=33,
            seed=3,
            adversary_factory=lambda slot, n, t: SilenceAdversary([0]),
        )
        log.append([1] * 33)
        view = log.replica_view(0)
        assert view == [None]
        healthy_view = log.replica_view(5)
        assert healthy_view == [1]

    def test_replica_view_validation(self):
        log = ConsensusLog(n=33)
        with pytest.raises(ValueError):
            log.replica_view(99)

    def test_validity_per_slot(self):
        log = ConsensusLog(n=33, seed=4)
        entry0 = log.append([0] * 33)
        entry1 = log.append([1] * 33)
        assert entry0.value == 0
        assert entry1.value == 1
        assert entry0.random_bits == 0 and entry1.random_bits == 0


class TestMultiValuedLog:
    def test_multivalued_slot(self):
        log = ConsensusLog(n=33, value_bits=4, seed=5)
        entry = log.append([7] * 33)
        assert entry.value == 7

    def test_multivalued_strong_validity(self):
        log = ConsensusLog(n=33, value_bits=4, seed=6)
        proposals = [(pid % 3) + 5 for pid in range(33)]
        entry = log.append(proposals)
        assert entry.value in proposals
