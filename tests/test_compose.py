"""Tests for the adversary combinators."""

import pytest

from repro.adversary import (
    RecordingAdversary,
    SequentialAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    ThrottledAdversary,
    UnionAdversary,
)
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess


class Babbler(SyncProcess):
    def __init__(self, pid, n, rounds=8):
        super().__init__(pid, n)
        self.rounds = rounds
        self.heard: list[set[int]] = []

    def program(self, env: ProcessEnv):
        for _ in range(self.rounds):
            env.broadcast(("hi", self.pid))
            inbox = yield
            self.heard.append({message.sender for message in inbox})
        env.decide("done")
        return None


def run(adversary, n=6, t=3, rounds=8, seed=0):
    processes = [Babbler(pid, n, rounds) for pid in range(n)]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    return network.run(), processes


class TestSequential:
    def test_stage_switch(self):
        adversary = SequentialAdversary(
            [SilenceAdversary([0]), SilenceAdversary([1])], boundaries=[4]
        )
        result, processes = run(adversary, t=2)
        # Process 0 corrupted in stage 1; process 1 in stage 2.
        listener = processes[5]
        assert 0 not in listener.heard[1]
        assert 1 in listener.heard[1]
        assert 1 not in listener.heard[5]

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialAdversary([SilenceAdversary([0])], boundaries=[3])
        with pytest.raises(ValueError):
            SequentialAdversary(
                [SilenceAdversary([0])] * 3, boundaries=[5, 5]
            )


class TestUnion:
    def test_merges_corruptions_and_omissions(self):
        adversary = UnionAdversary(
            [SilenceAdversary([0]), SilenceAdversary([1])]
        )
        result, processes = run(adversary, t=2)
        assert result.faulty == frozenset({0, 1})
        listener = processes[5]
        assert listener.heard[1].isdisjoint({0, 1})

    def test_budget_shared(self):
        adversary = UnionAdversary(
            [SilenceAdversary([0, 1]), SilenceAdversary([2, 3])]
        )
        result, _ = run(adversary, t=3)
        assert len(result.faulty) == 3

    def test_dropped_corruption_cannot_omit(self):
        """A strategy whose corruption was budget-dropped must not leave
        illegal omissions behind (the engine would reject the action)."""
        adversary = UnionAdversary(
            [SilenceAdversary([0]), SilenceAdversary([1])]
        )
        result, _ = run(adversary, t=1)
        assert result.faulty == frozenset({0})

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            UnionAdversary([])


class TestThrottled:
    def test_per_round_cap(self):
        inner = SilenceAdversary([0, 1, 2])
        recording = RecordingAdversary(ThrottledAdversary(inner, 1))
        result, _ = run(recording, t=3)
        per_round = [len(action.corrupt) for _, action in recording.actions]
        assert max(per_round) <= 1
        # SilenceAdversary only corrupts in round 0, so the throttle leaves
        # just one victim corrupted in total.
        assert result.faulty == frozenset({0})

    def test_zero_cap_blocks_everything(self):
        adversary = ThrottledAdversary(SilenceAdversary([0, 1]), 0)
        result, _ = run(adversary, t=2)
        assert result.faulty == frozenset()
        assert result.metrics.messages_omitted == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            ThrottledAdversary(SilenceAdversary([0]), -1)


class TestRecording:
    def test_records_every_round(self):
        recording = RecordingAdversary(StaticCrashAdversary({2: [0]}))
        result, _ = run(recording, t=1)
        assert len(recording.actions) == result.metrics.rounds
        assert recording.total_corruptions() == 1
        assert recording.total_omissions() == result.metrics.messages_omitted


class TestThrottledRecordingComposition:
    def test_recorded_totals_match_metrics_through_throttle(self):
        """Recording outside a throttle sees the *capped* schedule, so its
        totals must equal the engine's metrics, not the inner intent."""
        inner = SilenceAdversary([0, 1, 2])
        recording = RecordingAdversary(ThrottledAdversary(inner, 1))
        result, _ = run(recording, t=3)
        assert recording.total_corruptions() == 1
        assert recording.total_corruptions() == len(result.faulty)
        assert recording.total_omissions() == result.metrics.messages_omitted

    def test_scripted_replay_of_recorded_composition(self):
        """A recorded composed schedule replays to the identical result."""
        recording = RecordingAdversary(
            ThrottledAdversary(SilenceAdversary([0, 1, 2]), 1)
        )
        result, _ = run(recording, t=3)
        replayed, _ = run(recording.scripted(), t=3)
        assert replayed.faulty == result.faulty
        assert replayed.metrics.summary() == result.metrics.summary()
        assert replayed.decisions == result.decisions
