"""Unit tests for the spreading-graph construction and basic queries."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import SpreadingGraph, gnp_edges, spreading_graph


class TestSpreadingGraph:
    def test_empty(self):
        graph = SpreadingGraph(3, [])
        assert graph.edge_count == 0
        assert graph.degree(0) == 0

    def test_basic_adjacency(self):
        graph = SpreadingGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.neighbors(1) == frozenset({0, 2})
        assert graph.degree(1) == 2
        assert graph.edge_count == 3

    def test_duplicate_edges_collapsed(self):
        graph = SpreadingGraph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.edge_count == 1

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            SpreadingGraph(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SpreadingGraph(3, [(0, 3)])

    def test_edges_iterates_once(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        graph = SpreadingGraph(3, edges)
        assert sorted(graph.edges()) == sorted(edges)

    def test_internal_edge_count(self):
        graph = SpreadingGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert graph.internal_edge_count({0, 1, 2}) == 2
        assert graph.internal_edge_count(range(4)) == 4

    def test_edges_between(self):
        graph = SpreadingGraph(4, [(0, 2), (0, 3), (1, 2)])
        assert graph.edges_between({0, 1}, {2, 3}) == 3
        assert graph.edges_between({0}, {1}) == 0

    def test_degree_within(self):
        graph = SpreadingGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree_within(0, frozenset({1, 2})) == 2


class TestGnpEdges:
    def test_p_zero_and_one(self):
        rng = random.Random(0)
        assert gnp_edges(10, 0.0, rng) == []
        complete = gnp_edges(5, 1.0, rng)
        assert len(complete) == 10

    def test_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_edges(5, 1.5, random.Random(0))

    def test_edges_valid_and_unique(self):
        rng = random.Random(42)
        edges = gnp_edges(50, 0.3, rng)
        assert len(set(edges)) == len(edges)
        for u, v in edges:
            assert 0 <= u < v < 50

    def test_density_matches_p(self):
        rng = random.Random(7)
        n, p = 200, 0.25
        edges = gnp_edges(n, p, rng)
        expected = p * n * (n - 1) / 2
        assert 0.85 * expected < len(edges) < 1.15 * expected

    @settings(max_examples=25)
    @given(
        st.integers(min_value=2, max_value=40),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=1000),
    )
    def test_always_well_formed(self, n, p, seed):
        edges = gnp_edges(n, p, random.Random(seed))
        for u, v in edges:
            assert 0 <= u < v < n
        assert len(set(edges)) == len(edges)


class TestSpreadingGraphConstruction:
    def test_deterministic_in_inputs(self):
        a = spreading_graph(64, 12, seed=3)
        b = spreading_graph(64, 12, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seed_changes_graph(self):
        a = spreading_graph(64, 12, seed=3)
        b = spreading_graph(64, 12, seed=4)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_degree_concentrates_near_delta(self):
        delta = 24
        graph = spreading_graph(512, delta, seed=0)
        average = 2 * graph.edge_count / graph.n
        assert 0.8 * delta < average < 1.2 * delta

    def test_delta_above_n_gives_complete_graph(self):
        graph = spreading_graph(6, 100, seed=0)
        assert graph.edge_count == 15

    def test_singleton_and_zero_delta(self):
        assert spreading_graph(1, 10).edge_count == 0
        assert spreading_graph(10, 0).edge_count == 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            spreading_graph(0, 5)
        with pytest.raises(ValueError):
            spreading_graph(5, -1)
