"""Unit tests for GroupBitsSpreading (Algorithm 3) via a harness network."""

from repro.adversary import EclipseAdversary, SilenceAdversary
from repro.core.spreading import SpreadingState, group_bits_spreading
from repro.graphs import spreading_graph
from repro.runtime import ProcessEnv, SyncNetwork, SyncProcess


class SpreadingHarness(SyncProcess):
    """Each process owns one slot (its pid) and gossips it on the graph."""

    def __init__(self, pid, n, graph, rounds, degree_threshold, counts=None):
        super().__init__(pid, n)
        self.graph = graph
        self.rounds = rounds
        self.degree_threshold = degree_threshold
        self.counts = counts if counts is not None else (pid + 1, pid)
        self.state = SpreadingState(
            neighbors=tuple(sorted(graph.neighbors(pid)))
        )
        self.result = None

    def program(self, env: ProcessEnv):
        result = yield from group_bits_spreading(
            env,
            self.state,
            group_count=self.n,
            my_group=self.pid,
            my_counts=self.counts,
            rounds=self.rounds,
            degree_threshold=self.degree_threshold,
        )
        self.result = result
        env.decide((result.ones, result.zeros, result.operative))
        return None


def build(n, delta, rounds, threshold, adversary=None, t=0, seed=0):
    graph = spreading_graph(n, delta, seed=seed)
    processes = [
        SpreadingHarness(pid, n, graph, rounds, threshold) for pid in range(n)
    ]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    return graph, processes, network


class TestFaultFreeSpreading:
    def test_all_slots_reach_everyone(self):
        n = 32
        _, processes, network = build(n, delta=8, rounds=10, threshold=2)
        result = network.run()
        expected_ones = sum(pid + 1 for pid in range(n))
        expected_zeros = sum(pid for pid in range(n))
        for pid in range(n):
            assert result.decisions[pid] == (expected_ones, expected_zeros, True)

    def test_rounds_consumed_exactly(self):
        _, _, network = build(16, delta=6, rounds=7, threshold=1)
        result = network.run()
        assert result.rounds == 7

    def test_each_slot_crosses_each_link_once(self):
        """The per-link dedup keeps traffic near n * Delta * sqrt(n) scale:
        total payload entries <= 2 * #edges * #slots."""
        n = 24
        graph, _, network = build(n, delta=6, rounds=12, threshold=1)
        result = network.run()
        entry_budget = 2 * graph.edge_count * n
        # Each entry is a (slot, ones, zeros) triple of >= 6 bits; messages
        # also carry per-round overhead, so compare conservatively.
        assert result.metrics.messages_sent <= 2 * graph.edge_count * 12
        assert result.metrics.bits_sent <= 40 * entry_budget + \
            result.metrics.messages_sent * 16


class TestSpreadingUnderFaults:
    def test_silenced_processes_go_inoperative(self):
        n = 24
        _, processes, network = build(
            n, delta=8, rounds=8, threshold=3,
            adversary=SilenceAdversary([0, 1]), t=2,
        )
        result = network.run()
        assert result.decisions[0][2] is False
        assert result.decisions[1][2] is False

    def test_survivors_get_all_surviving_slots(self):
        """Operative processes learn every slot owned by a process that
        stayed operative (Lemma 6)."""
        n = 24
        _, processes, network = build(
            n, delta=8, rounds=10, threshold=3,
            adversary=SilenceAdversary([0]), t=1,
        )
        result = network.run()
        operative_pids = [
            pid for pid in range(n) if result.decisions[pid][2]
        ]
        # Every operative process must include every operative slot, so its
        # ones-total is at least the sum over operative slots.
        minimum_ones = sum(pid + 1 for pid in operative_pids)
        for pid in operative_pids:
            assert result.decisions[pid][0] >= minimum_ones

    def test_eclipse_makes_nonfaulty_victim_inoperative(self):
        """Silencing a victim's neighbourhood starves it below Delta/3 while
        the victim itself is never corrupted."""
        n = 30
        graph = spreading_graph(n, 6, seed=3)
        victim = 0
        neighbors = sorted(graph.neighbors(victim))
        processes = [
            SpreadingHarness(pid, n, graph, rounds=8, degree_threshold=3)
            for pid in range(n)
        ]
        adversary = EclipseAdversary(victim, neighbors)
        network = SyncNetwork(
            processes, adversary=adversary, t=len(neighbors), seed=3
        )
        result = network.run()
        assert victim not in result.faulty
        assert result.decisions[victim][2] is False

    def test_silent_links_disregarded_persistently(self):
        n = 20
        graph = spreading_graph(n, 6, seed=4)
        processes = [
            SpreadingHarness(pid, n, graph, rounds=6, degree_threshold=1)
            for pid in range(n)
        ]
        adversary = SilenceAdversary([5])
        network = SyncNetwork(processes, adversary=adversary, t=1, seed=4)
        network.run()
        for process in processes:
            if 5 in process.state.neighbors and process.pid != 5:
                assert 5 in process.state.disregarded
