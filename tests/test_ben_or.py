"""Tests for the Bar-Joseph/Ben-Or-style voting baseline."""

import pytest

from repro.adversary import SilenceAdversary, StaticCrashAdversary
from repro.baselines import BenOrVotingProcess, run_ben_or


class TestConstruction:
    def test_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            BenOrVotingProcess(0, 4, 2)

    def test_default_threshold_scales_with_sqrt_n(self):
        # In the sqrt regime (n >= ~20) the default follows sqrt(n).
        small = BenOrVotingProcess(0, 64, 1)
        large = BenOrVotingProcess(0, 1024, 1)
        assert large.threshold == 4 * small.threshold

    def test_decide_condition_reachable_at_tiny_n(self):
        # The (n-2)/4 cap keeps margin > 2*threshold achievable: the
        # maximum margin is n/2.
        for n in (8, 10, 16, 20):
            process = BenOrVotingProcess(0, n, 1)
            assert 2 * process.threshold < n / 2


class TestCorrectness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        result = run_ben_or([bit] * 20, seed=1).result
        assert result.agreement_value() == bit

    def test_strong_majority_decides_fast(self):
        inputs = [1] * 18 + [0] * 2
        result = run_ben_or(inputs, seed=2).result
        assert result.agreement_value() == 1
        assert result.time_to_agreement() <= 6

    @pytest.mark.parametrize("seed", range(4))
    def test_balanced_inputs_agree(self, seed):
        result = run_ben_or([pid % 2 for pid in range(24)], seed=seed).result
        assert result.agreement_value() in (0, 1)

    def test_agreement_under_crashes(self):
        result = run_ben_or(
            [pid % 2 for pid in range(24)],
            t=4,
            adversary=StaticCrashAdversary({1: [0, 1], 3: [2, 3]}),
            seed=5,
        ).result
        assert result.agreement_value() in (0, 1)

    def test_agreement_under_silence(self):
        result = run_ben_or(
            [pid % 2 for pid in range(24)],
            t=4,
            adversary=SilenceAdversary(range(4)),
            seed=6,
        ).result
        assert result.agreement_value() in (0, 1)


class TestCoinThrottling:
    def test_coinless_processes_never_draw(self):
        coin_pids = frozenset({0, 1})
        result = run_ben_or(
            [pid % 2 for pid in range(16)],
            coin_pids=coin_pids,
            seed=7,
        ).result
        for pid, (calls, _bits) in enumerate(result.randomness_per_process):
            if pid not in coin_pids:
                assert calls == 0

    def test_unrestricted_runs_draw_coins_on_balanced_inputs(self):
        result = run_ben_or([pid % 2 for pid in range(16)], seed=8).result
        assert result.metrics.random_calls > 0

    def test_unanimous_runs_draw_no_coins(self):
        result = run_ben_or([1] * 16, seed=9).result
        assert result.metrics.random_calls == 0

    def test_phase_cutoff_terminates(self):
        """Even a fully deterministic balanced system ends at max_phases."""
        result = run_ben_or(
            [pid % 2 for pid in range(10)],
            coin_pids=frozenset(),
            max_phases=5,
            seed=10,
        ).result
        assert result.all_terminated
        assert result.metrics.rounds <= 5 + 3
