"""Unit tests for ProtocolParams: presets, derived quantities, thresholds."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.params import ProtocolParams, default_fault_bound, log2ceil


class TestLog2Ceil:
    def test_small_values(self):
        assert log2ceil(1) == 0
        assert log2ceil(2) == 1
        assert log2ceil(3) == 2
        assert log2ceil(4) == 2
        assert log2ceil(5) == 3
        assert log2ceil(1024) == 10

    def test_fractional(self):
        assert log2ceil(0.5) == 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log2ceil(0)
        with pytest.raises(ValueError):
            log2ceil(-3)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_bit_length(self, n):
        # ceil(log2 n) == (n-1).bit_length() for n >= 1.
        assert log2ceil(n) == (n - 1).bit_length()


class TestDefaultFaultBound:
    def test_paper_fraction(self):
        assert default_fault_bound(31) == 0
        assert default_fault_bound(32) == 1
        assert default_fault_bound(310) == 9

    def test_strictly_below_fraction(self):
        for n in range(1, 500):
            t = default_fault_bound(n)
            if t > 0:
                assert t * 31 < n + 31  # t <= (n-1)/31

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            default_fault_bound(0)


class TestPresets:
    def test_paper_constants(self):
        params = ProtocolParams.paper()
        assert params.delta_factor == 832
        assert params.spread_rounds_factor == 8
        assert params.threshold_den == 30

    def test_practical_keeps_functional_forms(self):
        params = ProtocolParams.practical()
        # Delta = Theta(log n): doubling n in the exponent adds a constant.
        assert params.delta(1 << 10) - params.delta(1 << 8) == 2 * params.delta_factor

    def test_with_overrides(self):
        params = ProtocolParams.practical().with_overrides(epoch_min=7)
        assert params.epoch_min == 7
        assert params.delta_factor == ProtocolParams.practical().delta_factor

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ProtocolParams(one_threshold_num=10, zero_threshold_num=20)

    def test_invalid_scalars_rejected(self):
        with pytest.raises(ValueError):
            ProtocolParams(delta_factor=0)
        with pytest.raises(ValueError):
            ProtocolParams(spread_rounds_min=0)


class TestDerivedQuantities:
    def test_delta_capped_at_complete_graph(self):
        params = ProtocolParams.paper()
        assert params.delta(100) == 99

    def test_delta_zero_for_singleton(self):
        assert ProtocolParams.practical().delta(1) == 0

    def test_operative_threshold_positive(self):
        params = ProtocolParams.practical()
        for n in (2, 16, 256, 4096):
            assert params.operative_degree_threshold(n) >= 1

    def test_spread_rounds_floor(self):
        params = ProtocolParams.practical()
        assert params.spread_rounds(2) >= params.spread_rounds_min

    def test_num_epochs_scales_with_t(self):
        params = ProtocolParams.practical()
        n = 1024
        assert params.num_epochs(n, 33) > params.num_epochs(n, 1)

    def test_num_epochs_floor(self):
        params = ProtocolParams.practical()
        assert params.num_epochs(64, 0) == params.epoch_min

    def test_max_faults_respects_fraction(self):
        params = ProtocolParams.practical()
        for n in (31, 32, 64, 256, 1000):
            t = params.max_faults(n)
            params.validate_fault_budget(n, t)  # must not raise

    def test_validate_rejects_excess(self):
        params = ProtocolParams.practical()
        with pytest.raises(ValueError):
            params.validate_fault_budget(60, 2)
        with pytest.raises(ValueError):
            params.validate_fault_budget(100, -1)


class TestVotingThresholds:
    def test_adopt_one_at_18_30(self):
        params = ProtocolParams.practical()
        assert params.adopt_one(19, 30)
        assert not params.adopt_one(18, 30)  # strict inequality

    def test_adopt_zero_at_15_30(self):
        params = ProtocolParams.practical()
        assert params.adopt_zero(14, 30)
        assert not params.adopt_zero(15, 30)

    def test_decide_band(self):
        params = ProtocolParams.practical()
        assert params.ready_to_decide(28, 30)
        assert params.ready_to_decide(2, 30)
        assert not params.ready_to_decide(27, 30)
        assert not params.ready_to_decide(3, 30)
        assert not params.ready_to_decide(15, 30)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_adopt_rules_exclusive(self, ones):
        """No count can trigger both the adopt-1 and adopt-0 rules."""
        params = ProtocolParams.practical()
        total = 10_000
        assert not (
            params.adopt_one(ones, total) and params.adopt_zero(ones, total)
        )

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    def test_decide_implies_adopt(self, ones, extra):
        """The safety rule only fires inside a deterministic-adopt region
        (line 12 can only accompany line 9 or line 10, never the coin)."""
        params = ProtocolParams.practical()
        total = ones + extra
        if params.ready_to_decide(ones, total):
            assert params.adopt_one(ones, total) or params.adopt_zero(
                ones, total
            )

    def test_gap_covers_inoperative_fraction(self):
        """18/30 - 15/30 = 3/30 = the maximal inoperative fraction (3t/n
        with t < n/30) — the property Figure 3 illustrates."""
        params = ProtocolParams.paper()
        gap = (params.one_threshold_num - params.zero_threshold_num)
        assert gap * params.fault_fraction_denominator >= 3 * params.threshold_den / 10
        assert math.isclose(gap / params.threshold_den, 0.1)
