"""End-to-end smoke tests: the public API works on small systems."""

from repro import ProtocolParams, run_consensus
from repro.adversary import SilenceAdversary


def test_unanimous_one_no_faults():
    run = run_consensus([1] * 36, t=1, seed=1)
    assert run.decision == 1
    assert run.result.all_terminated


def test_unanimous_zero_no_faults():
    run = run_consensus([0] * 36, t=1, seed=2)
    assert run.decision == 0


def test_mixed_inputs_agree():
    inputs = [pid % 2 for pid in range(64)]
    run = run_consensus(inputs, t=2, seed=3)
    assert run.decision in (0, 1)


def test_mixed_inputs_with_silenced_faulty():
    inputs = [pid % 2 for pid in range(64)]
    run = run_consensus(
        inputs, t=2, adversary=SilenceAdversary([0, 1]), seed=4
    )
    assert run.decision in (0, 1)


def test_paper_params_construct():
    params = ProtocolParams.paper()
    assert params.delta(1024) == 1023  # capped: 832*10 > 1023
