"""Setup shim: keeps ``pip install -e .`` working on offline machines
without the ``wheel`` package (legacy develop-mode install)."""

from setuptools import setup

setup()
