"""Why a lot of randomness is needed: the lower-bound machinery, hands-on.

Three demonstrations from Section 4 / Appendix C:

1. **Lemma 12, the coin-flipping game** — an adversary hiding
   ``O(sqrt(k log 1/alpha))`` of k coin flips biases the game's outcome with
   probability ``1 - alpha``; we measure the actual minimal hide budget.

2. **Lemma 13, valency** — exhaustive search over adaptive crash schedules
   shows the 3-process flooding protocol has bivalent initial states (the
   adversary chooses the outcome), yet never violates agreement with
   ``t + 1`` rounds — and provably does with fewer.

3. **Theorem 2, the T x (R + T) trade-off** — against a balancing adversary,
   a voting protocol throttled to k coin-flipping processes stalls when k is
   small; the measured product never drops below the ``t^2 / log n`` shape.

Run:  python examples/lower_bound_game.py
"""

from __future__ import annotations

from repro.lowerbound import (
    FloodMinProtocol,
    classify_all_inputs,
    lemma12_budget,
    measure_tradeoff_product,
    minimal_budget_for_success,
    sweep_lemma12,
    ThresholdCoinGame,
)


def demo_coin_game() -> None:
    print("=== Lemma 12: the one-round coin-flipping game ===")
    print(f"{'k':>6} {'alpha':>6} {'hides needed':>13} {'8*sqrt(k log 1/a)':>18}")
    for point in sweep_lemma12([16, 64, 256, 1024], [0.25, 0.05], trials=800):
        print(
            f"{point.k:>6} {point.alpha:>6} {point.measured_budget:>13} "
            f"{point.lemma12_bound:>18.1f}"
        )
    print("measured budgets grow like sqrt(k), comfortably under the bound\n")


def demo_valency() -> None:
    print("=== Lemma 13: valency of a toy protocol (exhaustive search) ===")
    correct = FloodMinProtocol(n=3, max_rounds=2)
    report = classify_all_inputs(correct, t=1)
    print(f"flood-min, n=3, t=1, rounds=t+1={2}:")
    print(f"  0-valent inputs : {report.univalent(0)}")
    print(f"  1-valent inputs : {report.univalent(1)}")
    print(f"  bivalent inputs : {report.bivalent()}  <- Lemma-13 witnesses")
    print(f"  broken inputs   : {report.broken()}")

    broken = FloodMinProtocol(n=3, max_rounds=1)
    report_broken = classify_all_inputs(broken, t=1)
    print(f"flood-min with only rounds=t={1}:")
    print(f"  broken inputs   : {report_broken.broken()} "
          "(agreement violated — t+1 rounds are necessary)\n")


def demo_product() -> None:
    print("=== Theorem 2: T x (R + T) under the balancing adversary ===")
    n, t = 48, 12
    print(f"voting protocol on n={n}, t={t}, k = processes allowed coins")
    print(f"{'k':>5} {'T':>6} {'R':>7} {'T*(R+T)':>9} {'vs t^2/log n':>13} "
          f"{'agreed':>7}")
    for point in measure_tradeoff_product(n, t, [0, 4, 16, 48], seed=5,
                                          max_phases=250):
        print(
            f"{point.coin_processes:>5} {point.rounds:>6} "
            f"{point.random_calls:>7} {point.product:>9} "
            f"{point.normalized:>13.1f} {str(point.agreement_ok):>7}"
        )
    print("small k -> the adversary pins the vote and the run stalls "
          "(T at the cap);")
    print("full k -> fast termination; the product never beats the bound.\n")


def main() -> None:
    demo_coin_game()
    demo_valency()
    demo_product()

    # Bonus: a single game, end to end.
    game = ThresholdCoinGame(k=100)
    budget = minimal_budget_for_success(game, target=0,
                                        success_probability=0.9, trials=500)
    print(f"biasing a 100-coin game to 0 with 90% success: "
          f"{budget} hides needed (Lemma 12 allows "
          f"{lemma12_budget(100, 0.1):.0f})")


if __name__ == "__main__":
    main()
