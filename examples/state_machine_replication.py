"""State-machine replication on multi-valued consensus — as a service.

The full stack a downstream system would deploy: replicas propose
*commands* (encoded as small integers), each log slot is decided by
multi-valued consensus (bit-prefix agreement over Algorithm 1), and every
replica applies the decided command stream to a local key-value store.
Because consensus guarantees one command per slot at every correct
replica, the stores stay byte-identical no matter what the omission
adversary does within its budget.

The service runs over any registered transport: in-process (the default)
or ``--transport tcp``, where every slot's replicas are hosted by real
OS worker processes speaking length-prefixed frames over localhost TCP
(``repro.transport``).  ``--verify-replay`` additionally records each
slot's execution and replays it *in-process*, asserting the recorded
fingerprint reproduces — the cross-transport determinism check, live.
``--metrics-out`` writes the per-link transport metrics the observer bus
collected (frames, bytes, latency, retries) as JSON.

Command encoding (6 bits): ``op(2) | key(2) | value(2)`` with ops
SET / INC / DEL / NOP over four keys.

Run:  python examples/state_machine_replication.py
      python examples/state_machine_replication.py \
          --transport tcp --processes-per-worker 4 --verify-replay
      python -m repro.cli serve --transport tcp   # same loop via the CLI
"""

from __future__ import annotations

import argparse
import json
import random
from collections.abc import Mapping, Sequence
from typing import Any

from repro.adversary import RandomOmissionAdversary, SilenceAdversary
from repro.harness import execute
from repro.params import ProtocolParams
from repro.transport import LinkMetricsObserver, available_transports

N_REPLICAS = 36
N_SLOTS = 4
VALUE_BITS = 6

OPS = ("SET", "INC", "DEL", "NOP")

ADVERSARIES = ("alternate", "silence", "random", "none")


def encode(op: str, key: int, value: int) -> int:
    return (OPS.index(op) << 4) | (key << 2) | value


def decode(command: int) -> tuple[str, int, int]:
    return OPS[(command >> 4) & 3], (command >> 2) & 3, command & 3


def apply_command(store: dict[int, int], command: int) -> None:
    op, key, value = decode(command)
    if op == "SET":
        store[key] = value
    elif op == "INC":
        store[key] = store.get(key, 0) + value
    elif op == "DEL":
        store.pop(key, None)
    # NOP: nothing.


def _slot_adversary(kind: str, slot: int, n: int, t: int, rng: random.Random):
    if kind == "none":
        return None
    if kind == "silence" or (kind == "alternate" and slot % 2 == 0):
        return SilenceAdversary(rng.sample(range(n), t))
    return RandomOmissionAdversary(0.8, seed=slot)


def run_service(
    n_replicas: int = N_REPLICAS,
    n_slots: int = N_SLOTS,
    *,
    transport: str | None = None,
    transport_options: Mapping[str, Any] | None = None,
    seed: int = 77,
    adversary: str = "alternate",
    verify_replay: bool = False,
    metrics_out: str | None = None,
    quiet: bool = False,
) -> dict[str, Any]:
    """Drive the replicated KV store for ``n_slots`` consensus instances.

    Returns a JSON-safe summary: per-slot decisions and rounds, the final
    store, replay verdicts (when ``verify_replay``), and the aggregated
    per-link transport metrics (when a real transport ran).
    """
    if adversary not in ADVERSARIES:
        raise ValueError(
            f"unknown adversary {adversary!r}; choose from {ADVERSARIES}"
        )
    params = ProtocolParams.practical()
    t = params.max_faults(n_replicas)
    rng = random.Random(seed)
    stores: dict[int, dict[int, int]] = {
        pid: {} for pid in range(n_replicas)
    }
    ever_faulty: set[int] = set()
    link_metrics = LinkMetricsObserver()
    slots: list[dict[str, Any]] = []

    def say(text: str) -> None:
        if not quiet:
            print(text)

    say(
        f"replicated KV store on {n_replicas} replicas "
        f"(t = {t} omission-faulty per slot, "
        f"transport = {transport or 'inprocess'})\n"
    )

    for slot in range(n_slots):
        # Every replica proposes its own pending command.
        # The bit-prefix reduction anchors to the *smallest* matching
        # input, so decisions skew low; proposals avoid the all-zero
        # command to keep the demo informative.
        proposals = [
            encode(
                rng.choice(OPS[:3]),
                rng.randrange(4),
                rng.randrange(1, 4),
            )
            for _ in range(n_replicas)
        ]
        slot_adversary = _slot_adversary(adversary, slot, n_replicas, t, rng)
        # Each log slot is one consensus instance through the unified
        # harness entry point; any registered protocol, adversary,
        # execution model, or transport slots in without touching the
        # replication loop.
        slot_record: dict[str, Any] = {"slot": slot}
        if verify_replay:
            from repro.replay import record, replay

            recorded = record(
                "multivalued",
                proposals,
                value_bits=VALUE_BITS,
                t=t,
                adversary=slot_adversary,
                params=params,
                seed=500 + slot,
                observers=(link_metrics,),
                transport=transport,
                transport_options=transport_options,
                note=f"SMR service slot {slot}",
            )
            if recorded.failed:
                raise AssertionError(
                    f"slot {slot} tripped an invariant: {recorded.failure}"
                )
            assert recorded.run is not None
            result = recorded.run.result
            report = replay(recorded.recipe)
            assert report.matches, (
                f"slot {slot}: in-process replay of the "
                f"{recorded.recipe.transport}-recorded recipe diverged: "
                f"{report.summary()}"
            )
            slot_record["replay"] = report.summary()
        else:
            result = execute(
                "multivalued",
                proposals,
                value_bits=VALUE_BITS,
                t=t,
                adversary=slot_adversary,
                params=params,
                seed=500 + slot,
                observers=(link_metrics,),
                transport=transport,
                transport_options=transport_options,
            ).result
        decided = result.agreement_value()
        ever_faulty |= set(result.faulty)
        op, key, value = decode(decided)
        say(
            f"slot {slot}: {len(set(proposals))} distinct proposals -> "
            f"decided {decided} = {op} k{key} {value}  "
            f"({result.time_to_agreement()} rounds)"
            + ("  [replay verified]" if verify_replay else "")
        )
        assert decided in proposals, "strong validity: decided a real command"
        for pid in range(n_replicas):
            if pid not in result.faulty:
                apply_command(stores[pid], decided)
        slot_record.update(
            decided=decided,
            command=f"{op} k{key} {value}",
            rounds=result.time_to_agreement(),
            faulty=sorted(result.faulty),
        )
        slots.append(slot_record)

    reference = None
    for pid, store in stores.items():
        if pid in ever_faulty:
            continue
        if reference is None:
            reference = store
        assert store == reference, f"store divergence at replica {pid}"
    say(f"\nall always-correct replicas hold the same store: {reference}")

    summary: dict[str, Any] = {
        "replicas": n_replicas,
        "t": t,
        "transport": transport or "inprocess",
        "adversary": adversary,
        "slots": slots,
        "store": {str(k): v for k, v in (reference or {}).items()},
        "links": link_metrics.summary(),
    }
    if metrics_out is not None:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        say(f"wrote {metrics_out}")
    return summary


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="replicated KV-store service on multi-valued consensus"
    )
    parser.add_argument("--replicas", type=int, default=N_REPLICAS)
    parser.add_argument("--slots", type=int, default=N_SLOTS)
    parser.add_argument(
        "--transport", default=None, choices=list(available_transports()),
        help="where replicas execute (default: in-process)",
    )
    parser.add_argument(
        "--processes-per-worker", type=int, default=None, metavar="K",
        help="TCP transport: replicas hosted per OS worker process",
    )
    parser.add_argument("--seed", type=int, default=77)
    parser.add_argument(
        "--adversary", default="alternate", choices=list(ADVERSARIES)
    )
    parser.add_argument(
        "--verify-replay", action="store_true",
        help="record every slot and assert it replays in-process to the "
        "identical fingerprint",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run summary (incl. per-link transport metrics) "
        "as JSON",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    transport_options: dict[str, Any] = {}
    if args.processes_per_worker is not None:
        if args.transport != "tcp":
            raise SystemExit("--processes-per-worker requires --transport tcp")
        transport_options["processes_per_worker"] = args.processes_per_worker
    run_service(
        args.replicas,
        args.slots,
        transport=args.transport,
        transport_options=transport_options or None,
        seed=args.seed,
        adversary=args.adversary,
        verify_replay=args.verify_replay,
        metrics_out=args.metrics_out,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
