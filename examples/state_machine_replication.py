"""State-machine replication on multi-valued consensus.

The full stack a downstream system would deploy: replicas propose
*commands* (encoded as small integers), each log slot is decided by
multi-valued consensus (bit-prefix agreement over Algorithm 1), and every
replica applies the decided command stream to a local key-value store.
Because consensus guarantees one command per slot at every correct
replica, the stores stay byte-identical no matter what the omission
adversary does within its budget.

Command encoding (6 bits): ``op(2) | key(2) | value(2)`` with ops
SET / INC / DEL / NOP over four keys.

Run:  python examples/state_machine_replication.py
"""

from __future__ import annotations

import random

from repro.adversary import RandomOmissionAdversary, SilenceAdversary
from repro.harness import execute
from repro.params import ProtocolParams

N_REPLICAS = 36
N_SLOTS = 4
VALUE_BITS = 6

OPS = ("SET", "INC", "DEL", "NOP")


def encode(op: str, key: int, value: int) -> int:
    return (OPS.index(op) << 4) | (key << 2) | value


def decode(command: int) -> tuple[str, int, int]:
    return OPS[(command >> 4) & 3], (command >> 2) & 3, command & 3


def apply_command(store: dict[int, int], command: int) -> None:
    op, key, value = decode(command)
    if op == "SET":
        store[key] = value
    elif op == "INC":
        store[key] = store.get(key, 0) + value
    elif op == "DEL":
        store.pop(key, None)
    # NOP: nothing.


def main() -> None:
    params = ProtocolParams.practical()
    t = params.max_faults(N_REPLICAS)
    rng = random.Random(77)
    stores: dict[int, dict[int, int]] = {
        pid: {} for pid in range(N_REPLICAS)
    }
    ever_faulty: set[int] = set()

    print(f"replicated KV store on {N_REPLICAS} replicas "
          f"(t = {t} omission-faulty per slot)\n")

    for slot in range(N_SLOTS):
        # Every replica proposes its own pending command.
        # The bit-prefix reduction anchors to the *smallest* matching
        # input, so decisions skew low; proposals avoid the all-zero
        # command to keep the demo informative.
        proposals = [
            encode(
                rng.choice(OPS[:3]),
                rng.randrange(4),
                rng.randrange(1, 4),
            )
            for _ in range(N_REPLICAS)
        ]
        adversary = (
            SilenceAdversary(rng.sample(range(N_REPLICAS), t))
            if slot % 2 == 0
            else RandomOmissionAdversary(0.8, seed=slot)
        )
        # Each log slot is one consensus instance through the unified
        # harness entry point; any registered protocol, adversary, or
        # execution model slots in without touching the replication loop.
        result = execute(
            "multivalued",
            proposals,
            value_bits=VALUE_BITS,
            t=t,
            adversary=adversary,
            params=params,
            seed=500 + slot,
        ).result
        decided = result.agreement_value()
        ever_faulty |= set(result.faulty)
        op, key, value = decode(decided)
        print(
            f"slot {slot}: {len(set(proposals))} distinct proposals -> "
            f"decided {decided} = {op} k{key} {value}  "
            f"({result.time_to_agreement()} rounds)"
        )
        assert decided in proposals, "strong validity: decided a real command"
        for pid in range(N_REPLICAS):
            if pid not in result.faulty:
                apply_command(stores[pid], decided)

    reference = None
    for pid, store in stores.items():
        if pid in ever_faulty:
            continue
        if reference is None:
            reference = store
        assert store == reference, f"store divergence at replica {pid}"
    print(f"\nall always-correct replicas hold the same store: {reference}")


if __name__ == "__main__":
    main()
