"""Build-your-own protocol: the extension workflow, end to end.

Implements a small consensus protocol from scratch on the substrate — a
quorum-confirmation protocol in the spirit of the omission-fault folklore —
and immediately puts it through the repository's conformance battery
(agreement / validity / termination across the adversary gallery), then
compares its cost against Algorithm 1 on the same workload.

The protocol ("ConfirmedMajority", t+2 phases of 2 rounds):

* each phase: broadcast your bit, adopt the majority of received bits,
  then broadcast a CONFIRM carrying the adopted bit; a process seeing
  ``n - t`` CONFIRMs for one value locks it (never changes again);
* after the phases, broadcast the locked/current bit once more and decide
  the majority of what you receive.

It is *not* one of the paper's algorithms — that is the point: the example
shows what it takes to stand up a new protocol and certify it against the
model.  (It needs n > 4t like phase-king-style quorum arguments; the
conformance run below uses n = 36, t = 1.)

Run:  python examples/custom_protocol.py
"""

from __future__ import annotations

from repro.analysis import check_consensus_protocol
from repro.core import run_consensus
from repro.params import ProtocolParams
from repro.runtime import ProcessEnv, Program, SyncNetwork, SyncProcess


class ConfirmedMajority(SyncProcess):
    """A from-scratch quorum-confirmation consensus for omission faults."""

    def __init__(self, pid: int, n: int, input_bit: int, t: int) -> None:
        super().__init__(pid, n)
        self.b = input_bit
        self.t = t
        self.locked = False

    def program(self, env: ProcessEnv) -> Program:
        n, t = self.n, self.t
        for _ in range(t + 2):
            # Round A: exchange bits, adopt the majority.
            env.broadcast(("bit", self.b))
            inbox = yield
            ones = self.b
            total = 1
            for message in inbox:
                payload = message.payload
                if isinstance(payload, tuple) and payload[0] == "bit":
                    total += 1
                    ones += payload[1]
            if not self.locked:
                self.b = 1 if 2 * ones > total else 0

            # Round B: confirmations; a near-unanimous echo locks the bit.
            env.broadcast(("confirm", self.b))
            inbox = yield
            confirms = {0: 0, 1: 0}
            confirms[self.b] += 1
            for message in inbox:
                payload = message.payload
                if isinstance(payload, tuple) and payload[0] == "confirm":
                    confirms[payload[1]] += 1
            for value in (0, 1):
                if confirms[value] >= n - t:
                    self.b = value
                    self.locked = True

        env.broadcast(("final", self.b))
        inbox = yield
        ones = self.b
        total = 1
        for message in inbox:
            payload = message.payload
            if isinstance(payload, tuple) and payload[0] == "final":
                total += 1
                ones += payload[1]
        env.decide(1 if 2 * ones > total else 0)
        return None


def factory(inputs, t):
    n = len(inputs)
    return [ConfirmedMajority(pid, n, inputs[pid], t) for pid in range(n)]


def main() -> None:
    n, t = 36, 1

    print("running the conformance battery "
          "(4 input scenarios x 5 adversaries x 2 seeds)...")
    report = check_consensus_protocol(factory, n=n, t=t, seeds=(0, 1))
    print(report.summary())
    if not report.passed:
        print("\nthe battery caught a defect — fix before trusting it!")
        return

    # Cost comparison against the paper's algorithm on one workload.
    # This example deliberately drives the raw engine; registered
    # protocols should go through repro.harness.execute() instead.
    inputs = [pid % 2 for pid in range(n)]
    network = SyncNetwork(factory(inputs, t), t=t, seed=3)  # repro-lint: disable=REP008
    custom = network.run()
    custom.agreement_value()
    paper = run_consensus(inputs, t=t, params=ProtocolParams.practical(),
                          seed=3)

    print(f"\ncost on n={n}, balanced inputs, no adversary:")
    print(f"  ConfirmedMajority : {custom.time_to_agreement():>4} rounds, "
          f"{custom.metrics.bits_sent:>9,} bits, "
          f"{custom.metrics.random_bits} random bits")
    print(f"  Algorithm 1       : "
          f"{paper.result.time_to_agreement():>4} rounds, "
          f"{paper.metrics.bits_sent:>9,} bits, "
          f"{paper.metrics.random_bits} random bits")
    print("\nConfirmedMajority runs Theta(t) phases of full n^2 exchanges — "
          "fine at t=1, hopeless at t = Theta(n); Algorithm 1's epochs are "
          "what buy the sqrt(n) scaling.")


if __name__ == "__main__":
    main()
