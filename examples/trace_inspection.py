"""Execution forensics: tracing one consensus run round by round.

Attaches a :class:`TraceRecorder` to a consensus execution under a staged
adversary (silence early, adaptive vote-balancing late) and reconstructs the
story of the run: when the adversary struck, how traffic pulsed through the
epoch phases, how the operative population shrank, and when each process
decided.

Run:  python examples/trace_inspection.py
"""

from __future__ import annotations

from repro.adversary import (
    SequentialAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from repro.core import build_processes, epoch_rounds
from repro.params import ProtocolParams
from repro.runtime import SyncNetwork, TraceRecorder

N = 96


def main() -> None:
    params = ProtocolParams.practical()
    t = params.max_faults(N)
    adversary = SequentialAdversary(
        [SilenceAdversary([0]), VoteBalancingAdversary(seed=1)],
        boundaries=[20],
    )

    processes = build_processes(
        [pid % 2 for pid in range(N)], t=t, params=params
    )
    recorder = TraceRecorder(sample_every=1)
    # This example deliberately drives the raw engine to show
    # TraceRecorder.attach(); protocols registered with the harness
    # should pass observers to repro.harness.execute() instead.
    network = recorder.attach(
        SyncNetwork(processes, adversary=adversary, t=t, seed=5)  # repro-lint: disable=REP008
    )
    result = network.run()
    decision = result.agreement_value()

    print(f"n={N}, t={t}: decided {decision} after "
          f"{result.time_to_agreement()} rounds\n")

    print("adversary timeline:")
    for pid, round_no in sorted(recorder.corruption_rounds().items()):
        print(f"  round {round_no:>3}: corrupted process {pid}")
    print(f"  total omissions: {recorder.total_omissions()}\n")

    per_epoch = epoch_rounds(N, params)
    print(f"traffic pulse (epoch = {per_epoch} rounds: group-relay phase, "
          "then the denser spreading gossip):")
    profile = recorder.traffic_profile()
    for start in range(0, min(len(profile), 3 * per_epoch), per_epoch):
        window = [messages for _, messages in profile[start:start + per_epoch]]
        bar_scale = max(window) or 1
        print(f"  epoch starting round {start}:")
        for offset, messages in enumerate(window):
            bar = "#" * round(30 * messages / bar_scale)
            print(f"    r{start + offset:>3} {messages:>6} {bar}")
        print()

    print("operative population over time:")
    series = recorder.operative_series()
    for round_no, count in series[:: max(1, len(series) // 10)]:
        print(f"  round {round_no:>3}: {count} operative")

    decided = recorder.decision_rounds()
    if decided:
        first = min(decided.values())
        print(f"\nfirst decisions observed in round {first}; "
              f"{len(result.decision_rounds)} processes decided in total")


if __name__ == "__main__":
    main()
