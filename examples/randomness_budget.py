"""Trading time for randomness: the Theorem-3 interpolation in action.

Scenario from the paper's Question 2: your replicas draw randomness from a
slow hardware entropy source (or a pseudo-random generator you do not trust
against a full-information adversary), so random bits are a budgeted
resource.  ``ParamOmissions`` (Algorithm 4) with ``x`` super-processes lets
you dial consumption down from ``~ n^{3/2}`` bits (x = 1, fastest) to zero
(x = n, fully deterministic round-robin) while communication stays ~n^2 and
the product ROUNDS x RANDOMNESS stays on the ~n^2 invariant curve.

Run:  python examples/randomness_budget.py
"""

from __future__ import annotations

from repro.core import sweep_tradeoff
from repro.analysis.theory import theorem3_invariant

N = 64


def main() -> None:
    inputs = [pid % 2 for pid in range(N)]
    xs = [1, 2, 4, 8, 16, 32, 64]
    points = sweep_tradeoff(inputs, xs, seed=11)

    print(f"Algorithm 4 on n = {N} processes: the time<->randomness dial\n")
    print(f"{'x':>4} {'rounds T':>9} {'rand bits R':>12} {'comm bits':>12} "
          f"{'T*max(R,1)':>12} {'decision':>9}")
    for point in points:
        invariant = theorem3_invariant(point.rounds, max(point.random_bits, 1))
        print(
            f"{point.x:>4} {point.rounds:>9} {point.random_bits:>12} "
            f"{point.bits_sent:>12} {invariant:>12.0f} {point.decision:>9}"
        )

    least_random = min(points, key=lambda p: p.random_bits)
    fastest = min(points, key=lambda p: p.rounds)
    print(
        f"\nfastest: x={fastest.x} ({fastest.rounds} rounds, "
        f"{fastest.random_bits} random bits)"
    )
    print(
        f"most randomness-frugal: x={least_random.x} "
        f"({least_random.rounds} rounds, {least_random.random_bits} random bits)"
    )
    print("\nShape check (Theorem 3): random bits fall monotonically in x "
          "while rounds rise — you pay for determinism with time, never "
          "with communication blow-up.")


if __name__ == "__main__":
    main()
