"""Quickstart: run the paper's main algorithm once and read its metrics.

Spins up a 128-process synchronous system where an adaptive adversary
corrupts the full fault budget and silences it, then runs
``OptimalOmissionsConsensus`` (Algorithm 1) and prints the paper's three
complexity measures for the execution.

Run:  python examples/quickstart.py
"""

from repro import ProtocolParams, run_consensus
from repro.adversary import SilenceAdversary


def main() -> None:
    n = 128
    params = ProtocolParams.practical()
    t = params.max_faults(n)

    # The hardest inputs: a perfectly balanced bit assignment.
    inputs = [pid % 2 for pid in range(n)]

    run = run_consensus(
        inputs,
        t=t,
        adversary=SilenceAdversary(range(t)),
        params=params,
        seed=42,
    )

    metrics = run.metrics
    print(f"system size          : n = {n}, fault budget t = {t}")
    print(f"decision             : {run.decision}")
    print(f"time (rounds)        : {run.result.time_to_agreement()}")
    print(f"communication bits   : {metrics.bits_sent:,}")
    print(f"messages             : {metrics.messages_sent:,}")
    print(f"random bits          : {metrics.random_bits}")
    print(f"corrupted processes  : {sorted(run.result.faulty)}")
    print(f"fallback triggered   : {run.used_fallback}")

    # Validity: a unanimous system must decide its common input and, per the
    # paper's validity argument, spends zero randomness doing so.
    unanimous = run_consensus([1] * n, t=t, params=params, seed=42)
    print(f"\nunanimous inputs 1   : decision={unanimous.decision}, "
          f"random bits={unanimous.metrics.random_bits}")


if __name__ == "__main__":
    main()
