"""Distributed-ledger scenario: a sequence of consensus slots under attack.

The paper motivates omission-tolerant consensus with distributed ledgers and
replicated databases: every block/slot is one consensus instance, and a
network-level attacker that can drop messages at compromised replicas maps
exactly onto the adaptive omission adversary.

This example commits a ledger of N_SLOTS blocks: in each slot every replica
proposes a bit ("include the contested transaction or not" — replicas
disagree because they saw different mempools), a fresh adaptive adversary
silences a new set of replicas, and Algorithm 1 must keep all correct
replicas' ledgers identical.  The example checks ledger consistency and
reports per-slot costs.

Run:  python examples/ledger_replication.py
"""

from __future__ import annotations

import random

from repro import ProtocolParams
from repro.adversary import SilenceAdversary, VoteBalancingAdversary
from repro.harness import execute

N_REPLICAS = 96
N_SLOTS = 5


def main() -> None:
    params = ProtocolParams.practical()
    t = params.max_faults(N_REPLICAS)
    proposal_rng = random.Random(2024)

    ledgers: dict[int, list[int]] = {pid: [] for pid in range(N_REPLICAS)}
    total_rounds = 0
    total_bits = 0

    print(f"replicating a ledger on {N_REPLICAS} replicas, t = {t} faulty\n")
    print(f"{'slot':>4} {'proposals 1s':>13} {'adversary':>10} "
          f"{'decision':>8} {'rounds':>7} {'Mbits':>7}")

    for slot in range(N_SLOTS):
        # Replicas see different mempools: proposals are skewed randomly.
        lean = proposal_rng.choice([0.25, 0.5, 0.75])
        inputs = [
            1 if proposal_rng.random() < lean else 0
            for _ in range(N_REPLICAS)
        ]
        # Alternate attacks: total silence of fresh victims vs adaptive
        # vote balancing.
        if slot % 2 == 0:
            victims = proposal_rng.sample(range(N_REPLICAS), t)
            adversary = SilenceAdversary(victims)
            label = "silence"
        else:
            adversary = VoteBalancingAdversary(seed=slot)
            label = "balance"

        # Every slot goes through the unified harness; the ledger runs on
        # the partial-synchrony round model, whose default regime (wait
        # for the slowest copy) keeps counters byte-identical to lockstep
        # while modelling per-link latency.
        run = execute(
            "algorithm1",
            inputs,
            t=t,
            adversary=adversary,
            params=params,
            seed=100 + slot,
            model="partial-synchrony",
        )
        decision = run.decision
        faulty = run.result.faulty
        for pid in range(N_REPLICAS):
            if pid not in faulty:
                ledgers[pid].append(decision)

        rounds = run.result.time_to_agreement()
        bits = run.metrics.bits_sent
        total_rounds += rounds
        total_bits += bits
        print(
            f"{slot:>4} {sum(inputs):>13} {label:>10} {decision:>8} "
            f"{rounds:>7} {bits / 1e6:>7.2f}"
        )

    # All correct replicas participated in every slot here, so each correct
    # ledger must be identical.
    reference = None
    for pid, ledger in ledgers.items():
        if len(ledger) == N_SLOTS:
            if reference is None:
                reference = ledger
            assert ledger == reference, f"ledger divergence at replica {pid}"
    print(f"\nledger ({N_SLOTS} blocks) consistent across correct replicas: "
          f"{reference}")
    print(f"total: {total_rounds} rounds, {total_bits / 1e6:.1f} Mbits")


if __name__ == "__main__":
    main()
