"""Valency explorer: the lower-bound proof's Pr(H, A) made concrete.

The Theorem-2 proof classifies algorithm states by the probabilities an
adaptive adversary can force (`Pr(H, A)` = probability of consensus on 1
under strategy A).  For toy protocols these are exactly computable; this
example walks through:

1. deterministic valency (Lemma-13 witnesses, agreement-breaking horizons)
   for flooding min-consensus;
2. exact probability bands `(inf_A Pr, sup_A Pr)` for a randomized
   coin-voting protocol, showing how one corruptible process widens the
   band from a point to nearly [0, 1] — the "adversary controls the coin"
   phenomenon the paper amortizes over rounds.

Run:  python examples/valency_explorer.py
"""

from __future__ import annotations

import itertools

from repro.lowerbound import (
    CoinVotingProtocol,
    FloodMinProtocol,
    classify_all_inputs,
    classify_state,
    probability_band,
)


def deterministic_part() -> None:
    print("=== deterministic valency: flood-min on 3 processes ===")
    for rounds in (1, 2):
        protocol = FloodMinProtocol(n=3, max_rounds=rounds)
        report = classify_all_inputs(protocol, t=1)
        print(f"rounds={rounds} (t+1 = 2 needed):")
        print(f"  0-valent : {report.univalent(0)}")
        print(f"  1-valent : {report.univalent(1)}")
        print(f"  bivalent : {report.bivalent()}")
        print(f"  broken   : {report.broken()}")
    print()


def probabilistic_part() -> None:
    print("=== probabilistic valency: coin-voting on 3 processes ===")
    protocol = CoinVotingProtocol(n=3, max_rounds=3)
    print(f"{'inputs':>10} {'t':>2} {'inf Pr[1]':>10} {'sup Pr[1]':>10} "
          f"{'classification':>15}")
    for t in (0, 1):
        for inputs in itertools.product((0, 1), repeat=3):
            result = classify_state(protocol, inputs, t, epsilon=0.2)
            print(
                f"{str(inputs):>10} {t:>2} "
                f"{result.inf_probability:>10.3f} "
                f"{result.sup_probability:>10.3f} "
                f"{result.classification:>15}"
            )
        print()
    print("reading: with t=0 the band is a single point (no adversarial")
    print("choice); one corruptible process stretches mixed inputs to")
    print("nearly [0, 1] — the adversary owns the outcome until the")
    print("protocol spends enough randomness to escape (Theorem 2).")


def band_growth_part() -> None:
    print("\n=== band width vs horizon (inputs (0,1,1), t=1) ===")
    for rounds in (1, 2, 3, 4):
        protocol = CoinVotingProtocol(n=3, max_rounds=rounds)
        inf_p, sup_p = probability_band(protocol, (0, 1, 1), t=1)
        width = sup_p - inf_p
        bar = "#" * round(40 * width)
        print(f"rounds={rounds}: [{inf_p:.3f}, {sup_p:.3f}] width "
              f"{width:.3f} {bar}")
    print("\nmore rounds let the protocol re-try unification, but one")
    print("crash-budget keeps the band wide: time alone cannot buy")
    print("certainty against an adaptive adversary.")


def main() -> None:
    deterministic_part()
    probabilistic_part()
    band_growth_part()


if __name__ == "__main__":
    main()
