"""Adversary gallery: how different adaptive strategies stress Algorithm 1.

Runs the same 256-process consensus against every implemented adversary and
compares cost and the operative/inoperative dynamics the paper's analysis
revolves around:

* faulty processes can *stay operative* (random light omissions rarely knock
  anyone below the Delta/3 threshold);
* non-faulty processes can be *driven inoperative* (group knockout corrupts
  a majority of one sqrt(n)-group, starving the survivors' relay quorum);
* the vote balancer maximizes epochs by silencing the leading bit's holders.

Run:  python examples/adversary_gallery.py
"""

from __future__ import annotations

from repro import ProtocolParams, run_consensus
from repro.adversary import (
    GroupKnockoutAdversary,
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)
from repro.core import cached_sqrt_partition

N = 256


def main() -> None:
    params = ProtocolParams.practical()
    t = params.max_faults(N)
    inputs = [pid % 2 for pid in range(N)]
    partition = cached_sqrt_partition(N)
    first_group = partition.group_members(0)

    gallery = [
        ("none", None),
        ("silence-all-budget", SilenceAdversary(range(t))),
        ("staggered-crashes", StaticCrashAdversary(
            {round_no: [round_no] for round_no in range(0, 4 * t, 4)}
        )),
        ("random-omissions", RandomOmissionAdversary(0.6, seed=1)),
        ("group-knockout", GroupKnockoutAdversary(first_group)),
        ("vote-balancer", VoteBalancingAdversary(seed=3)),
    ]

    print(f"Algorithm 1 on n = {N}, t = {t}, balanced inputs\n")
    print(f"{'adversary':>20} {'decision':>8} {'rounds':>7} {'Mbits':>7} "
          f"{'rbits':>6} {'faulty':>7} {'inoper.':>8} {'fallback':>9}")

    for name, adversary in gallery:
        run = run_consensus(
            inputs, t=t, adversary=adversary, params=params, seed=9
        )
        inoperative = sum(
            1 for process in run.processes if not process.operative
        )
        non_faulty_inoperative = sum(
            1
            for process in run.processes
            if not process.operative and process.pid not in run.result.faulty
        )
        print(
            f"{name:>20} {run.decision:>8} "
            f"{run.result.time_to_agreement():>7} "
            f"{run.metrics.bits_sent / 1e6:>7.2f} "
            f"{run.metrics.random_bits:>6} "
            f"{len(run.result.faulty):>7} "
            f"{inoperative:>4}/{non_faulty_inoperative:<3} "
            f"{str(run.used_fallback):>9}"
        )

    print("\ninoper. column = total inoperative / non-faulty inoperative:")
    print("the partition is NOT the faulty/non-faulty partition — exactly "
          "the paper's point.")


if __name__ == "__main__":
    main()
