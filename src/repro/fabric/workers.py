"""Worker-process entry point for the fabric dispatcher.

Kept in its own module so both ``fork`` and ``spawn`` start methods can
import it by qualified name; the task function itself must likewise be a
module-level callable (the campaign runner passes
``repro.analysis.campaign._run_cell_task``).
"""

from __future__ import annotations

import traceback
from collections.abc import Callable
from typing import Any

__all__ = ["worker_main"]


def worker_main(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    worker_fn: Callable[[Any], Any],
) -> None:
    """Pull ``(index, payload)`` tasks until the ``None`` sentinel.

    Results ship back as ``(worker_id, index, ok, result)``; an exception
    is caught, stringified with its traceback, and sent with ``ok=False``
    so the parent can tear the pool down and re-raise.
    """
    while True:
        task = task_queue.get()
        if task is None:
            break
        index, payload = task
        try:
            result = worker_fn(payload)
        except BaseException:
            result_queue.put(
                (worker_id, index, False, traceback.format_exc())
            )
            break
        result_queue.put((worker_id, index, True, result))
