"""Sharded, work-stealing dispatch of sweep cells over worker processes.

Two layers, separable so the scheduling policy is unit-testable without
spawning a single process:

* :class:`StealScheduler` — pure bookkeeping.  The grid is sharded across
  workers up front by LPT (longest-processing-time-first greedy) over a
  per-cell cost estimate, giving each worker a contiguous claim on roughly
  equal *work*, not equal cell counts.  A worker that drains its own shard
  steals from the tail of the most-loaded victim — the tail holds the
  victim's cheapest remaining cells, so a straggler grinding through a
  large-``n`` columnar cell keeps its expensive head while idle workers
  shave its backlog.
* :class:`FabricDispatcher` — the process fabric.  One task queue per
  worker plus a shared result queue; the parent holds the scheduler and
  answers each completion by handing that worker its next cell (own shard
  first, then a steal).  Workers never see the schedule, so stealing needs
  no shared memory and the policy stays in one process.

Cells are pure functions of ``(spec, coordinates)``, so any schedule —
serial, sharded, or stolen — produces identical records; the dispatcher
only changes wall-clock shape.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any

__all__ = ["CellTask", "FabricDispatcher", "StealScheduler", "estimated_cost"]


def estimated_cost(n: int) -> float:
    """Relative cost of one cell: message volume dominates, so ~``n**2``."""
    return float(n) * float(n)


@dataclass(frozen=True)
class CellTask:
    """One schedulable unit: an opaque payload plus its cost estimate."""

    index: int  # position in the submission order (stable identity)
    payload: Any
    cost: float = 1.0


@dataclass
class StealScheduler:
    """Deterministic shard-and-steal policy over a fixed task set."""

    tasks: Sequence[CellTask]
    workers: int
    shards: list[deque[CellTask]] = field(init=False)
    loads: list[float] = field(init=False)
    steals: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self.shards = [deque() for _ in range(self.workers)]
        self.loads = [0.0] * self.workers
        # LPT greedy: place each task (heaviest first) on the currently
        # least-loaded shard; ties break on worker index so the schedule
        # is a pure function of (tasks, workers).
        ordered = sorted(
            self.tasks, key=lambda task: (-task.cost, task.index)
        )
        for task in ordered:
            target = min(
                range(self.workers), key=lambda w: (self.loads[w], w)
            )
            self.shards[target].append(task)
            self.loads[target] += task.cost

    def next_for(self, worker: int) -> CellTask | None:
        """The next task for ``worker``: own shard head, else a steal."""
        own = self.shards[worker]
        if own:
            task = own.popleft()
            self.loads[worker] -= task.cost
            return task
        victim = max(
            range(self.workers), key=lambda w: (self.loads[w], -w)
        )
        if not self.shards[victim]:
            return None
        task = self.shards[victim].pop()  # cheapest end of the victim
        self.loads[victim] -= task.cost
        self.steals += 1
        return task

    def remaining(self) -> int:
        return sum(len(shard) for shard in self.shards)


def _start_method() -> str:
    """Prefer ``fork`` (cheap, inherits sys.path) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


_SENTINEL = None


class FabricDispatcher:
    """Run tasks across worker processes under a work-stealing schedule.

    ``worker_fn`` must be a module-level (picklable) callable taking one
    task payload and returning one result; exceptions inside a worker are
    shipped back and re-raised in the parent after the pool is torn down.
    """

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("need at least one job")
        self.jobs = jobs
        self.start_method = (
            start_method if start_method is not None else _start_method()
        )
        self.steals = 0

    def run(
        self,
        tasks: Sequence[CellTask],
        worker_fn: Callable[[Any], Any],
        on_result: Callable[[CellTask, Any], None],
    ) -> None:
        """Execute every task; ``on_result`` fires in completion order."""
        if not tasks:
            return
        jobs = min(self.jobs, len(tasks))
        scheduler = StealScheduler(tasks, workers=jobs)
        by_index = {task.index: task for task in tasks}
        context = multiprocessing.get_context(self.start_method)
        from .workers import worker_main

        task_queues = [context.Queue() for _ in range(jobs)]
        results: Any = context.Queue()
        processes = [
            context.Process(
                target=worker_main,
                args=(wid, task_queues[wid], results, worker_fn),
                daemon=True,
            )
            for wid in range(jobs)
        ]
        failure: tuple[int, str] | None = None
        try:
            for process in processes:
                process.start()
            for wid in range(jobs):
                task = scheduler.next_for(wid)
                task_queues[wid].put(
                    _SENTINEL if task is None else (task.index, task.payload)
                )
            done = 0
            total = len(tasks)
            while done < total:
                wid, index, ok, result = results.get()
                done += 1
                if not ok:
                    failure = (index, result)
                    break
                task = scheduler.next_for(wid)
                task_queues[wid].put(
                    _SENTINEL if task is None else (task.index, task.payload)
                )
                on_result(by_index[index], result)
        finally:
            for queue in task_queues:
                try:
                    queue.put(_SENTINEL)
                except (OSError, ValueError):
                    pass
            for process in processes:
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join()
            self.steals = scheduler.steals
        if failure is not None:
            index, message = failure
            raise RuntimeError(
                f"fabric worker failed on task {index}: {message}"
            )
