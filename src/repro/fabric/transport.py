"""Directory transport: multi-host sweep coordination through the cache.

The fabric's cross-host story deliberately has no server.  Hosts share one
cache root (any shared filesystem — NFS, a synced directory, a bind
mount); the content-addressed store is the result channel, and this module
adds the *claim* channel: a lease directory where each host atomically
claims the cells it is about to compute, so N hosts pointed at the same
spec partition the grid among themselves without talking to each other.

Protocol per cell (all operations are single-file atomic):

1. ``claim`` — ``O_CREAT | O_EXCL`` create of ``claims/<digest>.json``
   naming the owner.  Exactly one host wins; losers treat the cell as
   someone else's and poll the store for its result instead.
2. ``release`` — unlink after the result is published to the store.
3. expiry — a claim older than ``lease_seconds`` (by file mtime) marks a
   dead host; ``reclaim`` atomically replaces it, and the reclaiming host
   recomputes the cell locally.  Idempotent results make double-compute
   after a badly-timed expiry harmless: both hosts publish identical
   entries.

:func:`await_cells` is the read side used by ``run_campaign``: poll the
store for cells other hosts claimed, returning early cells as they land
and handing back abandoned cells (stale or vanished claims with no
result) for local recomputation.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable
from typing import Any

from .digest import CellId
from .store import CampaignCache

__all__ = ["DirectoryClaims", "await_cells"]


@dataclass
class DirectoryClaims:
    """Atomic per-cell leases under ``root`` (one file per claimed cell)."""

    root: Path
    owner: str | None = None
    lease_seconds: float = 3600.0
    claimed: set[str] = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.owner is None:
            self.owner = f"{socket.gethostname()}:{os.getpid()}"

    def _path(self, cell: CellId) -> Path:
        return self.root / f"{cell.digest}.json"

    def _lease_payload(self) -> str:
        return json.dumps({"owner": self.owner}, sort_keys=True)

    # ------------------------------------------------------------------
    def claim(self, cell: CellId) -> bool:
        """Try to claim ``cell``; True iff this host now owns it."""
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self._path(cell), os.O_WRONLY | os.O_CREAT | os.O_EXCL
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, self._lease_payload().encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        self.claimed.add(cell.digest)
        return True

    def release(self, cell: CellId) -> None:
        """Drop this host's claim (no-op when already gone)."""
        try:
            self._path(cell).unlink()
        except FileNotFoundError:
            pass
        self.claimed.discard(cell.digest)

    def owner_of(self, cell: CellId) -> str | None:
        """The claim's recorded owner, or ``None`` when unclaimed."""
        try:
            data = json.loads(
                self._path(cell).read_text(encoding="utf-8") or "{}"
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return data.get("owner")

    def is_claimed(self, cell: CellId) -> bool:
        return self._path(cell).exists()

    def is_stale(self, cell: CellId) -> bool:
        """Whether the claim's lease has expired (file mtime too old)."""
        try:
            age = time.time() - self._path(cell).stat().st_mtime
        except FileNotFoundError:
            return False
        return age > self.lease_seconds

    def reclaim(self, cell: CellId) -> bool:
        """Take over a stale claim atomically; True iff we now own it."""
        if not self.is_stale(cell):
            return False
        path = self._path(cell)
        tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
        tmp.write_text(self._lease_payload(), encoding="utf-8")
        os.replace(tmp, path)
        self.claimed.add(cell.digest)
        return True

    def release_all(self) -> None:
        """Best-effort cleanup of every claim this instance took."""
        for digest in sorted(self.claimed):
            try:
                (self.root / f"{digest}.json").unlink()
            except FileNotFoundError:
                pass
        self.claimed.clear()


def await_cells(
    cache: CampaignCache,
    cells: Iterable[tuple[Any, CellId]],
    claims: DirectoryClaims,
    poll_seconds: float = 0.2,
    timeout_seconds: float | None = None,
) -> tuple[dict[Any, dict[str, Any]], list[tuple[Any, CellId]]]:
    """Wait for other hosts' cells; return ``(found, abandoned)``.

    ``cells`` pairs an opaque handle (the grid coordinates) with the cell
    identity.  A cell is *found* when its entry lands in the store, and
    *abandoned* when its claim goes stale (dead host) or vanishes without
    a result — the caller recomputes those locally.  ``timeout_seconds``
    bounds the total wait; on timeout everything still missing is treated
    as abandoned.
    """
    waiting = list(cells)
    found: dict[Any, dict[str, Any]] = {}
    abandoned: list[tuple[Any, CellId]] = []
    deadline = (
        time.monotonic() + timeout_seconds
        if timeout_seconds is not None
        else None
    )
    while waiting:
        still: list[tuple[Any, CellId]] = []
        for handle, cell in waiting:
            # contains() first: polling must not skew the cache's hit/miss
            # accounting, which reports *local* lookup behaviour.
            record = cache.get(cell) if cache.contains(cell) else None
            if record is not None:
                found[handle] = record
            elif claims.is_stale(cell) or not claims.is_claimed(cell):
                abandoned.append((handle, cell))
            else:
                still.append((handle, cell))
        waiting = still
        if not waiting:
            break
        if deadline is not None and time.monotonic() >= deadline:
            abandoned.extend(waiting)
            break
        time.sleep(poll_seconds)
    return found, abandoned
