"""CampaignCache: an on-disk content-addressed store for sweep cells.

Layout (everything under one root directory, safe to share over NFS)::

    <root>/
      objects/<digest[:2]>/<digest>.json    one entry per cell identity
      objects/<digest[:2]>/<digest>.json.quarantine   corrupt entries, kept
      claims/                               multi-host leases (transport.py)

An entry is a schema-tagged JSON object carrying the full cell identity
(:meth:`CellId.payload`), the finished campaign record, and — for
invariant-violating cells — the embedded
:class:`~repro.replay.ExecutionRecipe` payload, so a failure reproduces
from the cache alone.

Durability discipline mirrors the campaign journal's: writes land in a
temp file in the destination directory, are flushed + fsynced, then
published with an atomic ``os.replace`` — concurrent writers racing on the
same cell each publish a complete entry and the last one wins; a reader
never observes a torn file.  Reads verify the entry end-to-end (JSON
parses, kind matches, the *stored identity re-digests to the filename*);
anything that fails verification is moved to a ``.quarantine`` sidecar and
reported as a miss, so a corrupted or truncated entry costs one recompute,
never a wrong answer.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator
from typing import Any

from ..runtime.serialization import SCHEMA_VERSION
from .digest import CellId

__all__ = ["CacheStats", "CampaignCache", "ENTRY_KIND"]

ENTRY_KIND = "campaign-cell"

#: Process-local counter making temp names unique without wall-clock or
#: entropy reads (the pid disambiguates across processes).
_TMP_COUNTER = itertools.count()


@dataclass
class CacheStats:
    """Hit/miss/put accounting for one :class:`CampaignCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalid: int = 0  # entries quarantined after failing verification

    def as_dict(self) -> dict[str, int | float]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalid": self.invalid,
            "hit_rate": (self.hits / lookups) if lookups else 1.0,
        }


@dataclass
class CampaignCache:
    """Content-addressed cell store rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, cell: CellId) -> Path:
        digest = cell.digest
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def get(self, cell: CellId) -> dict[str, Any] | None:
        """The cached record for ``cell``, or ``None`` on a (forced) miss."""
        entry = self._load_verified(cell)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["record"]

    def get_recipe(self, cell: CellId) -> dict[str, Any] | None:
        """The embedded failure-recipe payload, when the cell failed."""
        entry = self._load_verified(cell, count=False)
        if entry is None:
            return None
        return entry.get("recipe")

    def contains(self, cell: CellId) -> bool:
        """Whether a *verified* entry exists (no stats side effects)."""
        return self._load_verified(cell, count=False) is not None

    def _load_verified(
        self, cell: CellId, count: bool = True
    ) -> dict[str, Any] | None:
        path = self.entry_path(cell)
        try:
            data = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            return None
        entry = self._verify(path, data, expected=cell.digest, count=count)
        return entry

    def _verify(
        self, path: Path, data: str, expected: str | None, count: bool
    ) -> dict[str, Any] | None:
        """Parse + verify one entry; quarantine and return None on failure."""
        try:
            entry = json.loads(data)
            if entry.get("kind") != ENTRY_KIND:
                raise ValueError(f"not a cell entry: kind={entry.get('kind')!r}")
            stored = CellId.from_payload(entry["cell"])
            if expected is not None and stored.digest != expected:
                raise ValueError(
                    f"identity re-digests to {stored.digest[:12]}, "
                    f"file claims {expected[:12]}"
                )
            if not isinstance(entry.get("record"), dict):
                raise ValueError("entry carries no record")
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            if count:
                self.stats.invalid += 1
            return None
        return entry

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry aside (kept for forensics, seen as a miss)."""
        try:
            os.replace(path, path.with_name(path.name + ".quarantine"))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def put(
        self,
        cell: CellId,
        record: dict[str, Any],
        recipe: dict[str, Any] | None = None,
    ) -> Path:
        """Publish ``record`` (and optionally a failure recipe) for ``cell``.

        Atomic: a temp file in the destination directory is fully written,
        flushed, and fsynced before an ``os.replace`` makes it visible, so
        racing writers each publish a complete entry (last writer wins —
        cells are pure functions of their identity, so the entries agree).
        """
        path = self.entry_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": ENTRY_KIND,
            "cell": cell.payload(),
            "digest": cell.digest,
            "record": record,
        }
        if recipe is not None:
            entry["recipe"] = recipe
        tmp = path.with_name(
            f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}-{path.name}"
        )
        data = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[dict[str, Any]]:
        """Yield every verified entry in the store (digest order)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            try:
                data = path.read_text(encoding="utf-8")
            except OSError:
                continue
            entry = self._verify(path, data, expected=path.stem, count=False)
            if entry is not None:
                yield entry

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())
