"""Query layer: serve sweep cells from the cache without executing any.

``query(spec, cache)`` resolves every cell of a campaign grid against the
content-addressed store and reports hits and misses — the primitive behind
``repro.cli campaign query`` / ``campaign status``, warm report
generation, and the conformance suite's cached-cell fast path.  Nothing
here can trigger a recomputation; a miss is just reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .digest import CellId
from .store import CampaignCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..analysis.campaign import CampaignSpec

__all__ = ["CellStatus", "QueryResult", "open_cache", "query"]


def open_cache(cache: CampaignCache | str | Path) -> CampaignCache:
    """Coerce a path-or-cache argument into a :class:`CampaignCache`."""
    if isinstance(cache, CampaignCache):
        return cache
    return CampaignCache(Path(cache))


@dataclass(frozen=True)
class CellStatus:
    """One grid cell's standing against the cache."""

    coordinates: tuple[int, str, int]  # (n, adversary, seed)
    cell: CellId
    record: dict[str, Any] | None

    @property
    def hit(self) -> bool:
        return self.record is not None


@dataclass
class QueryResult:
    """Every cell of one spec resolved against one cache, in grid order."""

    spec_name: str
    cells: list[CellStatus] = field(default_factory=list)

    @property
    def hits(self) -> list[CellStatus]:
        return [status for status in self.cells if status.hit]

    @property
    def misses(self) -> list[CellStatus]:
        return [status for status in self.cells if not status.hit]

    @property
    def hit_rate(self) -> float:
        return (len(self.hits) / len(self.cells)) if self.cells else 1.0

    def records(self) -> list[dict[str, Any]]:
        """The hit records, in grid order (for summaries and reports)."""
        return [
            status.record for status in self.cells if status.record is not None
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "cells": len(self.cells),
            "hits": len(self.hits),
            "misses": len(self.misses),
            "hit_rate": self.hit_rate,
            "missing": [str(status.cell) for status in self.misses],
        }


def query(
    spec: CampaignSpec, cache: CampaignCache | str | Path
) -> QueryResult:
    """Resolve every cell of ``spec`` against ``cache`` (read-only)."""
    store = open_cache(cache)
    result = QueryResult(spec_name=spec.name)
    for coordinates in spec.grid():
        cell = spec.cell_id(*coordinates)
        result.cells.append(
            CellStatus(
                coordinates=coordinates, cell=cell, record=store.get(cell)
            )
        )
    return result
