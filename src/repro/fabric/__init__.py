"""repro.fabric — the sharded, cached sweep fabric.

The campaign runner's execution substrate, grown from a single-box pool
into three cooperating pieces:

* a **content-addressed store** (:class:`CampaignCache`): every finished
  cell lives under the SHA-256 digest of its full identity
  (:class:`CellId`), so identical cells are never recomputed across
  campaigns, CLI invocations, or hosts;
* a **work-stealing dispatcher** (:class:`FabricDispatcher` /
  :class:`StealScheduler`): the grid is sharded across worker processes by
  estimated cost, and idle workers steal from stragglers' tails;
* a **directory transport** (:class:`DirectoryClaims` /
  :func:`await_cells`): hosts sharing a cache root partition a grid among
  themselves through atomic claim files — no server, no configuration.

``query`` is the read-only front: resolve a spec against a cache and serve
hits instantly, reporting misses without executing anything.

See docs/fabric.md for the CAS layout, the digest recipe, the stealing
model, and the multi-host setup.
"""

from .digest import CellId, canonical_json
from .dispatch import (
    CellTask,
    FabricDispatcher,
    StealScheduler,
    estimated_cost,
)
from .query import CellStatus, QueryResult, open_cache, query
from .store import CacheStats, CampaignCache
from .transport import DirectoryClaims, await_cells

__all__ = [
    "CellId",
    "CellStatus",
    "CellTask",
    "CacheStats",
    "CampaignCache",
    "DirectoryClaims",
    "FabricDispatcher",
    "QueryResult",
    "StealScheduler",
    "await_cells",
    "canonical_json",
    "estimated_cost",
    "open_cache",
    "query",
]
