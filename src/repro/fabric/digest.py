"""CellId: the canonical, content-addressed identity of one sweep cell.

Every campaign cell — one protocol execution at one grid coordinate — is a
pure function of its identity: ``(protocol, n, t, adversary, seed,
options, execution model, model options, engine capability, transport,
transport options)``.  A
:class:`CellId` freezes exactly those components and derives a canonical
SHA-256 digest from them, which is the key under which the cell's record
lives in the content-addressed store (:mod:`repro.fabric.store`), the
identity journal resume matches on, and the grouping handle reports use.

The digest recipe is deliberately boring so it can be recomputed anywhere:

1. mappings (``options``, ``model_options``, ``transport_options``) are
   canonicalized to compact sorted-key JSON (the frozen dataclass stores
   the *string*, keeping the id hashable);
2. the eleven identity components are assembled into one JSON object
   with sorted keys and no whitespace;
3. the digest is the lowercase hex SHA-256 of that object's UTF-8 bytes.

Two processes — or two hosts — that agree on the component values agree on
the digest, which is what makes cache entries portable across campaigns,
CLI invocations, and machines.

This module is the *only* place cell identity is derived; campaign and
fabric code everywhere else must go through :class:`CellId` (enforced by
lint rule REP009).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from functools import cached_property
from collections.abc import Mapping
from typing import Any

__all__ = ["CellId", "canonical_json"]


def canonical_json(value: Mapping[str, Any] | None) -> str:
    """Canonical compact JSON for an options mapping (``None`` → ``{}``)."""
    return json.dumps(dict(value or {}), sort_keys=True, separators=(",", ":"))


def _current_engine() -> str:
    from ..harness import capability_fingerprint

    return capability_fingerprint()


@dataclass(frozen=True)
class CellId:
    """Frozen identity of one sweep cell; hashable, orderable, digestible.

    ``options`` and ``model_options`` are stored in their canonical JSON
    string form (see :func:`canonical_json`); use :meth:`make` to build an
    id from mappings.  ``model is None`` means the default execution model
    — kept distinct from an explicit ``"lockstep"`` so records written by
    legacy (model-unpinned) specs keep their exact resume identity.
    ``engine`` is the harness capability fingerprint
    (:func:`repro.harness.capability_fingerprint`); ``None`` resolves to
    the running engine's.  ``transport is None`` means the default
    in-process transport — kept distinct from an explicit
    ``"inprocess"`` for the same resume-identity reason as ``model``.
    """

    protocol: str
    n: int
    t: int | None
    adversary: str
    seed: int
    options: str = "{}"
    model: str | None = None
    model_options: str = "{}"
    engine: str | None = None
    transport: str | None = None
    transport_options: str = "{}"

    def __post_init__(self) -> None:
        if self.engine is None:
            object.__setattr__(self, "engine", _current_engine())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        protocol: str,
        n: int,
        t: int | None,
        adversary: str,
        seed: int,
        options: Mapping[str, Any] | None = None,
        model: str | None = None,
        model_options: Mapping[str, Any] | None = None,
        engine: str | None = None,
        transport: str | None = None,
        transport_options: Mapping[str, Any] | None = None,
    ) -> CellId:
        """Build an id, canonicalizing the option mappings."""
        return cls(
            protocol=protocol,
            n=n,
            t=t,
            adversary=adversary,
            seed=seed,
            options=canonical_json(options),
            model=model,
            model_options=canonical_json(model_options),
            engine=engine,
            transport=transport,
            transport_options=canonical_json(transport_options),
        )

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> CellId | None:
        """The identity under which a finished record satisfies a cell.

        Tolerant of historical journal shapes: records written before
        options were stored count as empty options; records written before
        the model axis count as the default model; records written before
        the engine fingerprint count as the *current* engine (they were
        readable only by engines that would have produced them); records
        written before the transport axis count as the default
        (in-process) transport.  Returns ``None`` when the mapping is not
        a cell record at all.
        """
        try:
            return cls.make(
                protocol=record["protocol"],
                n=record["n"],
                t=record.get("t"),
                adversary=record["adversary"],
                seed=record["seed"],
                options=record.get("options") or {},
                model=record.get("model"),
                model_options=record.get("model_options") or {},
                engine=record.get("engine"),
                transport=record.get("transport"),
                transport_options=record.get("transport_options") or {},
            )
        except (KeyError, TypeError):
            return None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> CellId:
        """Rebuild an id from :meth:`payload` (e.g. a CAS entry)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    # ------------------------------------------------------------------
    # canonical forms
    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """JSON-safe mapping of every identity component."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "adversary": self.adversary,
            "seed": self.seed,
            "options": self.options,
            "model": self.model,
            "model_options": self.model_options,
            "engine": self.engine,
            "transport": self.transport,
            "transport_options": self.transport_options,
        }

    @cached_property
    def digest(self) -> str:
        """Lowercase hex SHA-256 of the canonical identity JSON."""
        canon = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    @property
    def short(self) -> str:
        """12-hex-character digest prefix for logs and filenames."""
        return self.digest[:12]

    def series_key(self) -> tuple[str, int, str]:
        """Per-(protocol, n, adversary) grouping handle for summaries.

        The seed axis is what summaries aggregate over, so the series key
        drops it (and everything downstream of it) while staying derived
        from the one identity type.
        """
        return (self.protocol, self.n, self.adversary)

    def __str__(self) -> str:
        model = self.model if self.model is not None else "default"
        return (
            f"{self.protocol}:n{self.n}:{self.adversary}:s{self.seed}"
            f":{model}:{self.short}"
        )

    def __lt__(self, other: object) -> bool:
        # A total order (by digest) so mixed None/str model fields never
        # break ``sorted`` over heterogeneous cell populations.
        if not isinstance(other, CellId):
            return NotImplemented
        return self.digest < other.digest
