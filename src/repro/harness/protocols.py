"""Registration of every runnable protocol with the harness registry.

Importing this module (done lazily by the registry accessors) populates the
registry with the paper's algorithms and all baselines.  Each ``build``
reproduces the exact process construction its ``run_*`` wrapper used before
the harness existed, so dispatching through :func:`repro.harness.execute`
is behaviour-identical to calling the wrapper.
"""

from __future__ import annotations

from typing import Any

from ..baselines.ben_or import BenOrVotingProcess
from ..baselines.dolev_strong import DolevStrongProcess
from ..baselines.doubling_gossip import DoublingCollector
from ..baselines.phase_king import PhaseKingProcess
from ..baselines.reliable_broadcast import TRBProcess
from ..core.consensus import build_processes
from ..core.early_stopping import EarlyStoppingConsensus
from ..core.multivalued import MultiValuedConsensus
from ..core.tradeoff import ParamOmissions
from ..params import ProtocolParams
from .registry import ExecutionRequest, ProtocolSpec, register_protocol


def _baseline_budget(n: int, params: ProtocolParams) -> int:
    """Default campaign fault budget for the t < n/2-style baselines."""
    return max(1, n // 8)


def _phase_king_budget(n: int, params: ProtocolParams) -> int:
    """Phase-king needs n > 4t, so the campaign default is capped harder."""
    return max(1, min(n // 8, (n - 1) // 4))


# ---------------------------------------------------------------------------
# The paper's algorithms.
def _build_algorithm1(request: ExecutionRequest):
    params = request.params
    t = request.t if request.t is not None else params.max_faults(request.n)
    processes = build_processes(
        request.inputs,
        t=t,
        params=params,
        graph_seed=request.graph_seed,
        num_epochs=request.option("num_epochs"),
    )
    return processes, t


register_protocol(
    ProtocolSpec(
        name="algorithm1",
        summary="Algorithm 1: O(sqrt(n) log^2 n)-round randomized consensus",
        build=_build_algorithm1,
        default_max_rounds=200_000,
    )
)


def _tradeoff_x(request: ExecutionRequest) -> int:
    return int(request.option("x", max(2, request.n // 16)))


def _build_tradeoff(request: ExecutionRequest):
    processes = [
        ParamOmissions(
            pid,
            request.n,
            request.inputs[pid],
            x=_tradeoff_x(request),
            t=request.t,
            params=request.params,
            graph_seed=request.graph_seed,
        )
        for pid in range(request.n)
    ]
    # Theorem 8 halves the fault tolerance; the processes know their budget.
    return processes, processes[0].t


def _tradeoff_extras(run: Any, request: ExecutionRequest) -> dict[str, Any]:
    return {"x": _tradeoff_x(request)}


register_protocol(
    ProtocolSpec(
        name="tradeoff",
        summary="Algorithm 4: time vs randomness trade-off (x super-processes)",
        build=_build_tradeoff,
        default_max_rounds=500_000,
        record_extras=_tradeoff_extras,
    )
)


def _build_early_stopping(request: ExecutionRequest):
    params = request.params
    t = request.t if request.t is not None else params.max_faults(request.n)
    processes = [
        EarlyStoppingConsensus(
            pid,
            request.n,
            request.inputs[pid],
            t=t,
            params=params,
            graph_seed=request.graph_seed,
            num_epochs=request.option("num_epochs"),
        )
        for pid in range(request.n)
    ]
    return processes, t


def _early_stopping_extras(
    run: Any, request: ExecutionRequest
) -> dict[str, Any]:
    return {
        "exit_epochs": sorted(
            {process.exited_epoch for process in run.processes}
        )
    }


register_protocol(
    ProtocolSpec(
        name="early-stopping",
        summary="Algorithm 1 with per-epoch READY polls and majority exit",
        build=_build_early_stopping,
        default_max_rounds=200_000,
        record_extras=_early_stopping_extras,
    )
)


def _build_multivalued(request: ExecutionRequest):
    params = request.params
    t = request.t if request.t is not None else params.max_faults(request.n)
    value_bits = int(request.option("value_bits", 1))
    processes = [
        MultiValuedConsensus(
            pid,
            request.n,
            request.inputs[pid],
            value_bits,
            t=t,
            params=params,
            graph_seed=request.graph_seed,
        )
        for pid in range(request.n)
    ]
    return processes, t


def _multivalued_extras(run: Any, request: ExecutionRequest) -> dict[str, Any]:
    return {"value_bits": int(request.option("value_bits", 1))}


register_protocol(
    ProtocolSpec(
        name="multivalued",
        summary="Multi-valued consensus via bit-prefix agreement on Algorithm 1",
        build=_build_multivalued,
        default_max_rounds=500_000,
        record_extras=_multivalued_extras,
    )
)


# ---------------------------------------------------------------------------
# Baselines.
def _build_ben_or(request: ExecutionRequest):
    # run_ben_or's own default is t=0 (passed explicitly by the wrapper);
    # a None budget means "campaign default", matching default_t below.
    t = (
        request.t
        if request.t is not None
        else _baseline_budget(request.n, request.params)
    )
    coin_pids = request.option("coin_pids")
    processes = [
        BenOrVotingProcess(
            pid,
            request.n,
            request.inputs[pid],
            threshold=request.option("threshold"),
            max_phases=request.option("max_phases"),
            coin_pids=frozenset(coin_pids) if coin_pids is not None else None,
        )
        for pid in range(request.n)
    ]
    return processes, t


register_protocol(
    ProtocolSpec(
        name="ben-or",
        summary="Bar-Joseph/Ben-Or randomized biased-majority voting baseline",
        build=_build_ben_or,
        default_t=_baseline_budget,
    )
)


def _build_phase_king(request: ExecutionRequest):
    t = (
        request.t
        if request.t is not None
        else _phase_king_budget(request.n, request.params)
    )
    processes = [
        PhaseKingProcess(pid, request.n, request.inputs[pid], t)
        for pid in range(request.n)
    ]
    return processes, t


register_protocol(
    ProtocolSpec(
        name="phase-king",
        summary="Berman-Garay-Perry deterministic phase-king baseline (n > 4t)",
        build=_build_phase_king,
        default_t=_phase_king_budget,
    )
)


def _build_dolev_strong(request: ExecutionRequest):
    t = (
        request.t
        if request.t is not None
        else _baseline_budget(request.n, request.params)
    )
    processes = [
        DolevStrongProcess(pid, request.n, request.inputs[pid], t)
        for pid in range(request.n)
    ]
    return processes, t


register_protocol(
    ProtocolSpec(
        name="dolev-strong",
        summary="Dolev-Strong chain-relay deterministic baseline (t+1 rounds)",
        build=_build_dolev_strong,
        default_t=_baseline_budget,
    )
)


def _build_trb(request: ExecutionRequest):
    t = (
        request.t
        if request.t is not None
        else _baseline_budget(request.n, request.params)
    )
    sender = int(request.option("sender", 0))
    value = request.option("value", 1)
    processes = [
        TRBProcess(
            pid,
            request.n,
            sender,
            t,
            value=value if pid == sender else None,
        )
        for pid in range(request.n)
    ]
    return processes, t


def _trb_extras(run: Any, request: ExecutionRequest) -> dict[str, Any]:
    return {
        "sender": int(request.option("sender", 0)),
        "delivery_rounds": sorted(
            {
                process.delivery_round
                for process in run.processes
                if process.delivery_round is not None
            }
        ),
    }


register_protocol(
    ProtocolSpec(
        name="trb",
        summary="Early-stopping terminating reliable broadcast (Rosu [34])",
        build=_build_trb,
        default_t=_baseline_budget,
        record_extras=_trb_extras,
        uses_inputs=False,
    )
)


def _build_collectors(request: ExecutionRequest):
    t = request.t if request.t is not None else 0
    quorum = int(
        request.option("quorum", max(1, (request.n - 1) // 2))
    )
    processes = [
        DoublingCollector(pid, request.n, quorum) for pid in range(request.n)
    ]
    return processes, t


register_protocol(
    ProtocolSpec(
        name="collectors",
        summary="Section-B.3 doubling collectors (amortization experiment)",
        build=_build_collectors,
        # Per-process decisions differ by design, so the campaign's
        # agreement check would reject it; run it through execute() instead.
        sweepable=False,
        uses_inputs=False,
    )
)
