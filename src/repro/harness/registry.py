"""Protocol registry and the unified ``execute`` entry point.

Every runnable protocol in the repository registers a
:class:`ProtocolSpec`: a name, a process factory, a default fault budget,
and a result adapter.  The public ``run_*`` helpers in ``repro.core`` and
``repro.baselines`` are thin wrappers over :func:`execute`, and the
campaign runner, the CLI, and the analysis drivers dispatch through the
registry — so registering a protocol makes it sweepable everywhere at
once.

A spec's ``build`` receives an :class:`ExecutionRequest` (the normalized
inputs) and returns ``(processes, t)`` — the process list and the network
fault budget, which lets protocols like Algorithm 4 derive their own
budget.  ``execute`` then drives one :class:`SyncNetwork` with the
request's adversary and observers and wraps the outcome in a
:class:`repro.core.consensus.ConsensusRun`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from ..params import ProtocolParams
from ..runtime import (
    Adversary,
    RoundModel,
    RoundObserver,
    SyncNetwork,
    SyncProcess,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..core.consensus import ConsensusRun
    from ..transport import Transport


@dataclass(frozen=True)
class ExecutionRequest:
    """Normalized inputs of one :func:`execute` call, handed to the spec.

    ``options`` carries protocol-specific extras (``x``, ``num_epochs``,
    ``value_bits``, ``sender``, ``quorum``, ...); specs read what they
    understand and ignore the rest.
    """

    n: int
    inputs: Sequence[int] | None
    t: int | None
    params: ProtocolParams
    seed: int
    graph_seed: int
    adversary: Adversary | None
    max_rounds: int | None
    options: Mapping[str, Any] = field(default_factory=dict)
    #: Execution-model axis: a registered model name, a ready-made
    #: :class:`RoundModel`, or ``None`` for the environment default.
    model: RoundModel | str | None = None
    model_options: Mapping[str, Any] | None = None
    #: Transport axis: a registered transport name, a ready-made
    #: :class:`~repro.transport.Transport`, or ``None`` for in-process.
    transport: Transport | str | None = None
    transport_options: Mapping[str, Any] | None = None

    def option(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)


#: A process factory: request -> (processes, network fault budget).
Builder = Callable[[ExecutionRequest], tuple[list[SyncProcess], int]]


@dataclass(frozen=True)
class ProtocolSpec:
    """One runnable protocol, as the harness sees it.

    Attributes
    ----------
    name:
        Registry key (``"algorithm1"``, ``"ben-or"``, ...).
    summary:
        One-line description for ``--help`` output and docs.
    build:
        Factory turning an :class:`ExecutionRequest` into
        ``(processes, t)``.
    default_max_rounds:
        Engine round cap when the caller does not override it.
    default_t:
        Default fault budget for (n, params) — used by sweep drivers to
        construct adversaries before the processes exist, and recorded in
        campaign cells.  It may differ from the budget ``build`` returns
        (Algorithm 4 halves its tolerance internally).
    record_extras:
        Optional ``(run, request) -> dict`` merged into campaign records
        (e.g. early stopping's ``exit_epochs``).
    sweepable:
        Whether the protocol fits the campaign grid (binary inputs, a
        uniform decision the agreement check accepts).  Non-sweepable
        protocols (the doubling collectors) still run through ``execute``.
    uses_inputs:
        Whether ``build`` consumes a per-process input vector; protocols
        like TRB derive everything from ``n`` and options.
    """

    name: str
    summary: str
    build: Builder
    default_max_rounds: int = 100_000
    default_t: Callable[[int, ProtocolParams], int] | None = None
    record_extras: Callable[[Any, ExecutionRequest], dict[str, Any]] | None = (
        None
    )
    sweepable: bool = True
    uses_inputs: bool = True

    def campaign_t(self, n: int, params: ProtocolParams) -> int:
        """The fault budget a campaign cell uses for adversary construction."""
        if self.default_t is not None:
            return self.default_t(n, params)
        return params.max_faults(n)


#: Version of the campaign cell record *content*: what ``_run_cell``
#: writes for a given cell identity.  Bump whenever a record gains,
#: loses, or re-derives a field, so cached cells computed by an older
#: engine are never served as if the current engine produced them.
#: v3: records carry the transport axis (``transport`` /
#: ``transport_options``) when a campaign pins one, and cell identity
#: (:class:`repro.fabric.CellId`) digests over it.
CELL_RECORD_VERSION = 3


def capability_fingerprint() -> str:
    """Stable engine-capability token, part of every cell's cache identity.

    Combines the campaign record-content version with the serialization
    schema version.  Deliberately *excludes* axes certified byte-identical
    across implementations — the multicast/per-copy send paths and the
    object/columnar delivery backends (see docs/model.md) — so a host
    without numpy reuses cells a columnar host computed, and vice versa.
    What it does capture is "would this engine, handed the same identity,
    write the same record bytes": any change to that answer must bump
    :data:`CELL_RECORD_VERSION`.
    """
    from ..runtime.serialization import SCHEMA_VERSION

    return f"cells-v{CELL_RECORD_VERSION}+schema-v{SCHEMA_VERSION}"


_REGISTRY: dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Add a spec to the registry; ``replace=True`` overrides an entry."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"protocol {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtin_protocols() -> None:
    """Populate the registry with the repository's protocols (idempotent)."""
    from . import protocols  # noqa: F401  (imported for its side effects)


def protocol_spec(name: str) -> ProtocolSpec:
    """Look up a registered protocol; raises ``ValueError`` with choices."""
    _ensure_builtin_protocols()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from "
            f"{available_protocols()}"
        ) from None


def available_protocols(sweepable: bool | None = None) -> tuple[str, ...]:
    """Registered protocol names, in registration order.

    ``sweepable=True`` restricts to protocols the campaign grid accepts.
    """
    _ensure_builtin_protocols()
    return tuple(
        name
        for name, spec in _REGISTRY.items()
        if sweepable is None or spec.sweepable == sweepable
    )


def execute(
    protocol: str | ProtocolSpec,
    inputs: Sequence[int] | None = None,
    *,
    n: int | None = None,
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    max_rounds: int | None = None,
    observers: Sequence[RoundObserver] = (),
    options: Mapping[str, Any] | None = None,
    multicast: bool = True,
    columnar: bool | None = None,
    model: RoundModel | str | None = None,
    model_options: Mapping[str, Any] | None = None,
    transport: Transport | str | None = None,
    transport_options: Mapping[str, Any] | None = None,
    **extra_options: Any,
) -> ConsensusRun:
    """Run one protocol end-to-end through the unified harness.

    ``protocol`` is a registered name or a :class:`ProtocolSpec`.
    ``inputs`` is the per-process input vector (for protocols that take
    one); ``n`` may be given instead for input-free protocols.  Keyword
    options beyond the engine knobs — or an explicit ``options`` mapping —
    are passed to the spec's factory (e.g. ``x=4`` for the tradeoff,
    ``sender=0`` for TRB).  ``observers`` are attached to the underlying
    :class:`SyncNetwork`, so traces and profiles can be captured on any
    protocol without touching its wrapper.  ``multicast=False`` selects the
    engine's legacy per-copy send path, ``columnar=False`` the legacy
    object-per-copy delivery loop (``None`` auto-selects the vectorized
    path when numpy is available; metrics are identical on every path and
    replay verification exercises all of them).  ``model`` selects the
    round model (``"lockstep"`` / ``"partial-synchrony"`` / a
    :class:`RoundModel` instance; ``None`` honours the
    ``REPRO_EXECUTION_MODEL`` environment variable before defaulting to
    lockstep), with ``model_options`` forwarded to the model constructor.
    ``transport`` selects where the processes physically execute
    (``"inprocess"`` — the default — or ``"tcp"`` for real OS worker
    processes over localhost; see :mod:`repro.transport`), with
    ``transport_options`` forwarded to the transport constructor.

    Returns a :class:`repro.core.consensus.ConsensusRun`.
    """
    from ..core.consensus import ConsensusRun

    spec = protocol if isinstance(protocol, ProtocolSpec) else (
        protocol_spec(protocol)
    )
    if inputs is None and n is None:
        raise ValueError(
            f"protocol {spec.name!r} needs `inputs` or an explicit `n`"
        )
    if spec.uses_inputs and inputs is None:
        raise ValueError(f"protocol {spec.name!r} needs an input vector")
    merged_options: dict[str, Any] = dict(options or {})
    merged_options.update(extra_options)
    request = ExecutionRequest(
        n=n if n is not None else len(inputs),
        inputs=inputs,
        t=t,
        params=params if params is not None else ProtocolParams.practical(),
        seed=seed,
        graph_seed=graph_seed,
        adversary=adversary,
        max_rounds=max_rounds,
        options=MappingProxyType(merged_options),
        model=model,
        model_options=model_options,
        transport=transport,
        transport_options=transport_options,
    )
    processes, budget = spec.build(request)
    network = SyncNetwork(
        processes,
        adversary=adversary,
        t=budget,
        seed=seed,
        max_rounds=(
            max_rounds if max_rounds is not None else spec.default_max_rounds
        ),
        observers=observers,
        multicast=multicast,
        columnar=columnar,
        model=model,
        model_options=model_options,
        transport=transport,
        transport_options=transport_options,
    )
    result = network.run()
    return ConsensusRun(
        result=result, processes=list(processes), request=request
    )
