"""The unified execution harness: protocol registry + observer wiring.

``execute`` runs any registered protocol on the synchronous substrate and
returns a :class:`repro.core.consensus.ConsensusRun`; the ``run_*`` helpers
throughout ``repro.core`` and ``repro.baselines`` are thin wrappers over
it.  The registry makes every protocol sweepable by the campaign runner and
the CLI, and ``observers=...`` attaches :class:`RoundObserver` instances
(e.g. :class:`TraceRecorder`, :class:`RoundProfiler`) to any run without
touching protocol code.
"""

from ..runtime import RoundObserver, RoundProfiler, TraceRecorder
from .registry import (
    CELL_RECORD_VERSION,
    ExecutionRequest,
    ProtocolSpec,
    available_protocols,
    capability_fingerprint,
    execute,
    protocol_spec,
    register_protocol,
)

__all__ = [
    "CELL_RECORD_VERSION",
    "ExecutionRequest",
    "ProtocolSpec",
    "RoundObserver",
    "RoundProfiler",
    "TraceRecorder",
    "available_protocols",
    "capability_fingerprint",
    "execute",
    "protocol_spec",
    "register_protocol",
]
