"""Concrete adaptive-adversary strategies (Section 2's adversary model).

All strategies receive the full-information :class:`NetworkView` each round
(process states, outbound messages, randomness already drawn) and return an
:class:`AdversaryAction`.  The engine enforces legality; these classes only
encode *intent*:

* :class:`StaticCrashAdversary` — scheduled permanent crashes (omission of
  all traffic from the crash round on), the paper's remark that crashes are a
  special case of omissions;
* :class:`SilenceAdversary` — corrupts a fixed set up front and silences it
  completely;
* :class:`RandomOmissionAdversary` — corrupts up to budget and drops each
  faulty-incident message with probability q (background noise);
* :class:`EclipseAdversary` — corrupts a victim's spreading-graph neighbours
  and silences their messages *to the victim*, driving a non-faulty process
  inoperative (the phenomenon Section B highlights);
* :class:`GroupKnockoutAdversary` — corrupts a majority of one
  sqrt(n)-group and silences it, destroying the group's aggregation quorum;
* :class:`VoteBalancingAdversary` — the constructive core of the
  Bar-Joseph/Ben-Or-style lower-bound strategy: watches candidate bits and
  silences holders of the *leading* value to keep the vote near the
  thresholds, spending ~sqrt(n) corruptions per epoch.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from ..runtime.randomness import stable_seed

from ..runtime import Adversary, AdversaryAction, AdversaryContext, NetworkView


def _cap_to_budget(
    candidates: Iterable[int], view: NetworkView
) -> frozenset[int]:
    """First ``budget_left`` not-yet-faulty candidates, in given order."""
    chosen: list[int] = []
    for pid in candidates:
        if pid in view.faulty or pid in chosen:
            continue
        if len(chosen) >= view.budget_left:
            break
        chosen.append(pid)
    return frozenset(chosen)


class StaticCrashAdversary(Adversary):
    """Crash given processes at given rounds; silence them afterwards.

    ``schedule`` maps round number -> iterable of pids to crash in that
    round.  From its crash round on, every message from or to a crashed
    process is omitted — the strongest crash semantics expressible with
    omissions.
    """

    def __init__(self, schedule: dict[int, Iterable[int]]) -> None:
        self.schedule = {
            round_no: tuple(pids) for round_no, pids in schedule.items()
        }
        self._crashed: set[int] = set()

    def act(self, view: NetworkView) -> AdversaryAction:
        due = self.schedule.get(view.round, ())
        corrupt = _cap_to_budget(due, view)
        self._crashed |= corrupt
        if not self._crashed:
            return AdversaryAction.nothing()
        omit = view.message_indices_touching(self._crashed)
        return AdversaryAction(corrupt=corrupt, omit=omit)


class SilenceAdversary(Adversary):
    """Corrupt a fixed set when first invoked; omit its traffic forever.

    Corrupting on first invocation (not a hardcoded round) keeps the
    strategy meaningful inside combinators like
    :class:`~repro.adversary.SequentialAdversary`.
    """

    def __init__(self, victims: Sequence[int]) -> None:
        self.victims = tuple(victims)
        self._started = False

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            corrupt = _cap_to_budget(self.victims, view)
        silenced = set(self.victims) & (view.faulty | corrupt)
        return AdversaryAction(
            corrupt=corrupt, omit=view.message_indices_touching(silenced)
        )


class RandomOmissionAdversary(Adversary):
    """Corrupt up to the budget immediately; drop faulty-incident messages
    independently with probability ``omit_probability``."""

    def __init__(
        self,
        omit_probability: float = 0.5,
        corrupt_count: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= omit_probability <= 1.0:
            raise ValueError(
                f"omit probability must be in [0, 1], got {omit_probability}"
            )
        self.omit_probability = omit_probability
        self.corrupt_count = corrupt_count
        self._rng = random.Random(stable_seed("random-omission", seed))
        self._targets: tuple[int, ...] = ()
        self._started = False

    def setup(self, ctx: AdversaryContext) -> None:
        count = (
            ctx.t
            if self.corrupt_count is None
            else min(self.corrupt_count, ctx.t)
        )
        self._targets = (
            tuple(self._rng.sample(range(ctx.n), count)) if count else ()
        )

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            corrupt = _cap_to_budget(self._targets, view)
        faulty = view.faulty | corrupt
        omit = frozenset(
            index
            for index in view.message_indices_touching(faulty)
            if self._rng.random() < self.omit_probability
        )
        return AdversaryAction(corrupt=corrupt, omit=omit)


class EclipseAdversary(Adversary):
    """Drive a *non-faulty* victim inoperative by silencing its neighbours.

    Corrupts as many of the victim's spreading-graph neighbours as the budget
    allows and omits exactly their messages **to the victim**, starving it
    below the ``Delta/3`` operative threshold while the rest of the system
    keeps the corrupted processes' other links intact (so they may well stay
    operative themselves — the paper's point that faulty can remain operative
    and non-faulty can become inoperative).
    """

    def __init__(self, victim: int, neighbors: Sequence[int]) -> None:
        self.victim = victim
        self.neighbors = tuple(neighbors)
        self._started = False

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            corrupt = _cap_to_budget(
                (pid for pid in self.neighbors if pid != self.victim), view
            )
        silenced = set(self.neighbors) & (view.faulty | corrupt)
        omit = frozenset(
            index
            for index, message in enumerate(view.messages)
            if message.recipient == self.victim and message.sender in silenced
        )
        return AdversaryAction(corrupt=corrupt, omit=omit)


class GroupKnockoutAdversary(Adversary):
    """Corrupt a majority of one sqrt(n)-group and silence it completely.

    With more than half the group silent, every remaining member loses the
    GroupRelay confirmation quorum and the whole group goes inoperative —
    its candidate bits then count for nobody (Lemma 7's worst case).
    """

    def __init__(self, group_members: Sequence[int]) -> None:
        self.group_members = tuple(group_members)
        self._started = False

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            majority = len(self.group_members) // 2 + 1
            corrupt = _cap_to_budget(self.group_members[:majority], view)
        silenced = set(self.group_members) & (view.faulty | corrupt)
        return AdversaryAction(
            corrupt=corrupt, omit=view.message_indices_touching(silenced)
        )


class VoteBalancingAdversary(Adversary):
    """Keep the candidate-bit counts balanced for as long as possible.

    The constructive strategy behind the sqrt(n)-round lower-bound intuition
    (Section B.3): whenever the operative vote drifts toward a value, corrupt
    and silence holders of the *leading* bit (most-connected first) to pull
    the visible counts back toward the undecided band.  Spends at most
    ``per_epoch_budget`` corruptions per epoch, mirroring the
    Theta(sqrt(n))-per-round cost the analysis forces on the adversary.
    """

    def __init__(
        self, per_epoch_budget: int | None = None, seed: int = 0
    ) -> None:
        self.per_epoch_budget = per_epoch_budget
        self._rng = random.Random(stable_seed("vote-balancer", seed))
        self._silenced: set[int] = set()
        self._epoch_seen = -1
        self._spent_this_epoch = 0

    def _current_epoch(self, view: NetworkView) -> int:
        epochs = [
            getattr(process, "epoch", -1) for process in view.processes
        ]
        return max(epochs) if epochs else -1

    def act(self, view: NetworkView) -> AdversaryAction:
        epoch = self._current_epoch(view)
        if epoch != self._epoch_seen:
            self._epoch_seen = epoch
            self._spent_this_epoch = 0

        ones = zeros = 0
        holders: dict[int, list[int]] = {0: [], 1: []}
        for process in view.processes:
            bit = getattr(process, "b", None)
            operative = getattr(process, "operative", True)
            decided = getattr(process, "decided", False)
            pid = process.pid
            if (
                bit not in (0, 1)
                or not operative
                or decided
                or pid in self._silenced
                or pid in view.terminated
            ):
                continue
            holders[bit].append(pid)
            if bit == 1:
                ones += 1
            else:
                zeros += 1

        total = ones + zeros
        corrupt: frozenset[int] = frozenset()
        if total > 0:
            leading = 1 if ones >= zeros else 0
            margin = abs(ones - zeros)
            budget = view.budget_left
            if self.per_epoch_budget is not None:
                budget = min(
                    budget, self.per_epoch_budget - self._spent_this_epoch
                )
            to_silence = min(margin // 2, budget)
            if to_silence > 0:
                pool = [
                    pid for pid in holders[leading] if pid not in view.faulty
                ]
                self._rng.shuffle(pool)
                corrupt = frozenset(pool[:to_silence])
                self._silenced |= corrupt
                self._spent_this_epoch += len(corrupt)

        silenced_now = self._silenced & (view.faulty | corrupt)
        return AdversaryAction(
            corrupt=corrupt,
            omit=view.message_indices_touching(silenced_now),
        )
