"""Adversary combinators: build richer strategies out of simple ones.

The model's adversary is any adaptive function of the full-information
view; these combinators express common compositions without new strategy
classes:

* :class:`SequentialAdversary` — hand control from one strategy to the next
  at fixed round boundaries (e.g. silence early, balance late);
* :class:`UnionAdversary` — run several strategies in parallel each round
  and merge their actions (corruptions capped at the budget jointly,
  omissions unioned — the engine validates the merged action as usual);
* :class:`ThrottledAdversary` — cap another strategy's corruptions per
  round (the Theorem-2 proof restricts the adversary to
  ``16 sqrt(r_i log n) + 1`` per round; this makes that restriction
  expressible);
* :class:`RecordingAdversary` — transparent wrapper logging every action,
  for tests and diagnostics.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..runtime import (
    Adversary,
    AdversaryAction,
    AdversaryContext,
    NetworkView,
    setup_adversary,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .scripted import ScriptedAdversary


class SequentialAdversary(Adversary):
    """Delegate to ``stages[i]`` while ``round < boundaries[i]``.

    ``boundaries`` are ascending round numbers; the final stage handles all
    later rounds.  Example: silence for 10 rounds, then balance::

        SequentialAdversary(
            [SilenceAdversary(range(3)), VoteBalancingAdversary()],
            boundaries=[10],
        )
    """

    def __init__(
        self, stages: Sequence[Adversary], boundaries: Sequence[int]
    ) -> None:
        if len(stages) != len(boundaries) + 1:
            raise ValueError(
                f"need exactly len(stages)-1 boundaries; got {len(stages)} "
                f"stages and {len(boundaries)} boundaries"
            )
        if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ValueError("boundaries must be strictly ascending")
        self.stages = list(stages)
        self.boundaries = list(boundaries)

    def setup(self, ctx: AdversaryContext) -> None:
        for stage in self.stages:
            setup_adversary(stage, ctx)

    def _stage_for(self, round_no: int) -> Adversary:
        for stage, boundary in zip(self.stages, self.boundaries):
            if round_no < boundary:
                return stage
        return self.stages[-1]

    def act(self, view: NetworkView) -> AdversaryAction:
        return self._stage_for(view.round).act(view)


class UnionAdversary(Adversary):
    """Merge several strategies' actions each round.

    Corruption requests are honoured in strategy order until the shared
    budget runs out; omission sets are unioned (and filtered to messages
    that are faulty-incident after the merged corruptions, so a strategy
    whose corruption was dropped cannot produce an illegal omission).
    """

    def __init__(self, parts: Sequence[Adversary]) -> None:
        if not parts:
            raise ValueError("UnionAdversary needs at least one strategy")
        self.parts = list(parts)

    def setup(self, ctx: AdversaryContext) -> None:
        for part in self.parts:
            setup_adversary(part, ctx)

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt: list[int] = []
        omit: set[int] = set()
        budget = view.budget_left
        for part in self.parts:
            action = part.act(view)
            for pid in sorted(action.corrupt):
                if pid in view.faulty or pid in corrupt:
                    continue
                if len(corrupt) >= budget:
                    break
                corrupt.append(pid)
            omit |= set(action.omit)
        faulty_after = view.faulty | set(corrupt)
        legal_omit = frozenset(
            index
            for index in sorted(omit)
            if 0 <= index < len(view.messages)
            and (
                view.messages[index].sender in faulty_after
                or view.messages[index].recipient in faulty_after
            )
        )
        return AdversaryAction(corrupt=frozenset(corrupt), omit=legal_omit)


class ThrottledAdversary(Adversary):
    """Cap the wrapped strategy's corruptions per round.

    The Theorem-2 strategy space restricts the adversary to
    ``O(sqrt(r_i log n))`` new corruptions per round; this combinator
    imposes such per-round caps on any strategy (dropping the excess, in
    the wrapped strategy's preference order).
    """

    def __init__(self, inner: Adversary, per_round_cap: int) -> None:
        if per_round_cap < 0:
            raise ValueError("per-round cap must be non-negative")
        self.inner = inner
        self.per_round_cap = per_round_cap

    def setup(self, ctx: AdversaryContext) -> None:
        setup_adversary(self.inner, ctx)

    def act(self, view: NetworkView) -> AdversaryAction:
        action = self.inner.act(view)
        corrupt = frozenset(sorted(action.corrupt)[: self.per_round_cap])
        faulty_after = view.faulty | corrupt
        omit = frozenset(
            index
            for index in action.omit
            if view.messages[index].sender in faulty_after
            or view.messages[index].recipient in faulty_after
        )
        return AdversaryAction(corrupt=corrupt, omit=omit)


class RecordingAdversary(Adversary):
    """Transparent wrapper that logs every (round, action) pair."""

    def __init__(self, inner: Adversary) -> None:
        self.inner = inner
        self.actions: list[tuple[int, AdversaryAction]] = []

    def setup(self, ctx: AdversaryContext) -> None:
        setup_adversary(self.inner, ctx)

    def act(self, view: NetworkView) -> AdversaryAction:
        action = self.inner.act(view)
        self.actions.append((view.round, action))
        return action

    def total_corruptions(self) -> int:
        return sum(len(action.corrupt) for _, action in self.actions)

    def total_omissions(self) -> int:
        return sum(len(action.omit) for _, action in self.actions)

    def scripted(self, strict: bool = True) -> ScriptedAdversary:
        """A :class:`ScriptedAdversary` replaying the recorded schedule.

        Lets any recorded live run be re-executed verbatim — the
        combinator-level counterpart of the ``repro.replay`` recipe flow.
        """
        from .scripted import ScriptedAdversary

        return ScriptedAdversary(
            [
                (round_no, action.corrupt, action.omit)
                for round_no, action in self.actions
            ],
            strict=strict,
        )
