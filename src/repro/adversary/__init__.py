"""Adaptive full-information omission adversaries (Section 2).

The abstract interface (:class:`repro.runtime.Adversary`) lives in the
runtime; this package provides the strategy gallery used by tests, examples
and benchmarks.
"""

from ..runtime import Adversary, AdversaryAction, AdversaryContext, NetworkView
from .chaos import ChaosAdversary
from .compose import (
    RecordingAdversary,
    SequentialAdversary,
    ThrottledAdversary,
    UnionAdversary,
)
from .scripted import ScriptedAdversary
from .strategies import (
    EclipseAdversary,
    GroupKnockoutAdversary,
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryAction",
    "AdversaryContext",
    "NetworkView",
    "ScriptedAdversary",
    "StaticCrashAdversary",
    "SilenceAdversary",
    "RandomOmissionAdversary",
    "EclipseAdversary",
    "GroupKnockoutAdversary",
    "VoteBalancingAdversary",
    "SequentialAdversary",
    "UnionAdversary",
    "ThrottledAdversary",
    "RecordingAdversary",
    "ChaosAdversary",
]
