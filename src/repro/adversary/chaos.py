"""ChaosAdversary: a randomized legal-move fuzzer for protocol testing.

Hand-written strategies probe failure modes their author thought of; the
chaos adversary probes everything else.  Each round it draws a random but
*legal* combination of moves:

* with probability ``corrupt_rate`` (and budget left), corrupt a uniformly
  random healthy process — sometimes a burst of several;
* for every faulty-incident message, draw an omission from a per-(sender,
  recipient) biased coin whose bias is itself randomized per link — so some
  links are reliably dead, some flaky, some clean, and the pattern differs
  every run;
* occasionally flips a link's bias (the "faulty process changes who it
  talks to round by round" behaviour Section B.3 highlights as the
  difference from crashes).

Used by the property-based fuzz tests: Algorithm 1 (and friends) must
satisfy agreement/validity/termination under *any* seed of this adversary,
because every generated schedule is within the model.
"""

from __future__ import annotations

import random

from ..runtime import Adversary, AdversaryAction, AdversaryContext, NetworkView
from ..runtime.randomness import stable_seed


class ChaosAdversary(Adversary):
    """Randomized legal adversary for fuzzing (see module docstring)."""

    def __init__(
        self,
        seed: int = 0,
        corrupt_rate: float = 0.08,
        burst_rate: float = 0.02,
        flip_rate: float = 0.05,
    ) -> None:
        for name, value in (
            ("corrupt_rate", corrupt_rate),
            ("burst_rate", burst_rate),
            ("flip_rate", flip_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = random.Random(stable_seed("chaos", seed))
        self.corrupt_rate = corrupt_rate
        self.burst_rate = burst_rate
        self.flip_rate = flip_rate
        #: Per-link omission bias, assigned lazily per (sender, recipient).
        self._link_bias: dict[tuple[int, int], float] = {}

    def setup(self, ctx: AdversaryContext) -> None:
        self._n = ctx.n

    def _bias(self, link: tuple[int, int]) -> float:
        bias = self._link_bias.get(link)
        if bias is None or self._rng.random() < self.flip_rate:
            # Mixture: dead links, flaky links, clean links.
            roll = self._rng.random()
            if roll < 0.3:
                bias = 1.0
            elif roll < 0.6:
                bias = self._rng.uniform(0.2, 0.8)
            else:
                bias = 0.0
            self._link_bias[link] = bias
        return bias

    def act(self, view: NetworkView) -> AdversaryAction:
        rng = self._rng
        corrupt: set[int] = set()
        healthy = [
            pid for pid in range(self._n) if pid not in view.faulty
        ]
        budget = view.budget_left
        if healthy and budget > 0 and rng.random() < self.corrupt_rate:
            count = 1
            while (
                count < budget
                and count < len(healthy)
                and rng.random() < self.burst_rate
            ):
                count += 1
            corrupt.update(rng.sample(healthy, count))

        faulty = view.faulty | corrupt
        omit = frozenset(
            index
            for index, message in enumerate(view.messages)
            if (message.sender in faulty or message.recipient in faulty)
            and rng.random() < self._bias((message.sender, message.recipient))
        )
        return AdversaryAction(corrupt=frozenset(corrupt), omit=omit)
