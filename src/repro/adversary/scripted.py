"""ScriptedAdversary: replay a recorded adversary schedule verbatim.

The adaptive adversary of Section 2 is a *function* of the execution, but
once an execution is fixed, its decisions are just data: which processes it
corrupted in which round and which flat message indices it omitted.
:class:`ScriptedAdversary` turns that data back into an adversary, which is
what makes recorded executions replayable (``repro.replay``) — the process
randomness is reproduced from seeds and the adversary is reproduced from
its script, so the whole run is a deterministic function of the recipe.

Two modes:

* ``strict=True`` (default) — the script is emitted as recorded; the
  engine validates it as usual, so replaying a schedule recorded from a
  legal run on the identical execution can never raise.
* ``strict=False`` — corruptions are capped to the remaining budget and
  omission indices that are out of range or no longer faulty-incident are
  dropped.  The shrinker uses this mode: deleting a corruption from a
  candidate recipe must not turn its remaining omissions into engine
  errors, it must just weaken the schedule.

(The similarly named class in ``repro.lowerbound.rollout_adversary`` is a
search-internal prefix-replayer with a live fallback policy; this one is
the serialization-facing replay adversary.)
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from ..runtime import Adversary, AdversaryAction, NetworkView, canonical_omissions

#: One scripted entry: ``(round, corrupt pids, omit indices)`` — or any
#: object with ``round`` / ``corrupt`` / ``omit`` attributes (e.g. the
#: recipe's ``RecordedAction``).
ScriptEntry = Any


def _normalize(entry: ScriptEntry) -> tuple[int, frozenset[int], tuple[int, ...]]:
    if isinstance(entry, (tuple, list)):
        round_no, corrupt, omit = entry
    else:
        round_no, corrupt, omit = entry.round, entry.corrupt, entry.omit
    # Omissions go through the engine's shared canonical form, so a script
    # carrying duplicate flat indices replays the schedule the original
    # run actually applied (and was metered/recorded as).
    return int(round_no), frozenset(corrupt), canonical_omissions(omit)


class ScriptedAdversary(Adversary):
    """Replay a schedule of per-round (corrupt, omit) actions."""

    def __init__(
        self, entries: Iterable[ScriptEntry] = (), strict: bool = True
    ) -> None:
        self._by_round: dict[int, tuple[frozenset[int], tuple[int, ...]]] = {}
        for entry in entries:
            round_no, corrupt, omit = _normalize(entry)
            if round_no in self._by_round:
                raise ValueError(
                    f"duplicate scripted action for round {round_no}"
                )
            self._by_round[round_no] = (corrupt, omit)
        self.strict = strict

    def __len__(self) -> int:
        return len(self._by_round)

    def act(self, view: NetworkView) -> AdversaryAction:
        entry = self._by_round.get(view.round)
        if entry is None:
            return AdversaryAction.nothing()
        corrupt, omit = entry
        corrupt = corrupt - view.faulty
        if self.strict:
            return AdversaryAction(corrupt=corrupt, omit=frozenset(omit))
        if len(corrupt) > view.budget_left:
            corrupt = frozenset(sorted(corrupt)[: view.budget_left])
        faulty_after = view.faulty | corrupt
        messages = view.messages
        total = len(messages)
        legal: list[int] = []
        for index in omit:
            if not 0 <= index < total:
                continue
            message = messages[index]
            if message.sender in faulty_after or (
                message.recipient in faulty_after
            ):
                legal.append(index)
        return AdversaryAction(corrupt=corrupt, omit=frozenset(legal))
