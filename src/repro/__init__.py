"""repro — Nearly-Optimal Consensus Tolerating Adaptive Omissions (PODC'24).

A full reproduction of Hajiaghayi, Kowalski & Olkowski's consensus
algorithms against an adaptive, full-information omission adversary,
together with the synchronous substrate, adversary gallery, baselines,
and lower-bound machinery.

Quickstart::

    from repro import run_consensus
    from repro.adversary import SilenceAdversary

    run = run_consensus([pid % 2 for pid in range(100)],
                        adversary=SilenceAdversary(range(3)))
    print(run.decision, run.metrics.rounds, run.metrics.bits_sent)
"""

from .core import (
    ConsensusRun,
    OptimalOmissionsConsensus,
    run_consensus,
)
from .params import ProtocolParams, default_fault_bound
from .runtime import (
    Adversary,
    AdversaryAction,
    ExecutionResult,
    Metrics,
    NetworkView,
    SyncNetwork,
    SyncProcess,
)

__version__ = "1.0.0"

__all__ = [
    "ConsensusRun",
    "OptimalOmissionsConsensus",
    "run_consensus",
    "ProtocolParams",
    "default_fault_bound",
    "Adversary",
    "AdversaryAction",
    "ExecutionResult",
    "Metrics",
    "NetworkView",
    "SyncNetwork",
    "SyncProcess",
    "__version__",
]
