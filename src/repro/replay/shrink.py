"""Delta-debugging shrinker for failing execution recipes.

A fuzzer-found invariant violation typically arrives wrapped in hundreds
of irrelevant adversary decisions.  :func:`shrink_recipe` minimizes the
schedule with three ddmin passes, re-validating every candidate by actual
replay (``strict=False``, so deleting a corruption merely weakens the
remaining omissions instead of making them illegal):

1. drop whole round-actions;
2. drop individual corruption entries (omissions held fixed);
3. drop individual omission indices (corruptions held fixed).

A candidate *counts* only if its replay trips the **same invariant** as
the original — shrinking must not wander onto a different bug.  The
result is a locally minimal recipe: removing any single remaining chunk
stops the failure from reproducing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import TypeVar

from .recipe import ExecutionRecipe, RecordedAction
from .runner import _failure_payload, replay

T = TypeVar("T")


def _ddmin(
    items: list[T],
    still_fails: Callable[[list[T]], bool],
) -> list[T]:
    """Classic ddmin over ``items``: greedily remove complement chunks.

    ``still_fails`` must hold for the full list; the returned sublist is
    1-minimal w.r.t. the final chunk granularity.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = math.ceil(len(items) / granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if still_fails(candidate):
                items = candidate
                reduced = True
                # Do not advance: the next chunk shifted into `start`.
            else:
                start += chunk
        if reduced:
            granularity = max(2, granularity - 1)
        elif chunk <= 1:
            break
        else:
            granularity = min(len(items), granularity * 2)
    if len(items) == 1 and still_fails([]):
        items = []
    return items


def _rebuild_actions(
    corrupt_entries: Sequence[tuple[int, int]],
    omit_entries: Sequence[tuple[int, int]],
) -> tuple[RecordedAction, ...]:
    """Reassemble per-round actions from flat (round, value) entries."""
    by_round: dict[int, tuple[list[int], list[int]]] = {}
    for round_no, pid in corrupt_entries:
        by_round.setdefault(round_no, ([], []))[0].append(pid)
    for round_no, index in omit_entries:
        by_round.setdefault(round_no, ([], []))[1].append(index)
    return tuple(
        RecordedAction(
            round=round_no,
            corrupt=tuple(sorted(corrupt)),
            omit=tuple(sorted(omit)),
        )
        for round_no, (corrupt, omit) in sorted(by_round.items())
    )


@dataclass
class ShrinkResult:
    """A minimized recipe plus how much work the search did."""

    recipe: ExecutionRecipe
    original: ExecutionRecipe
    replays: int

    @property
    def omission_ratio(self) -> float:
        """Shrunk omission entries as a fraction of the original's."""
        before = self.original.total_omissions()
        if before == 0:
            return 0.0
        return self.recipe.total_omissions() / before


def shrink_recipe(
    recipe: ExecutionRecipe,
    fails: Callable[[ExecutionRecipe], bool] | None = None,
    max_replays: int = 600,
) -> ShrinkResult:
    """Minimize a failing recipe's adversary schedule by replaying.

    ``fails`` overrides the candidate predicate (default: lenient replay
    trips the same invariant as ``recipe.expected_failure``).  The search
    stops reducing once ``max_replays`` candidate replays were spent.
    Raises ``ValueError`` if the recipe does not fail to begin with.
    """
    replays = 0

    if fails is None:
        reference = (
            recipe.expected_failure.get("invariant")
            if recipe.expected_failure is not None
            else None
        )

        def fails(candidate: ExecutionRecipe) -> bool:
            report = replay(candidate, strict=False, invariants=True)
            if report.failure is None:
                return False
            if reference is None:
                return True
            got = getattr(
                report.failure, "invariant", type(report.failure).__name__
            )
            return got == reference

    def try_candidate(actions: Sequence[RecordedAction]) -> bool:
        nonlocal replays
        if replays >= max_replays:
            return False
        replays += 1
        return fails(recipe.with_actions(actions))

    if not try_candidate(recipe.actions):
        raise ValueError(
            "recipe does not reproduce its failure; nothing to shrink"
        )

    # Pass 1: whole round-actions.
    actions = _ddmin(list(recipe.actions), try_candidate)

    # Pass 2: individual corruption entries, omissions held fixed.
    corrupt_entries = [
        (action.round, pid) for action in actions for pid in action.corrupt
    ]
    omit_entries = [
        (action.round, index) for action in actions for index in action.omit
    ]
    corrupt_entries = _ddmin(
        corrupt_entries,
        lambda kept: try_candidate(_rebuild_actions(kept, omit_entries)),
    )

    # Pass 3: individual omission indices, corruptions held fixed.
    omit_entries = _ddmin(
        omit_entries,
        lambda kept: try_candidate(_rebuild_actions(corrupt_entries, kept)),
    )

    shrunk = recipe.with_actions(
        _rebuild_actions(corrupt_entries, omit_entries)
    )

    # Refresh the failure description from the minimized schedule and
    # mark the artifact as shrunk.
    final = replay(shrunk, strict=False, invariants=True)
    replays += 1
    if final.failure is not None:
        import dataclasses

        shrunk = dataclasses.replace(
            shrunk,
            expected_failure=_failure_payload(final.failure),
            note=(recipe.note + " " if recipe.note else "") + "(shrunk)",
        )
    return ShrinkResult(recipe=shrunk, original=recipe, replays=replays)
