"""Always-on consensus invariant observers.

The tests assert agreement/validity *after* a run; the fuzzer wants the
violation pinned to the round it first became observable.
:class:`InvariantObserver` rides the engine's observer bus and raises
:class:`InvariantViolation` — carrying the invariant name, the offending
round and a human-readable detail — the moment a check fails:

* **budget** — the cumulative corrupted set never exceeds ``t``
  (a second line of defence behind the engine's own validation);
* **conservation** — metering balances *per round*: the messages sent in
  each round equal that round's delivered + omitted + lost plus the
  change in the in-flight count (the metering identity pinned in
  :mod:`repro.runtime.metrics`, with omission taking precedence over
  loss; under the lockstep model the in-flight term is identically zero,
  under latency-bearing models it accounts for traffic still crossing
  round boundaries), and cumulative delivered/lost bits never exceed
  sent bits (omitted *bits* are not metered separately, so bits get an
  inequality where messages get an identity);
* **agreement** — non-faulty decided processes never hold two different
  decision values, checked as decisions appear, not just at the end;
* **validity** — when the input vector is known, every non-faulty
  decision is one of the inputs;
* **termination** — at run end, every non-faulty process has decided.

Observers are passive; raising from a hook aborts the run, which is the
point — the traceback identifies the first bad round, and ``repro.replay``
catches the violation to save a recipe for it.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..runtime import RoundObserver

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..runtime import (
        AdversaryAction,
        ExecutionResult,
        NetworkView,
        SyncNetwork,
    )


class InvariantViolation(AssertionError):
    """A consensus or metering invariant failed mid-run.

    Subclasses ``AssertionError`` so existing ``pytest.raises`` /
    harness-level catches keep working; adds structure for recipes.
    """

    def __init__(self, invariant: str, round_no: int | None, detail: str) -> None:
        super().__init__(
            f"{invariant} violated"
            + (f" at round {round_no}" if round_no is not None else "")
            + f": {detail}"
        )
        self.invariant = invariant
        self.round = round_no
        self.detail = detail

    def payload(self) -> dict[str, Any]:
        """JSON-safe description stored in a recipe's ``expected_failure``."""
        return {
            "invariant": self.invariant,
            "round": self.round,
            "detail": self.detail,
        }


def _distinct_decisions(decisions: dict[int, Any]) -> list[Any]:
    """Unique decision values without requiring hashability."""
    distinct: list[Any] = []
    for value in decisions.values():
        if not any(value == seen for seen in distinct):
            distinct.append(value)
    return distinct


class InvariantObserver(RoundObserver):
    """Trip :class:`InvariantViolation` at the first bad round.

    ``inputs`` enables the validity check; leave it ``None`` for
    protocols whose decisions are not drawn from an input vector (TRB
    follows the sender, collectors decide sets, ...).
    """

    def __init__(self, inputs: Sequence[int] | None = None) -> None:
        self.inputs = tuple(inputs) if inputs is not None else None
        # Cumulative metering totals (plus the in-flight count) at the end
        # of the previous round, so the conservation identity is checked
        # on per-round deltas — a round that under- or over-counts cannot
        # hide behind an earlier compensating error.
        self._seen_totals = (0, 0, 0, 0, 0)

    # ------------------------------------------------------------------
    def _check_agreement(
        self, decisions: dict[int, Any], faulty: frozenset[int],
        round_no: int | None,
    ) -> None:
        honest = {
            pid: value
            for pid, value in decisions.items()
            if pid not in faulty
        }
        distinct = _distinct_decisions(honest)
        if len(distinct) > 1:
            raise InvariantViolation(
                "agreement", round_no,
                f"non-faulty decisions diverge: {honest}",
            )

    def _check_validity(
        self, decisions: dict[int, Any], faulty: frozenset[int],
        round_no: int | None,
    ) -> None:
        if self.inputs is None:
            return
        legal = list(self.inputs)
        for pid, value in decisions.items():
            if pid in faulty:
                continue
            if not any(value == candidate for candidate in legal):
                raise InvariantViolation(
                    "validity", round_no,
                    f"process {pid} decided {value!r}, not an input value",
                )

    # ------------------------------------------------------------------
    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        if len(network.faulty) > network.t:
            raise InvariantViolation(
                "budget", round_no,
                f"{len(network.faulty)} corrupted processes exceed t="
                f"{network.t}",
            )

    def on_run_start(self, network: SyncNetwork) -> None:
        metrics = network.metrics
        self._seen_totals = (
            metrics.messages_sent,
            metrics.messages_delivered,
            metrics.messages_omitted,
            metrics.messages_lost,
            getattr(network, "in_flight_messages", 0),
        )

    def on_round_end(self, round_no: int, network: SyncNetwork) -> None:
        metrics = network.metrics
        (
            seen_sent,
            seen_delivered,
            seen_omitted,
            seen_lost,
            seen_in_flight,
        ) = self._seen_totals
        # Traffic still crossing round boundaries (zero under lockstep;
        # the partial-synchrony model's deferred copies otherwise).
        in_flight = getattr(network, "in_flight_messages", 0)
        self._seen_totals = (
            metrics.messages_sent,
            metrics.messages_delivered,
            metrics.messages_omitted,
            metrics.messages_lost,
            in_flight,
        )
        round_sent = metrics.messages_sent - seen_sent
        round_balance = (
            (metrics.messages_delivered - seen_delivered)
            + (metrics.messages_omitted - seen_omitted)
            + (metrics.messages_lost - seen_lost)
            + (in_flight - seen_in_flight)
        )
        if round_balance != round_sent:
            raise InvariantViolation(
                "conservation", round_no,
                f"round sent={round_sent} != round delivered+omitted+lost"
                f"+in-flight-delta={round_balance} (cumulative sent="
                f"{metrics.messages_sent})",
            )
        if metrics.bits_delivered + metrics.bits_lost > metrics.bits_sent:
            raise InvariantViolation(
                "conservation", round_no,
                f"delivered+lost bits {metrics.bits_delivered}+"
                f"{metrics.bits_lost} exceed bits_sent={metrics.bits_sent}",
            )
        decisions = network.current_decisions()
        faulty = frozenset(network.faulty)
        self._check_agreement(decisions, faulty, round_no)
        self._check_validity(decisions, faulty, round_no)

    def on_run_end(
        self, result: ExecutionResult, network: SyncNetwork
    ) -> None:
        self._check_agreement(result.decisions, result.faulty, None)
        self._check_validity(result.decisions, result.faulty, None)
        undecided = [
            pid
            for pid in range(result.n)
            if pid not in result.faulty and pid not in result.decisions
        ]
        if undecided:
            raise InvariantViolation(
                "termination", None,
                f"non-faulty processes {undecided} never decided",
            )
