"""Deterministic record / replay / shrink of harness executions.

The engine makes every execution a deterministic function of (protocol,
seeds, adversary action sequence); this package turns that property into
tooling:

* :func:`record` — run any registered protocol while capturing an
  :class:`ExecutionRecipe` (seeds, parameters, every validated adversary
  action) plus the run's full result fingerprint;
* :func:`replay` — re-execute a recipe through the harness with a
  :class:`~repro.adversary.ScriptedAdversary` and verify byte-identical
  metrics and decisions (over either engine send path);
* :class:`InvariantObserver` — always-on agreement / validity /
  termination / budget / metering-conservation checks that trip
  :class:`InvariantViolation` with the offending round;
* :func:`shrink_recipe` — ddmin the adversary schedule of a failing
  recipe down to a locally minimal counterexample, re-validating each
  candidate by replay;
* :func:`run_checked` — the fuzzing entry point: record with invariants
  on, and on violation shrink + save the recipe before re-raising.

Recipes serialize through :func:`save_recipe` / :func:`load_recipe`
(schema-tagged JSON, same versioning as ``repro.runtime.serialization``).
"""

from .invariants import InvariantObserver, InvariantViolation
from .recipe import (
    ExecutionRecipe,
    RecordedAction,
    load_recipe,
    recipe_from_payload,
    recipe_payload,
    save_recipe,
)
from .runner import (
    RECORDABLE_FAILURES,
    RecipeRecorder,
    RecordedRun,
    ReplayReport,
    counterexample_dir,
    record,
    replay,
    run_checked,
)
from .shrink import ShrinkResult, shrink_recipe

__all__ = [
    "ExecutionRecipe",
    "RecordedAction",
    "InvariantObserver",
    "InvariantViolation",
    "RECORDABLE_FAILURES",
    "RecipeRecorder",
    "RecordedRun",
    "ReplayReport",
    "ShrinkResult",
    "counterexample_dir",
    "load_recipe",
    "record",
    "recipe_from_payload",
    "recipe_payload",
    "replay",
    "run_checked",
    "save_recipe",
    "shrink_recipe",
]
