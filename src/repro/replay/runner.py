"""Record and replay harness executions.

:func:`record` runs a protocol through the harness with a
:class:`RecipeRecorder` tapped into the observer bus, capturing every
validated adversary action into an :class:`ExecutionRecipe` along with the
run's full result fingerprint — or, when an invariant trips, the failure
description.  :func:`replay` reconstructs the run from the recipe alone
(a :class:`~repro.adversary.ScriptedAdversary` stands in for the original
strategy) and verifies the outcome byte-for-byte against the recorded
fingerprint.

Because executions are deterministic functions of (seed, adversary action
sequence), a replayed run reproduces every :class:`Metrics` counter and
every decision exactly — over either engine send path
(``multicast=True``/``False``), since omission indices address the flat
per-copy message order both paths share.

:func:`run_checked` is the fuzzing entry point: record with invariants on;
on violation, shrink the recipe (``repro.replay.shrink``) and save the
minimized counterexample next to the failure before re-raising.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from ..adversary.scripted import ScriptedAdversary
from ..harness import execute
from ..params import ProtocolParams
from ..runtime import (
    Adversary,
    AdversaryProtocolError,
    LockstepError,
    RoundObserver,
    canonical_omissions,
    result_to_dict,
)
from .invariants import InvariantObserver, InvariantViolation
from .recipe import ExecutionRecipe, RecordedAction, save_recipe

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.consensus import ConsensusRun
    from ..runtime import AdversaryAction, NetworkView, SyncNetwork

#: Exceptions that turn a recording into a *failing* recipe instead of
#: propagating: invariant trips, protocol assertions, engine errors.
RECORDABLE_FAILURES = (AssertionError, LockstepError, AdversaryProtocolError)


class RecipeRecorder(RoundObserver):
    """Capture the validated adversary schedule as :class:`RecordedAction`s.

    Taps ``on_adversary_action``, which the engine fires *after* validating
    and applying the action — so the recording is exactly the schedule the
    run experienced, and replaying it strictly can never be illegal on the
    identical execution.  Empty actions are not recorded.
    """

    def __init__(self) -> None:
        self.actions: list[RecordedAction] = []

    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        newly = sorted(frozenset(action.corrupt) - view.faulty)
        # The engine dispatches canonical actions; normalize again anyway
        # so hand-driven dispatch records the same schedule it would apply.
        omit = canonical_omissions(action.omit)
        if newly or omit:
            self.actions.append(
                RecordedAction(
                    round=round_no,
                    corrupt=tuple(newly),
                    omit=omit,
                )
            )


@dataclass
class RecordedRun:
    """Outcome of :func:`record`: the recipe plus the live run (if any)."""

    recipe: ExecutionRecipe
    run: ConsensusRun | None = None
    failure: BaseException | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None


def _canonical(payload: Mapping[str, Any]) -> dict[str, Any]:
    """JSON-normalize a payload (tuples -> lists, int keys -> str)."""
    normalized: dict[str, Any] = json.loads(json.dumps(payload, sort_keys=True))
    return normalized


def _failure_payload(failure: BaseException) -> dict[str, Any]:
    if isinstance(failure, InvariantViolation):
        return failure.payload()
    return {
        "invariant": type(failure).__name__,
        "round": None,
        "detail": str(failure),
    }


def record(
    protocol: str,
    inputs: Sequence[int] | None = None,
    *,
    n: int | None = None,
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    max_rounds: int | None = None,
    observers: Sequence[RoundObserver] = (),
    options: Mapping[str, Any] | None = None,
    multicast: bool = True,
    columnar: bool | None = None,
    model: str | None = None,
    model_options: Mapping[str, Any] | None = None,
    transport: str | None = None,
    transport_options: Mapping[str, Any] | None = None,
    invariants: bool = True,
    note: str = "",
    **extra_options: Any,
) -> RecordedRun:
    """Run a protocol while capturing its :class:`ExecutionRecipe`.

    Accepts :func:`repro.harness.execute`'s keyword surface.  With
    ``invariants=True`` (the default) an :class:`InvariantObserver` rides
    along; a violation (or any :data:`RECORDABLE_FAILURES` error) does not
    propagate — it is folded into the recipe's ``expected_failure`` so the
    failing schedule can be replayed and shrunk.  A clean run stores the
    full result fingerprint in ``expected``.

    ``model`` names the round model to record under (``None`` honours
    ``REPRO_EXECUTION_MODEL`` before defaulting to lockstep); the resolved
    name and its options are stored in the recipe, so replay reproduces
    the same model regardless of the replaying environment.

    ``transport`` names where the recorded run hosts its processes
    (``None`` means in-process; there is deliberately no environment
    default).  The resolved name and options are stored as *provenance*:
    :func:`replay` always re-executes in-process, so a run recorded over
    real TCP worker processes verifies against the same fingerprint in a
    single interpreter — the cross-transport equivalence check.
    """
    from ..runtime import default_model_name
    from ..transport import default_transport_name

    merged: dict[str, Any] = dict(options or {})
    merged.update(extra_options)
    resolved_params = (
        params if params is not None else ProtocolParams.practical()
    )
    resolved_model = model if model is not None else default_model_name()
    resolved_model_options = dict(model_options or {})
    resolved_transport = (
        transport if transport is not None else default_transport_name()
    )
    resolved_transport_options = dict(transport_options or {})
    recorder = RecipeRecorder()
    attached: list[RoundObserver] = [recorder]
    if invariants:
        attached.append(InvariantObserver(inputs=inputs))
    attached.extend(observers)

    run: ConsensusRun | None = None
    failure: BaseException | None = None
    try:
        run = execute(
            protocol,
            inputs,
            n=n,
            t=t,
            adversary=adversary,
            params=resolved_params,
            seed=seed,
            graph_seed=graph_seed,
            max_rounds=max_rounds,
            observers=attached,
            options=merged,
            multicast=multicast,
            columnar=columnar,
            model=resolved_model,
            model_options=resolved_model_options,
            transport=resolved_transport,
            transport_options=resolved_transport_options,
        )
    except RECORDABLE_FAILURES as exc:
        failure = exc

    recipe = ExecutionRecipe(
        protocol=protocol,
        n=n if n is not None else len(() if inputs is None else inputs),
        inputs=tuple(inputs) if inputs is not None else None,
        t=t,
        seed=seed,
        graph_seed=graph_seed,
        params=resolved_params,
        options=merged,
        multicast=multicast,
        columnar=columnar,
        execution_model=resolved_model,
        model_options=resolved_model_options,
        transport=resolved_transport,
        transport_options=resolved_transport_options,
        max_rounds=max_rounds,
        actions=tuple(recorder.actions),
        expected=(
            _canonical(result_to_dict(run.result)) if run is not None else None
        ),
        expected_failure=(
            _failure_payload(failure) if failure is not None else None
        ),
        note=note,
    )
    return RecordedRun(recipe=recipe, run=run, failure=failure)


@dataclass
class ReplayReport:
    """Outcome of :func:`replay`, with the verification verdict."""

    recipe: ExecutionRecipe
    run: ConsensusRun | None = None
    failure: BaseException | None = None
    mismatches: list[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        """The replay completed and its fingerprint equals ``expected``."""
        return (
            self.failure is None
            and self.recipe.expected is not None
            and not self.mismatches
        )

    @property
    def reproduced_failure(self) -> bool:
        """The replay tripped the same invariant the recipe recorded."""
        if self.failure is None or self.recipe.expected_failure is None:
            return False
        want = self.recipe.expected_failure.get("invariant")
        got = getattr(
            self.failure, "invariant", type(self.failure).__name__
        )
        return want is None or want == got

    @property
    def ok(self) -> bool:
        """The replay agreed with whatever the recipe promised."""
        if self.recipe.failing:
            return self.reproduced_failure
        if self.recipe.expected is not None:
            return self.matches
        return self.failure is None

    def summary(self) -> str:
        if self.recipe.failing:
            if self.reproduced_failure:
                return (
                    "reproduced recorded failure: "
                    f"{self.recipe.expected_failure}"
                )
            if self.failure is not None:
                return f"different failure on replay: {self.failure}"
            return "recorded failure did NOT reproduce"
        if self.matches:
            return "replay matches recorded fingerprint"
        if self.failure is not None:
            return f"replay failed: {self.failure}"
        if self.mismatches:
            return "fingerprint mismatches: " + "; ".join(self.mismatches)
        return "replay completed (no recorded fingerprint to compare)"


def _diff_payload(
    expected: Mapping[str, Any], actual: Mapping[str, Any], prefix: str = ""
) -> list[str]:
    mismatches: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        want, got = expected.get(key), actual.get(key)
        if want == got:
            continue
        if isinstance(want, dict) and isinstance(got, dict):
            mismatches.extend(_diff_payload(want, got, f"{prefix}{key}."))
        else:
            mismatches.append(f"{prefix}{key}: expected {want!r}, got {got!r}")
    return mismatches


def replay(
    recipe: ExecutionRecipe,
    *,
    strict: bool | None = None,
    multicast: bool | None = None,
    columnar: bool | None = None,
    model: str | None = None,
    invariants: bool = True,
    observers: Sequence[RoundObserver] = (),
) -> ReplayReport:
    """Re-execute a recipe and verify it against its recorded outcome.

    ``strict`` controls the :class:`ScriptedAdversary` mode; the default is
    strict for passing recipes (the schedule must be legal verbatim) and
    lenient for failing ones (shrunk schedules may carry omissions whose
    sender was un-corrupted by the shrinker).  ``multicast`` overrides the
    recipe's recorded send path and ``columnar`` its recorded delivery
    path — metrics must match on every combination.  The round model
    comes from the recipe itself (never the environment); ``model``
    overrides it explicitly, which cross-model equivalence tests use to
    replay a lockstep recording under partial synchrony and vice versa.

    Replay always runs in-process, whatever transport the recipe records:
    the recorded schedule (transport crash faults included — the engine
    arbitrated them into ordinary corruptions and omissions) is a
    deterministic function of (seed, actions), so a TCP-recorded recipe
    verifies byte-for-byte in a single interpreter.
    """
    if strict is None:
        strict = not recipe.failing
    scripted = ScriptedAdversary(recipe.actions, strict=strict)
    attached: list[RoundObserver] = []
    if invariants:
        attached.append(InvariantObserver(inputs=recipe.inputs))
    attached.extend(observers)

    report = ReplayReport(recipe=recipe)
    try:
        report.run = execute(
            recipe.protocol,
            list(recipe.inputs) if recipe.inputs is not None else None,
            n=recipe.n,
            t=recipe.t,
            adversary=scripted,
            params=recipe.params,
            seed=recipe.seed,
            graph_seed=recipe.graph_seed,
            max_rounds=recipe.max_rounds,
            observers=attached,
            options=dict(recipe.options),
            multicast=(
                multicast if multicast is not None else recipe.multicast
            ),
            columnar=(
                columnar if columnar is not None else recipe.columnar
            ),
            model=model if model is not None else recipe.execution_model,
            model_options=dict(recipe.model_options),
        )
    except RECORDABLE_FAILURES as exc:
        report.failure = exc
        return report

    if recipe.expected is not None and report.run is not None:
        actual = _canonical(result_to_dict(report.run.result))
        report.mismatches = _diff_payload(dict(recipe.expected), actual)
    return report


def counterexample_dir() -> Path:
    """Where :func:`run_checked` saves shrunk recipes
    (``$REPRO_COUNTEREXAMPLE_DIR``, default ``./counterexamples``)."""
    return Path(os.environ.get("REPRO_COUNTEREXAMPLE_DIR", "counterexamples"))


def run_checked(
    protocol: str,
    inputs: Sequence[int] | None = None,
    *,
    save_dir: str | Path | None = None,
    shrink: bool = True,
    label: str = "",
    **kwargs: Any,
) -> ConsensusRun:
    """Record a run with invariants on; on failure, shrink + save + raise.

    The fuzzing entry point: a clean run returns its ``ConsensusRun``; a
    violating run is shrunk to a minimal schedule (when ``shrink=True``),
    written as a recipe JSON under ``save_dir`` (default
    :func:`counterexample_dir`), and the original violation is re-raised
    with the artifact path attached as an exception note.
    """
    recorded = record(protocol, inputs, invariants=True, **kwargs)
    failure = recorded.failure
    if failure is None:
        assert recorded.run is not None
        return recorded.run

    recipe = recorded.recipe
    if shrink:
        from .shrink import shrink_recipe

        try:
            recipe = shrink_recipe(recipe).recipe
        except ValueError:
            # Not deterministically reproducible (or no schedule to
            # shrink) — save the unshrunk recipe as-is.
            pass
    stem = label or recipe.protocol
    failure_info = recipe.expected_failure
    assert failure_info is not None  # record() always sets it on failure
    name = f"{stem}-seed{recipe.seed}-{failure_info['invariant']}"
    path = save_recipe(
        recipe,
        Path(save_dir if save_dir is not None else counterexample_dir())
        / f"{name}.json",
    )
    failure.add_note(
        f"counterexample recipe saved to {path} "
        f"(replay with: python -m repro.cli replay {path})"
    )
    raise failure
