"""ExecutionRecipe: the serializable identity of one engine execution.

An execution of the synchronous engine is a deterministic function of three
things: the protocol (name + parameters + inputs), the seeds that derive
every process's random source, and the adversary's action sequence.  A
recipe captures exactly those — nothing about the *outcome* is needed to
re-run it, but the recipe also carries an expected fingerprint (the full
:func:`repro.runtime.result_to_dict` payload of the recorded run, or the
invariant violation the run tripped) so a replay can verify itself.

Recipes are plain JSON artifacts, schema-tagged like every payload written
by :mod:`repro.runtime.serialization` (which re-exports
:func:`recipe_payload` / :func:`recipe_from_payload` as
``recipe_to_dict`` / ``recipe_from_dict``).  They are what the chaos-fuzz
suite saves when a run violates an invariant, what the shrinker minimizes,
and what ``python -m repro.cli replay`` consumes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from ..params import ProtocolParams
from ..runtime.network import canonical_omissions
from ..runtime.serialization import SCHEMA_VERSION, check_schema


@dataclass(frozen=True)
class RecordedAction:
    """One round's validated adversary action, as data.

    ``corrupt`` holds only the pids *newly* corrupted this round (the
    cumulative faulty set is implied by the prefix); ``omit`` holds the
    flat message indices omitted, in the canonical sorted/de-duplicated
    form of :func:`repro.runtime.canonical_omissions` — the same indexing
    every engine path (multicast × columnar) uses, which is what makes
    recorded schedules path-independent.
    """

    round: int
    corrupt: tuple[int, ...] = ()
    omit: tuple[int, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.corrupt and not self.omit


@dataclass(frozen=True)
class ExecutionRecipe:
    """Everything needed to re-run one harness execution exactly.

    ``expected`` is the recorded run's full result fingerprint
    (:func:`repro.runtime.result_to_dict`) when the run completed;
    ``expected_failure`` describes the invariant violation when it did
    not.  Exactly one of the two is normally set; both may be ``None``
    for a hand-written recipe.
    """

    protocol: str
    n: int
    seed: int
    inputs: tuple[int, ...] | None = None
    t: int | None = None
    graph_seed: int = 0
    params: ProtocolParams = field(default_factory=ProtocolParams.practical)
    options: Mapping[str, Any] = field(default_factory=dict)
    multicast: bool = True
    #: Engine delivery path of the recorded run: True/False pin the
    #: columnar/object loop on replay; None (the default, and the value
    #: implied by pre-columnar recipes) lets the engine auto-select.
    #: Fingerprints are path-independent, so any setting must verify.
    columnar: bool | None = None
    #: Round model of the recorded run.  Replay honours this (not the
    #: ``REPRO_EXECUTION_MODEL`` environment) so a recorded execution
    #: reproduces under any environment; recipes written before the model
    #: axis existed imply ``"lockstep"``.
    execution_model: str = "lockstep"
    model_options: Mapping[str, Any] = field(default_factory=dict)
    #: Transport of the *recorded* run — provenance, not a replay input.
    #: Replay always runs in-process: a TCP-recorded schedule (including
    #: transport crash faults, which the recorder sees as ordinary
    #: corruptions + omissions) deterministically reproduces in a single
    #: interpreter, which is the cross-transport equivalence guarantee.
    transport: str = "inprocess"
    transport_options: Mapping[str, Any] = field(default_factory=dict)
    max_rounds: int | None = None
    actions: tuple[RecordedAction, ...] = ()
    expected: Mapping[str, Any] | None = None
    expected_failure: Mapping[str, Any] | None = None
    note: str = ""

    # ------------------------------------------------------------------
    def with_actions(
        self, actions: Sequence[RecordedAction]
    ) -> ExecutionRecipe:
        """Copy of this recipe with a different adversary schedule."""
        return dataclasses.replace(self, actions=tuple(actions))

    def total_corruptions(self) -> int:
        return sum(len(action.corrupt) for action in self.actions)

    def total_omissions(self) -> int:
        return sum(len(action.omit) for action in self.actions)

    @property
    def failing(self) -> bool:
        """Whether this recipe records an invariant-violating run."""
        return self.expected_failure is not None


# ----------------------------------------------------------------------
# JSON payloads
# ----------------------------------------------------------------------
def recipe_payload(recipe: ExecutionRecipe) -> dict[str, Any]:
    """Serialize a recipe to JSON-safe primitives (schema-tagged)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "execution-recipe",
        "protocol": recipe.protocol,
        "n": recipe.n,
        "inputs": list(recipe.inputs) if recipe.inputs is not None else None,
        "t": recipe.t,
        "seed": recipe.seed,
        "graph_seed": recipe.graph_seed,
        "params": dataclasses.asdict(recipe.params),
        "options": dict(recipe.options),
        "multicast": recipe.multicast,
        "columnar": recipe.columnar,
        "execution_model": recipe.execution_model,
        "model_options": dict(recipe.model_options),
        "transport": recipe.transport,
        "transport_options": dict(recipe.transport_options),
        "max_rounds": recipe.max_rounds,
        "actions": [
            {
                "round": action.round,
                "corrupt": sorted(action.corrupt),
                "omit": list(canonical_omissions(action.omit)),
            }
            for action in recipe.actions
        ],
        "expected": (
            dict(recipe.expected) if recipe.expected is not None else None
        ),
        "expected_failure": (
            dict(recipe.expected_failure)
            if recipe.expected_failure is not None
            else None
        ),
        "note": recipe.note,
    }


def recipe_from_payload(data: Mapping[str, Any]) -> ExecutionRecipe:
    """Rebuild a recipe written by :func:`recipe_payload`.

    Rejects unknown schema versions and non-recipe payloads with
    ``ValueError`` before touching any field.
    """
    check_schema(dict(data), "recipe")
    kind = data.get("kind")
    if kind != "execution-recipe":
        raise ValueError(
            f"not an execution recipe: payload kind is {kind!r}"
        )
    inputs = data.get("inputs")
    return ExecutionRecipe(
        protocol=data["protocol"],
        n=data["n"],
        inputs=tuple(inputs) if inputs is not None else None,
        t=data.get("t"),
        seed=data["seed"],
        graph_seed=data.get("graph_seed", 0),
        params=ProtocolParams(**data["params"]),
        options=dict(data.get("options") or {}),
        multicast=data.get("multicast", True),
        columnar=data.get("columnar"),
        # Pre-model-axis recipes recorded lockstep executions.
        execution_model=data.get("execution_model", "lockstep"),
        model_options=dict(data.get("model_options") or {}),
        # Pre-transport-axis recipes recorded in-process executions.
        transport=data.get("transport", "inprocess"),
        transport_options=dict(data.get("transport_options") or {}),
        max_rounds=data.get("max_rounds"),
        actions=tuple(
            RecordedAction(
                round=entry["round"],
                corrupt=tuple(entry.get("corrupt", ())),
                # Recipes written before canonicalization may carry
                # duplicate indices; normalize on read so strict replay
                # sees the schedule the engine actually applied.
                omit=canonical_omissions(entry.get("omit", ())),
            )
            for entry in data.get("actions", ())
        ),
        expected=data.get("expected"),
        expected_failure=data.get("expected_failure"),
        note=data.get("note", ""),
    )


def save_recipe(recipe: ExecutionRecipe, path: str | Path) -> Path:
    """Write a recipe as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(recipe_payload(recipe), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_recipe(path: str | Path) -> ExecutionRecipe:
    """Read a recipe written by :func:`save_recipe`."""
    return recipe_from_payload(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
