"""Bar-Joseph/Ben-Or-style randomized biased-majority consensus.

The time-optimal crash-model ancestor of Algorithm 1 ([10], discussed in
Section B.3): every round every process broadcasts its candidate bit, counts
the received bits, and either follows a clear majority (margin beyond
``threshold ~ c*sqrt(n)``), decides (margin beyond ``2*threshold``), or flips
a fresh coin.  The adversary must remove ~sqrt(n) deviating coins per round
to stall it, which it can only do for ~t/sqrt(n) rounds.

Two roles in this repository:

* the **baseline** Table-1/§1 comparator in the (more benign) crash model,
  with full Theta(n^2)-bits-per-round broadcasts — the communication cost
  Algorithm 1's group machinery avoids;
* the **substrate of the Theorem-2 experiment**: ``coin_pids`` restricts
  which processes may call the random source, so the vote-balancing
  adversary can starve randomness-frugal configurations and the measured
  ``T x (R + T)`` product can be compared against ``t^2 / log n``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..runtime import (
    Adversary,
    ProcessEnv,
    Program,
    SyncProcess,
)

TAG_VOTE = 7
TAG_DECIDE = 8


class BenOrVotingProcess(SyncProcess):
    """One process of the broadcast biased-majority protocol.

    Public attributes (visible to the full-information adversary): ``b``,
    ``decided``, ``phase``.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        threshold: float | None = None,
        max_phases: int | None = None,
        coin_pids: frozenset[int] | None = None,
    ) -> None:
        super().__init__(pid, n)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        self.input_bit = input_bit
        self.b = input_bit
        self.decided = False
        self.phase = 0
        #: Margin (over half) needed to follow the majority; double it to
        #: decide.  Default ~ sqrt(n), the [10] scaling — capped below
        #: (n - 2) / 4 so the decide condition (margin > 2 * threshold)
        #: stays reachable even at tiny n, where the maximum possible
        #: margin is n / 2.
        self.threshold = (
            threshold
            if threshold is not None
            else max(1.0, min(math.sqrt(n), (n - 2) / 4))
        )
        self.max_phases = (
            max_phases
            if max_phases is not None
            else max(8, 4 * int(math.isqrt(n)) * max(1, int(math.log2(n))))
        )
        #: Processes allowed to call the random source; ``None`` = everyone.
        self.coin_pids = coin_pids

    def _may_flip(self) -> bool:
        return self.coin_pids is None or self.pid in self.coin_pids

    def program(self, env: ProcessEnv) -> Program:
        decided_value: int | None = None
        for phase in range(self.max_phases):
            self.phase = phase
            env.broadcast((TAG_VOTE, self.b))
            inbox = yield

            adopted: int | None = None
            ones = self.b
            total = 1
            for message in inbox:
                payload = message.payload
                if not isinstance(payload, tuple) or len(payload) != 2:
                    continue
                tag, value = payload
                if tag == TAG_DECIDE:
                    adopted = value
                elif tag == TAG_VOTE:
                    total += 1
                    ones += value
            if adopted is not None:
                decided_value = adopted
                break

            margin = ones - total / 2
            if margin > 2 * self.threshold:
                self.b = 1
                decided_value = 1
                break
            if margin < -2 * self.threshold:
                self.b = 0
                decided_value = 0
                break
            if margin > self.threshold:
                self.b = 1
            elif margin < -self.threshold:
                self.b = 0
            elif self._may_flip():
                self.b = env.random.bit()
            # Randomness-frugal processes keep their current bit in the
            # undecided band — the deterministic behaviour the Theorem-2
            # adversary exploits.

        if decided_value is None:
            # Phase budget exhausted (Monte Carlo cut-off): decide on the
            # current bit.  Benchmarks report this as a stall.
            decided_value = self.b

        self.decided = True
        self.b = decided_value
        # Two decision broadcasts so that even processes that crash-miss one
        # round still hear it before everyone exits.
        env.broadcast((TAG_DECIDE, decided_value))
        yield
        env.broadcast((TAG_DECIDE, decided_value))
        env.decide(decided_value)
        return None


def run_ben_or(
    inputs: Sequence[int],
    t: int = 0,
    adversary: Adversary | None = None,
    threshold: float | None = None,
    max_phases: int | None = None,
    coin_pids: frozenset[int] | None = None,
    seed: int = 0,
    max_rounds: int = 100_000,
    observers: Sequence = (),
):
    """Run the voting baseline end-to-end.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    return execute(
        "ben-or",
        inputs,
        t=t,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        observers=observers,
        threshold=threshold,
        max_phases=max_phases,
        coin_pids=coin_pids,
    )
