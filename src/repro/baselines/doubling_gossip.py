"""The Section-B.3 amortization experiment: doubling strategies vs omissions.

Appendix B.3 explains why the crash-model state of the art ([23], STOC'22)
cannot survive omission faults: those algorithms amortize communication
against fail-stops "e.g., by doubling the number of contacted processes
each time when too few responses are received", and

    "the adversary can control incoming/outgoing messages of the process
    that implements such doubling strategy, and enforce that the process
    inquires Theta(n) other processes before the adversary allows it to
    receive any messages.  This way even a single omission-faulty process
    may contribute linearly to the communication complexity."

This module makes that argument executable.  :class:`DoublingCollector` is
the canonical doubling primitive: it needs ``quorum`` responses and
contacts processes in exponentially growing batches until satisfied.
Against **crashes**, a faulty collector simply stops — zero further cost.
Against **omissions** (:class:`ResponseStarver`), the same faulty collector
keeps running: its requests are delivered (the adversary wants the system
to pay for the answers) while every response back to it is omitted, so it
escalates all the way to contacting everyone — ``Theta(n)`` requests *and*
``Theta(n)`` responses per faulty process.

The measured comparison lives in ``benchmarks/bench_b3_amortization.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..runtime import (
    Adversary,
    AdversaryAction,
    Message,
    NetworkView,
    ProcessEnv,
    Program,
    SyncProcess,
)

TAG_REQUEST = 14
TAG_RESPONSE = 15


class DoublingCollector(SyncProcess):
    """Collect ``quorum`` responses via exponentially growing contact waves.

    Wave k contacts the next ``2^k`` not-yet-contacted processes; every
    request is answered in the following round (by any live process).  The
    collector stops as soon as it has heard from ``quorum`` distinct
    responders, or when nobody is left to contact.

    Public state: ``contacted`` (how many requests it sent), ``responses``
    (distinct responders heard), ``satisfied``.
    """

    def __init__(self, pid: int, n: int, quorum: int) -> None:
        super().__init__(pid, n)
        if not 1 <= quorum <= n - 1:
            raise ValueError(
                f"quorum must be in [1, n-1], got {quorum} for n={n}"
            )
        self.quorum = quorum
        self.contacted = 0
        self.responses: set[int] = set()
        self.responses_sent = 0
        #: Responses sent, keyed by requester pid.
        self.responses_by_requester: dict[int, int] = {}
        self.satisfied = False

    def _answer_requests(self, env: ProcessEnv, inbox: list[Message]) -> None:
        for message in inbox:
            if (
                isinstance(message.payload, tuple)
                and message.payload
                and message.payload[0] == TAG_REQUEST
            ):
                self.responses_sent += 1
                self.responses_by_requester[message.sender] = (
                    self.responses_by_requester.get(message.sender, 0) + 1
                )
                env.send(message.sender, (TAG_RESPONSE, self.pid))

    def _collect_responses(self, inbox: list[Message]) -> None:
        for message in inbox:
            if (
                isinstance(message.payload, tuple)
                and message.payload
                and message.payload[0] == TAG_RESPONSE
            ):
                self.responses.add(message.sender)

    def program(self, env: ProcessEnv) -> Program:
        targets = [pid for pid in range(self.n) if pid != self.pid]
        wave = 0
        # Enough waves for the doubling to cover everyone, plus the final
        # response round; all collectors share this schedule (lockstep).
        max_waves = int(math.ceil(math.log2(self.n))) + 2
        while wave < max_waves:
            if not self.satisfied and self.contacted < len(targets):
                batch = targets[self.contacted: self.contacted + (1 << wave)]
                env.send_many(batch, (TAG_REQUEST, self.pid))
                self.contacted += len(batch)
            inbox = yield
            self._answer_requests(env, inbox)
            self._collect_responses(inbox)
            # One extra round so this wave's responses (sent above by the
            # peers) arrive before deciding whether to escalate.
            inbox = yield
            self._answer_requests(env, inbox)
            self._collect_responses(inbox)
            if len(self.responses) >= self.quorum:
                self.satisfied = True
            wave += 1
        env.decide(
            ("satisfied", len(self.responses))
            if self.satisfied
            else ("starved", len(self.responses))
        )
        return None


class CrashCollectors(Adversary):
    """Crash the victim collectors outright: the crash-model comparison.

    A crashed collector sends nothing, so its doubling strategy costs the
    system nothing further — the amortization [23] relies on.
    """

    def __init__(self, victims: Sequence[int]) -> None:
        self.victims = tuple(victims)
        self._started = False

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            corrupt = frozenset(self.victims[: view.budget_left])
        crashed = set(self.victims) & (view.faulty | corrupt)
        return AdversaryAction(
            corrupt=corrupt,
            omit=view.message_indices_touching(crashed),
        )


class ResponseStarver(Adversary):
    """Deliver the victims' requests but omit every response back to them.

    The B.3 omission strategy: the faulty collectors stay "alive" (their
    outgoing requests reach everyone, so everyone pays to answer) while
    their incoming responses vanish — forcing the full doubling escalation.
    """

    def __init__(self, victims: Sequence[int]) -> None:
        self.victims = tuple(victims)
        self._started = False

    def act(self, view: NetworkView) -> AdversaryAction:
        corrupt = frozenset()
        if not self._started:
            self._started = True
            corrupt = frozenset(self.victims[: view.budget_left])
        starved = set(self.victims) & (view.faulty | corrupt)
        omit = frozenset(
            index
            for index, message in enumerate(view.messages)
            if message.recipient in starved
            and isinstance(message.payload, tuple)
            and message.payload
            and message.payload[0] == TAG_RESPONSE
        )
        return AdversaryAction(corrupt=corrupt, omit=omit)


@dataclass(frozen=True)
class AmortizationPoint:
    """One measurement of the doubling-collector workload.

    The B.3 comparison is about what the *healthy* processes pay for the
    faulty collectors: ``healthy_responses`` counts answers sent by
    non-victims (a crashed collector's requests never arrive, an
    omission-starved collector's requests all do), and
    ``victim_requests`` shows the forced Theta(n) escalation.
    """

    n: int
    faulty: int
    messages: int
    bits: int
    victim_requests: int
    healthy_requests_max: int
    healthy_responses: int
    #: Responses healthy processes sent *to the victims* — the direct cost
    #: the victims impose (crash: ~0; omission: ~t * n).
    responses_to_victims: int


def run_collectors(
    n: int,
    t: int,
    adversary: Adversary | None,
    quorum: int | None = None,
    seed: int = 0,
    observers: Sequence = (),
):
    """All n processes collect concurrently under the given adversary.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    options = {} if quorum is None else {"quorum": quorum}
    return execute(
        "collectors",
        n=n,
        t=t,
        adversary=adversary,
        seed=seed,
        observers=observers,
        options=options,
    )


def measure_amortization(
    n: int,
    t: int,
    seed: int = 0,
) -> dict[str, AmortizationPoint]:
    """Measure the workload under no faults / crashes / response-starving.

    Returns the three labelled points whose comparison is the B.3 claim:
    ``omission.victim_requests ~ n`` while ``crash.victim_requests`` stays
    at the pre-crash waves, and total omission traffic exceeds the crash
    traffic by ~t*n messages.
    """
    victims = tuple(range(t))
    results = {}
    for label, adversary in (
        ("none", None),
        ("crash", CrashCollectors(victims) if t else None),
        ("omission", ResponseStarver(victims) if t else None),
    ):
        run = run_collectors(n, t, adversary, seed=seed)
        result, processes = run.result, run.processes
        victim_requests = max(
            (processes[pid].contacted for pid in victims), default=0
        )
        healthy_requests = [
            process.contacted
            for process in processes
            if process.pid not in victims
        ]
        healthy_responses = sum(
            process.responses_sent
            for process in processes
            if process.pid not in victims
        )
        responses_to_victims = sum(
            count
            for process in processes
            if process.pid not in victims
            for requester, count in process.responses_by_requester.items()
            if requester in victims
        )
        results[label] = AmortizationPoint(
            n=n,
            faulty=t,
            messages=result.metrics.messages_sent,
            bits=result.metrics.bits_sent,
            victim_requests=victim_requests,
            healthy_requests_max=max(healthy_requests, default=0),
            healthy_responses=healthy_responses,
            responses_to_victims=responses_to_victims,
        )
    return results
