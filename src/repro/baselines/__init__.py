"""Baseline consensus protocols the paper compares against.

* :class:`DolevStrongProcess` — the deterministic O(t)-round comparator
  ([15], also Algorithm 1's fallback);
* :class:`PhaseKingProcess` — classic deterministic phase-king, a second
  deterministic point of comparison;
* :class:`BenOrVotingProcess` — Bar-Joseph/Ben-Or-style randomized
  biased-majority voting with full per-round broadcasts (the crash-model
  ancestor Algorithm 1 economizes).
"""

from .ben_or import BenOrVotingProcess, run_ben_or
from .doubling_gossip import (
    AmortizationPoint,
    CrashCollectors,
    DoublingCollector,
    ResponseStarver,
    measure_amortization,
    run_collectors,
)
from .dolev_strong import (
    DolevStrongProcess,
    dolev_strong_consensus,
    run_dolev_strong,
)
from .reliable_broadcast import BOTTOM, TRBProcess, run_trb
from .phase_king import PhaseKingProcess, run_phase_king

__all__ = [
    "DolevStrongProcess",
    "dolev_strong_consensus",
    "run_dolev_strong",
    "PhaseKingProcess",
    "run_phase_king",
    "BenOrVotingProcess",
    "run_ben_or",
    "AmortizationPoint",
    "CrashCollectors",
    "DoublingCollector",
    "ResponseStarver",
    "measure_amortization",
    "run_collectors",
    "BOTTOM",
    "TRBProcess",
    "run_trb",
]
