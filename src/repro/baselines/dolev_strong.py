"""Dolev-Strong-style deterministic consensus for the omission model.

Algorithm 1 line 18 falls back to "the deterministic synchronous consensus
algorithm given in Theorem 4 in [15]" (Dolev & Strong, SICOMP'83).  The
original uses signatures against Byzantine faults; in the *omission* model
processes never lie, so a relay chain of distinct process ids plays the role
of the signature chain and is unforgeable (see DESIGN.md, Substitutions).

Protocol (t+1 rounds, all broadcast traffic batched one message per pair per
round):

* every participant is the source of one broadcast; round 1 it sends
  ``(source=self, value, chain=(self,))``;
* a record arriving at the end of round r is *accepted* iff its chain has
  exactly r distinct ids, starts at its source, ends at the message's actual
  sender, and does not contain the receiver; first accepted value per source
  wins (sources cannot equivocate in this fault model);
* records accepted before round t+1 are relayed next round with the
  receiver's id appended;
* after round t+1, the decision is the majority over accepted source values
  (ties toward 1) — identical accepted sets at all correct participants give
  agreement, and unanimity of inputs gives validity.

This is simultaneously the paper's deterministic *baseline* (the 40-year-old
O(t)-round, O(n^2 t)-bit comparator from the introduction) and the
low-probability fallback branch of Algorithms 1 and 4.
"""

from __future__ import annotations

from typing import Any

from ..runtime import Message, ProcessEnv, Program, SyncProcess

TAG_DS = 5

#: A relayed record: (source, value, chain-of-distinct-relayer-ids).
Record = tuple[int, int, tuple[int, ...]]


def _valid_record(
    record: Any, round_index: int, sender: int, receiver: int
) -> bool:
    """Check the chain discipline for a record received in ``round_index``."""
    if not (isinstance(record, tuple) and len(record) == 3):
        return False
    source, value, chain = record
    if value not in (0, 1):
        return False
    if not isinstance(chain, tuple) or len(chain) != round_index:
        return False
    if len(set(chain)) != len(chain):
        return False
    if chain[0] != source or chain[-1] != sender:
        return False
    if receiver in chain:
        return False
    return True


def dolev_strong_consensus(
    env: ProcessEnv,
    t: int,
    input_bit: int,
    participating: bool = True,
) -> Program:
    """Run the t+1-round chain consensus; returns the decision bit.

    Non-participating callers (``participating=False``) stay silent but keep
    lockstep, consuming the same ``t + 1`` rounds and returning ``None``.
    """
    pid = env.pid
    rounds = t + 1
    accepted: dict[int, int] = {}
    pending: list[Record] = []
    if participating:
        accepted[pid] = input_bit
        pending.append((pid, input_bit, (pid,)))

    for round_index in range(1, rounds + 1):
        if participating and pending:
            env.broadcast((TAG_DS, tuple(pending)))
        pending = []
        inbox: list[Message] = yield
        if not participating:
            continue
        for message in inbox:
            payload = message.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == TAG_DS
            ):
                continue
            for record in payload[1]:
                if not _valid_record(record, round_index, message.sender, pid):
                    continue
                source, value, chain = record
                if source in accepted:
                    continue
                accepted[source] = value
                if round_index < rounds:
                    pending.append((source, value, chain + (pid,)))

    if not participating:
        return None
    ones = sum(1 for value in accepted.values() if value == 1)
    zeros = len(accepted) - ones
    return 1 if ones >= zeros else 0


class DolevStrongProcess(SyncProcess):
    """Standalone baseline: every process participates and decides.

    The 40-year-old deterministic comparator of the paper's introduction:
    O(t) rounds and O(n^2 t)-scale communication against any omission
    adversary with ``t < n/2`` (the majority-aggregation step needs honest
    sources to dominate for validity).
    """

    def __init__(self, pid: int, n: int, input_bit: int, t: int) -> None:
        super().__init__(pid, n)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        if not 0 <= t < n:
            raise ValueError(f"fault budget t={t} must satisfy 0 <= t < n")
        self.input_bit = input_bit
        self.t = t
        self.decision: int | None = None

    def program(self, env: ProcessEnv) -> Program:
        decision = yield from dolev_strong_consensus(
            env, self.t, self.input_bit, participating=True
        )
        self.decision = decision
        env.decide(decision)
        return None


def run_dolev_strong(
    inputs,
    t,
    adversary=None,
    seed: int = 0,
    max_rounds: int = 100_000,
    observers=(),
):
    """Run the standalone Dolev-Strong baseline end-to-end.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    return execute(
        "dolev-strong",
        inputs,
        t=t,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        observers=observers,
    )
