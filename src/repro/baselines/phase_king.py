"""Phase-king deterministic consensus (Berman-Garay-Perry).

A second deterministic comparator: t+1 phases of 3 rounds, O(n^2) messages
per phase of O(1) bits each, correct for ``n > 4t`` under Byzantine faults —
hence under general omissions, which are strictly weaker.  Unlike the
Dolev-Strong chain protocol it needs no growing relay chains, so its bit
complexity is O(n^2 t): the classic rounds-for-bits alternative the
fault-tolerance literature trades between.

Phase k (king = process k-1):

1. everyone broadcasts its bit; each process takes the majority ``m`` of
   received bits (its own included) and remembers the majority's support;
2. the king broadcasts ``m``;
3. a process keeps ``m`` if its support was at least ``n - t``; otherwise it
   adopts the king's bit (default 0 if the king stayed silent).

After phase t+1 every process decides its bit: some phase has a non-faulty
king, which unifies all non-faulty bits, and unified bits survive later
phases because support then stays at least ``n - t``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..runtime import (
    Adversary,
    ProcessEnv,
    Program,
    SyncProcess,
)

TAG_PK_VOTE = 9
TAG_PK_KING = 10


class PhaseKingProcess(SyncProcess):
    """One process of phase-king consensus; requires ``n > 4t``."""

    def __init__(self, pid: int, n: int, input_bit: int, t: int) -> None:
        super().__init__(pid, n)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        if n <= 4 * t:
            raise ValueError(
                f"phase-king requires n > 4t; got n={n}, t={t}"
            )
        self.input_bit = input_bit
        self.b = input_bit
        self.t = t
        self.decision: int | None = None

    def program(self, env: ProcessEnv) -> Program:
        n, t = self.n, self.t
        for phase in range(t + 1):
            king = phase
            # Round 1: universal exchange.
            env.broadcast((TAG_PK_VOTE, self.b))
            inbox = yield
            ones = self.b
            total = 1
            for message in inbox:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == TAG_PK_VOTE
                ):
                    total += 1
                    ones += payload[1]
            zeros = total - ones
            majority = 1 if ones >= zeros else 0
            support = ones if majority == 1 else zeros

            # Round 2: the king proposes its majority value.
            if self.pid == king:
                env.broadcast((TAG_PK_KING, majority))
            inbox = yield
            king_value = 0
            for message in inbox:
                payload = message.payload
                if (
                    message.sender == king
                    and isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == TAG_PK_KING
                ):
                    king_value = payload[1]
            if self.pid == king:
                king_value = majority

            # Round 3 (decision rule; no traffic needed).
            if support >= n - t:
                self.b = majority
            else:
                self.b = king_value
            yield

        self.decision = self.b
        env.decide(self.b)
        return None


def run_phase_king(
    inputs: Sequence[int],
    t: int,
    adversary: Adversary | None = None,
    seed: int = 0,
    max_rounds: int = 100_000,
    observers: Sequence = (),
):
    """Run phase-king end-to-end.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    return execute(
        "phase-king",
        inputs,
        t=t,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        observers=observers,
    )
