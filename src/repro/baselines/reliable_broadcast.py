"""Terminating Reliable Broadcast (TRB) under omission faults, with early
stopping.

The related-work section cites Roşu [34] ("Early-stopping terminating
reliable broadcast protocol for general-omission failures"): a designated
sender broadcasts one value; every correct process must *deliver* the same
value — the sender's value if the sender is correct, possibly the default
``BOTTOM`` otherwise — and an early-stopping protocol terminates in
``O(min(f, t) + const)`` rounds where ``f`` is the number of *actual*
faults, not the budget.

Implementation: the single-source slice of the Dolev-Strong chain relay
(unforgeable under omissions — processes never lie) plus the classic
early-stopping rule:

* a process that has accepted the value relays it once and, from the next
  round on, broadcasts a ``QUIET`` vote;
* a process that sees ``n - t`` QUIET votes in one round knows every
  correct process has accepted (any n-t set contains a correct witness,
  and a correct QUIET sender reaches everyone), so it delivers and stops
  one round later;
* with no failures this fires after ~3 rounds regardless of t; each actual
  fault can delay acceptance by at most one chain hop, recovering the
  ``min(f + O(1), t + 1)`` shape that the benchmarks measure.

Against a *correct* sender the value also satisfies integrity trivially;
against a faulty sender all correct processes converge on the value or on
``BOTTOM`` together at the ``t + 1`` horizon.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..runtime import (
    Adversary,
    ProcessEnv,
    Program,
    SyncProcess,
)

TAG_TRB = 19
TAG_QUIET = 20

#: The default "sender was faulty" delivery.
BOTTOM = "BOTTOM"


class TRBProcess(SyncProcess):
    """One process of early-stopping terminating reliable broadcast.

    Public state: ``accepted`` (the value once accepted), ``delivered``
    (the final delivery), ``delivery_round`` (when it stopped).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        sender: int,
        t: int,
        value: int | None = None,
    ) -> None:
        super().__init__(pid, n)
        if not 0 <= sender < n:
            raise ValueError(f"sender {sender} out of range for n={n}")
        if not 0 <= t < n:
            raise ValueError(f"fault budget t={t} must satisfy 0 <= t < n")
        if pid == sender and value is None:
            raise ValueError("the sender needs a value to broadcast")
        self.sender = sender
        self.t = t
        self.value = value
        self.accepted: int | None = value if pid == sender else None
        self.delivered: object = None
        self.delivery_round: int | None = None

    def program(self, env: ProcessEnv) -> Program:
        n, t = self.n, self.t
        horizon = t + 2
        pending_chain: tuple[int, ...] | None = None
        if self.pid == self.sender:
            pending_chain = (self.pid,)
        quiet_next = self.accepted is not None
        stop_after: int | None = None

        for round_index in range(1, horizon + 2):
            if stop_after is not None and round_index > stop_after:
                break
            # ---- Send phase. ----------------------------------------------
            if pending_chain is not None:
                env.broadcast((TAG_TRB, self.accepted, pending_chain))
                pending_chain = None
                quiet_next = True
            elif quiet_next:
                env.broadcast((TAG_QUIET,))

            inbox = yield

            # ---- Accept via valid chains (Dolev-Strong discipline). -------
            quiet_votes = 1 if quiet_next else 0
            for message in inbox:
                payload = message.payload
                if not isinstance(payload, tuple) or not payload:
                    continue
                if payload[0] == TAG_QUIET:
                    quiet_votes += 1
                    continue
                if payload[0] != TAG_TRB or len(payload) != 3:
                    continue
                _, value, chain = payload
                if self.accepted is not None:
                    continue
                if (
                    isinstance(chain, tuple)
                    and len(chain) == round_index
                    and len(set(chain)) == len(chain)
                    and chain[0] == self.sender
                    and chain[-1] == message.sender
                    and self.pid not in chain
                ):
                    self.accepted = value
                    if round_index < horizon:
                        pending_chain = chain + (self.pid,)
                    else:
                        quiet_next = True

            # ---- Early stopping: a QUIET quorum ends the protocol. --------
            if stop_after is None and quiet_votes >= n - t:
                # One final QUIET round lets slower processes see the
                # quorum too, then everyone may stop.
                stop_after = round_index + 1

        self.delivered = self.accepted if self.accepted is not None else BOTTOM
        env.decide(self.delivered)
        self.delivery_round = env.round
        return None


def run_trb(
    n: int,
    sender: int,
    value: int,
    t: int,
    adversary: Adversary | None = None,
    seed: int = 0,
    observers: Sequence = (),
):
    """Run one TRB instance.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    return execute(
        "trb",
        n=n,
        t=t,
        adversary=adversary,
        seed=seed,
        observers=observers,
        sender=sender,
        value=value,
    )
