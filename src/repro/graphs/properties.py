"""Checkers for the Theorem-4 properties of the spreading graph.

Theorem 4: for ``Delta = Theta(log n)``, the random graph ``R(n, Delta/(n-1))``
whp (i) is ``(n/10)``-expanding, (ii) is ``(n/10, Delta/15)``-edge-sparse, and
(iii) has all degrees within ``[19/20, 21/20] * Delta``.

Exact verification of (i) and (ii) is exponential (they quantify over all
vertex subsets), so the checkers verify exhaustively for tiny n and fall back
to randomized certification (sampled subsets, adversarially greedy subsets)
for realistic n — which is exactly how such properties are exercised by the
protocol's adversaries anyway.
"""

from __future__ import annotations

import itertools
import random

from ..runtime.randomness import stable_seed
from dataclasses import dataclass

from .graph import SpreadingGraph

#: Below this vertex count the subset-quantified checks run exhaustively.
EXHAUSTIVE_LIMIT = 14


@dataclass(frozen=True)
class DegreeReport:
    """Result of the degree-concentration check (Theorem 4 (iii))."""

    minimum: int
    maximum: int
    expected: int
    within_bounds: bool


def degree_report(
    graph: SpreadingGraph,
    delta: int,
    lower_factor: float = 19 / 20,
    upper_factor: float = 21 / 20,
) -> DegreeReport:
    """Check all degrees lie in ``[lower, upper] * delta``."""
    if graph.n == 0:
        return DegreeReport(0, 0, delta, True)
    degrees = [graph.degree(v) for v in range(graph.n)]
    minimum, maximum = min(degrees), max(degrees)
    capped = min(delta, graph.n - 1)
    within = (
        minimum >= lower_factor * capped and maximum <= upper_factor * capped
    )
    return DegreeReport(minimum, maximum, capped, within)


def is_expanding(
    graph: SpreadingGraph,
    ell: int,
    samples: int = 200,
    seed: int = 0,
) -> bool:
    """Check ``ell``-expansion: every two ``ell``-subsets share an edge.

    Exhaustive for small graphs; otherwise tests ``samples`` random disjoint
    subset pairs plus greedy low-degree pairs (the hardest candidates).
    """
    n = graph.n
    if ell <= 0 or 2 * ell > n:
        return True  # vacuous: no two disjoint subsets of this size exist
    if n <= EXHAUSTIVE_LIMIT:
        vertices = range(n)
        for left in itertools.combinations(vertices, ell):
            remaining = [v for v in vertices if v not in left]
            left_set = frozenset(left)
            for right in itertools.combinations(remaining, ell):
                if graph.edges_between(left_set, frozenset(right)) == 0:
                    return False
        return True

    rng = random.Random(stable_seed("expansion-check", seed))
    order = sorted(range(n), key=graph.degree)
    # Greedy hardest case: the lowest-degree vertices split into two sets.
    low = order[: 2 * ell]
    if graph.edges_between(frozenset(low[:ell]), frozenset(low[ell:])) == 0:
        return False
    for _ in range(samples):
        chosen = rng.sample(range(n), 2 * ell)
        if graph.edges_between(
            frozenset(chosen[:ell]), frozenset(chosen[ell:])
        ) == 0:
            return False
    return True


def is_edge_sparse(
    graph: SpreadingGraph,
    ell: int,
    alpha: float,
    samples: int = 200,
    seed: int = 0,
) -> bool:
    """Check ``(ell, alpha)``-edge-sparsity: every set X with ``|X| <= ell``
    spans at most ``alpha * |X|`` internal edges.

    Exhaustive for small graphs; otherwise certifies via (a) greedy densest
    candidates grown around high-degree vertices and (b) random subsets.
    """
    n = graph.n
    ell = min(ell, n)
    if ell <= 1:
        return True
    if n <= EXHAUSTIVE_LIMIT:
        for size in range(2, ell + 1):
            for subset in itertools.combinations(range(n), size):
                if graph.internal_edge_count(subset) > alpha * size:
                    return False
        return True

    rng = random.Random(stable_seed("sparsity-check", seed))
    # Greedy densest candidate: grow a set around each high-degree vertex by
    # repeatedly adding the neighbour with most links into the set.
    order = sorted(range(n), key=graph.degree, reverse=True)
    for root in order[:5]:
        current = {root}
        while len(current) < ell:
            frontier: dict[int, int] = {}
            for member in current:
                for neighbor in graph.neighbors(member):
                    if neighbor not in current:
                        frontier[neighbor] = frontier.get(neighbor, 0) + 1
            if not frontier:
                break
            best = max(frontier, key=lambda v: (frontier[v], -v))
            current.add(best)
            if graph.internal_edge_count(current) > alpha * len(current):
                return False
    for _ in range(samples):
        size = rng.randrange(2, ell + 1)
        subset = rng.sample(range(n), size)
        if graph.internal_edge_count(subset) > alpha * size:
            return False
    return True


@dataclass(frozen=True)
class Theorem4Report:
    """Joint result of all three Theorem-4 property checks."""

    degrees: DegreeReport
    expanding: bool
    edge_sparse: bool

    @property
    def all_hold(self) -> bool:
        return self.degrees.within_bounds and self.expanding and self.edge_sparse


def theorem4_report(
    graph: SpreadingGraph,
    delta: int,
    expansion_fraction: float = 0.1,
    sparsity_alpha_divisor: float = 15.0,
    samples: int = 200,
    seed: int = 0,
) -> Theorem4Report:
    """Run the three Theorem-4 checks with the paper's default shapes."""
    ell = max(1, int(graph.n * expansion_fraction))
    alpha = max(1.0, delta / sparsity_alpha_divisor)
    return Theorem4Report(
        degrees=degree_report(graph, delta),
        expanding=is_expanding(graph, ell, samples=samples, seed=seed),
        edge_sparse=is_edge_sparse(graph, ell, alpha, samples=samples, seed=seed),
    )
