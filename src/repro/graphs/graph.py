"""A minimal immutable undirected graph used for spreading communication.

The protocols only need neighbourhood queries, degrees, and subgraph degree
counts, so this avoids pulling a full graph library into the hot path.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


class SpreadingGraph:
    """Undirected graph on vertices ``0..n-1`` with frozen adjacency."""

    __slots__ = ("n", "_adjacency", "_edge_count")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        adjacency: list[set[int]] = [set() for _ in range(n)]
        edge_count = 0
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if v not in adjacency[u]:
                adjacency[u].add(v)
                adjacency[v].add(u)
                edge_count += 1
        self.n = n
        self._adjacency: tuple[frozenset[int], ...] = tuple(
            frozenset(neighbors) for neighbors in adjacency
        )
        self._edge_count = edge_count

    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> frozenset[int]:
        """The neighbour set of vertex ``v``."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with u < v."""
        for u in range(self.n):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def degree_within(self, v: int, members: frozenset[int] | set[int]) -> int:
        """Number of neighbours of ``v`` inside ``members``."""
        return len(self._adjacency[v] & members)

    def internal_edge_count(self, members: Sequence[int] | set[int]) -> int:
        """Number of edges with both endpoints in ``members``."""
        member_set = set(members)
        total = 0
        for u in member_set:
            total += len(self._adjacency[u] & member_set)
        return total // 2

    def edges_between(
        self, left: set[int] | frozenset[int], right: set[int] | frozenset[int]
    ) -> int:
        """Number of edges with one endpoint in each (disjoint) set."""
        small, large = (left, right) if len(left) <= len(right) else (right, left)
        large_set = set(large)
        return sum(len(self._adjacency[u] & large_set) for u in small)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpreadingGraph(n={self.n}, edges={self._edge_count})"
