"""Robust cores and dense neighbourhoods (Lemmas 3 and 4).

Lemma 4 states that after removing any set ``T`` of at most ``n/15`` vertices
from a Theorem-4 graph, there remains a set ``A`` of at least
``n - 4/3 |T|`` vertices, disjoint from ``T``, in which every vertex keeps at
least ``Delta/3`` neighbours.  Its proof is constructive: repeatedly peel any
vertex with too many neighbours already peeled.  :func:`robust_core`
implements exactly that peeling, which is also the graph-theoretic skeleton
of the protocol's operative/inoperative classification.

Lemma 3 concerns ``(gamma, delta)``-dense-neighbourhoods: sets around a
vertex whose inner members all keep ``delta`` neighbours inside the set; in a
Theorem-4 graph they grow geometrically until they span ``n/10`` vertices.
:func:`dense_neighborhood_layers` measures that growth.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .graph import SpreadingGraph


def robust_core(
    graph: SpreadingGraph,
    removed: Iterable[int],
    degree_threshold: int,
) -> frozenset[int]:
    """Largest set disjoint from ``removed`` where every vertex keeps
    ``degree_threshold`` in-set neighbours (the Lemma-4 set ``A``).

    Standard iterative peeling (a generalized k-core): start from
    ``V \\ removed`` and delete vertices whose in-set degree drops below the
    threshold, cascading until stable.  Runs in O(V + E).
    """
    removed_set = set(removed)
    alive = [v not in removed_set for v in range(graph.n)]
    in_degree = [0] * graph.n
    for v in range(graph.n):
        if alive[v]:
            in_degree[v] = sum(1 for u in graph.neighbors(v) if alive[u])

    queue = deque(
        v for v in range(graph.n) if alive[v] and in_degree[v] < degree_threshold
    )
    while queue:
        v = queue.popleft()
        if not alive[v]:
            continue
        alive[v] = False
        for u in graph.neighbors(v):
            if alive[u]:
                in_degree[u] -= 1
                if in_degree[u] < degree_threshold:
                    queue.append(u)
    return frozenset(v for v in range(graph.n) if alive[v])


def connected_components(
    graph: SpreadingGraph, members: frozenset[int]
) -> list[frozenset[int]]:
    """Connected components of the subgraph induced by ``members``."""
    unvisited = set(members)
    components: list[frozenset[int]] = []
    while unvisited:
        root = next(iter(unvisited))
        component = {root}
        unvisited.discard(root)
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in unvisited:
                    unvisited.discard(u)
                    component.add(u)
                    queue.append(u)
        components.append(frozenset(component))
    return components


def subgraph_diameter(graph: SpreadingGraph, members: frozenset[int]) -> int:
    """Exact diameter of the induced subgraph (∞ → ``-1`` if disconnected).

    BFS from every member — fine for the sizes used in tests and benches.
    """
    member_set = set(members)
    if not member_set:
        return 0
    worst = 0
    for source in member_set:
        distances = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in member_set and u not in distances:
                    distances[u] = distances[v] + 1
                    queue.append(u)
        if len(distances) != len(member_set):
            return -1
        worst = max(worst, max(distances.values()))
    return worst


def dense_neighborhood_layers(
    graph: SpreadingGraph,
    vertex: int,
    members: frozenset[int],
    max_depth: int,
) -> list[int]:
    """Sizes of BFS balls around ``vertex`` within ``members``.

    Returns ``[|B_0|, |B_1|, ..., |B_max_depth|]`` where ``B_d`` is the set of
    members within distance d — the quantity Lemma 3 lower-bounds by
    ``min(2^d, n/10)`` when ``members`` is a ``Delta/3`` robust core.
    """
    if vertex not in members:
        raise ValueError(f"vertex {vertex} is not a member of the core")
    member_set = set(members)
    distances = {vertex: 0}
    queue = deque([vertex])
    while queue:
        v = queue.popleft()
        if distances[v] >= max_depth:
            continue
        for u in graph.neighbors(v):
            if u in member_set and u not in distances:
                distances[u] = distances[v] + 1
                queue.append(u)
    sizes = []
    for depth in range(max_depth + 1):
        sizes.append(sum(1 for d in distances.values() if d <= depth))
    return sizes
