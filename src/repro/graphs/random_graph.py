"""Construction of the predetermined spreading graph (Theorem 4).

The paper has every process locally pre-compute the *same* sparse random
graph ``R(n, Delta/(n-1))`` (e.g. the lexicographically smallest one with the
Theorem-4 properties); no communication or protocol randomness is spent on
it.  We reproduce that by deriving the graph deterministically from
``(n, delta, seed)`` with a private PRNG stream, so all processes — and all
reruns — agree on it for free.

Generation uses the standard geometric-skip sampler for ``G(n, p)`` so that
building graphs at n in the thousands stays fast.
"""

from __future__ import annotations

import math
import random

from ..runtime.randomness import stable_seed

from .graph import SpreadingGraph


def gnp_edges(
    n: int, p: float, rng: random.Random
) -> list[tuple[int, int]]:
    """Sample the edge set of ``G(n, p)`` via geometric jumps.

    Iterates the ``n*(n-1)/2`` potential edges in lexicographic order,
    skipping ahead by geometrically distributed gaps — O(#edges) time.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    edges: list[tuple[int, int]] = []
    if n < 2 or p == 0.0:
        return edges
    if p == 1.0:
        return [(u, v) for u in range(n) for v in range(u + 1, n)]

    log_q = math.log1p(-p)
    total_pairs = n * (n - 1) // 2
    index = -1
    while True:
        gap = int(math.log(1.0 - rng.random()) / log_q) + 1
        index += gap
        if index >= total_pairs:
            break
        # Invert the pair index to (u, v) with u < v.
        u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * index)) / 2)
        # Guard against floating point off-by-ones near row boundaries.
        while index >= (u + 1) * n - (u + 1) * (u + 2) // 2:
            u += 1
        while u > 0 and index < u * n - u * (u + 1) // 2:
            u -= 1
        row_start = u * n - u * (u + 1) // 2
        v = u + 1 + (index - row_start)
        edges.append((u, v))
    return edges


def spreading_graph(n: int, delta: int, seed: int = 0) -> SpreadingGraph:
    """Build the predetermined spreading graph for an n-process system.

    Parameters
    ----------
    n:
        Number of vertices (processes).
    delta:
        Target expected degree ``Delta``; the edge probability is
        ``delta / (n - 1)`` capped at 1 (a complete graph), matching
        Theorem 4's ``R(n, Delta/(n-1))``.
    seed:
        Determinism handle; the same ``(n, delta, seed)`` always yields the
        same graph.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if n == 1 or delta == 0:
        return SpreadingGraph(n, [])
    p = min(1.0, delta / (n - 1))
    rng = random.Random(stable_seed("spreading-graph", n, delta, seed))
    return SpreadingGraph(n, gnp_edges(n, p, rng))
