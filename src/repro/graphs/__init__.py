"""Spreading-graph machinery (Theorem 4, Lemmas 3-4, Figure 1 overlay).

* :func:`spreading_graph` — deterministic ``R(n, Delta/(n-1))`` construction;
* :func:`theorem4_report` and friends — property checkers (degree
  concentration, expansion, edge-sparsity);
* :func:`robust_core` — the Lemma-4 peeling that underlies the
  operative/inoperative classification;
* :func:`dense_neighborhood_layers`, :func:`subgraph_diameter` — Lemma-3
  growth and "shallow" diameter measurements.
"""

from .cores import (
    connected_components,
    dense_neighborhood_layers,
    robust_core,
    subgraph_diameter,
)
from .graph import SpreadingGraph
from .properties import (
    DegreeReport,
    Theorem4Report,
    degree_report,
    is_edge_sparse,
    is_expanding,
    theorem4_report,
)
from .random_graph import gnp_edges, spreading_graph

__all__ = [
    "SpreadingGraph",
    "spreading_graph",
    "gnp_edges",
    "DegreeReport",
    "Theorem4Report",
    "degree_report",
    "is_expanding",
    "is_edge_sparse",
    "theorem4_report",
    "robust_core",
    "connected_components",
    "subgraph_diameter",
    "dense_neighborhood_layers",
]
