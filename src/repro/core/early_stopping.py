"""Early-stopping variant of Algorithm 1 (a Section-6 future-work item).

Algorithm 1 always runs its full ``Theta(t/sqrt(n) log n)`` epoch budget —
even when the very first epoch already unified the candidate bits (e.g. on
unanimous inputs, where the paper's validity argument shows no coin is ever
touched).  The omission literature the paper cites ([33], [34]) studies
*early-stopping* protocols whose running time adapts to the actual number
of failures; this module brings that idea to Algorithm 1:

After every epoch, one extra *poll* round is inserted: processes whose
safety flag (line 12) is set broadcast READY.  A process that receives
READY from **more than n/2 distinct processes** exits the epoch loop
immediately and proceeds to the dissemination round.

Why the majority rule keeps the protocol safe:

* **No premature exit.** READY senders are ``decided`` processes, so an
  exit implies more than n/2 processes passed the 27/30 safety threshold —
  by the Lemma-11 argument all operative processes then share one candidate
  bit, and that bit can never change again (unanimity is absorbing).
* **Desynchronization is harmless.** The adversary can deliver faulty
  READYs selectively, so *different* processes may exit in different
  epochs.  Stragglers keep running epochs among a shrinking population:
  either they keep their (already unified) bit — unanimous counts are
  absorbing — or they lose quorums and go inoperative; both paths end in
  the same decision value through lines 14-20.  Phase misalignment is
  tolerated because every sub-protocol dispatches on message tags and
  ignores foreign traffic.

The variant's win is measured in `benchmarks/bench_early_stopping.py`:
unanimous or skewed inputs finish after one epoch instead of the full
budget, and the saving shrinks as the adversary forces more epochs — the
"adapt to actual faults" behaviour early-stopping is about.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..baselines.dolev_strong import dolev_strong_consensus
from ..params import ProtocolParams
from ..runtime import (
    Adversary,
    Message,
    ProcessEnv,
    Program,
    idle_rounds,
)
from .aggregation import group_bits_aggregation
from .consensus import (
    ConsensusRun,
    CoreState,
    OptimalOmissionsConsensus,
    TAG_DECISION,
    _decision_from,
    shared_spreading_graph,
)
from .partition import cached_bag_tree, cached_sqrt_partition, global_stage_count
from .spreading import SpreadingState, group_bits_spreading
from .voting import apply_vote_rule

TAG_READY = 13


def _ready_count(inbox: list[Message]) -> int:
    senders = {
        message.sender
        for message in inbox
        if isinstance(message.payload, tuple)
        and len(message.payload) == 1
        and message.payload[0] == TAG_READY
    }
    return len(senders)


class EarlyStoppingConsensus(OptimalOmissionsConsensus):
    """Algorithm 1 with a per-epoch READY poll and majority early exit.

    Public state adds ``exited_epoch`` — the epoch after which this process
    left the loop (equal to the full budget when it never exited early).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.exited_epoch: int | None = None

    def epoch_rounds(self) -> int:
        """One poll round on top of the base epoch length."""
        return super().epoch_rounds() + 1

    def program(self, env: ProcessEnv) -> Program:
        n, params = self.n, self.params
        state: CoreState = self.state
        partition = cached_sqrt_partition(n)
        my_group = partition.group_index_of(self.pid)
        group = partition.group_members(my_group)
        tree = cached_bag_tree(group)
        stage_budget = global_stage_count(partition)
        spread_rounds = params.spread_rounds(n)
        degree_threshold = params.operative_degree_threshold(n)
        graph = shared_spreading_graph(n, params.delta(n), self.graph_seed)
        spreading_state = SpreadingState(
            neighbors=tuple(sorted(graph.neighbors(self.pid)))
        )

        for epoch in range(self.num_epochs):
            state.epoch = epoch
            aggregation = yield from group_bits_aggregation(
                env, group, tree, state.operative, state.b, params,
                stage_budget,
            )
            if state.operative and not aggregation.operative:
                state.operative = False
            if state.operative:
                spread = yield from group_bits_spreading(
                    env,
                    spreading_state,
                    partition.group_count,
                    my_group,
                    (aggregation.ones, aggregation.zeros),
                    spread_rounds,
                    degree_threshold,
                )
                if not spread.operative:
                    state.operative = False
                else:
                    outcome = apply_vote_rule(
                        spread.ones, spread.zeros, params, env.random
                    )
                    state.b = outcome.bit
                    if outcome.decided:
                        state.decided = True
            else:
                yield from idle_rounds(env, spread_rounds)

            # ---- The poll round: READY broadcast + majority exit. --------
            if state.decided:
                env.broadcast((TAG_READY,))
            inbox = yield
            # Count distinct READY senders; the sender itself counts too.
            ready = _ready_count(inbox) + (1 if state.decided else 0)
            if 2 * ready > n:
                self.exited_epoch = epoch
                self._ready_seen = ready
                break

        early_exit = self.exited_epoch is not None
        if self.exited_epoch is None:
            self.exited_epoch = self.num_epochs
        state.epoch = self.num_epochs

        # ---- Dissemination round (lines 14-16). ---------------------------
        if state.operative and state.decided:
            env.broadcast((TAG_DECISION, state.b))
        inbox = yield
        received = _decision_from(inbox)
        if received is not None and not (state.operative and state.decided):
            state.b = received
        if state.decided or (not state.operative and received is not None):
            env.decide(state.b)
            # Straggler safety net: selective READY delivery at faulty
            # senders can leave a non-faulty process behind in the epoch
            # loop.  Unless the poll proved n - t processes ready (then
            # every non-faulty process exited this same epoch), linger
            # silently and re-broadcast the decision exactly when the
            # full-budget schedule reaches its own dissemination round, so
            # any straggler's line-15 / wait-loop inbox catches it.
            ready_seen = getattr(self, "_ready_seen", 0)
            if early_exit and ready_seen < n - self.t:
                per_epoch = self.epoch_rounds()
                consumed = (self.exited_epoch + 1) * per_epoch + 1
                full_dissemination = self.num_epochs * per_epoch
                lag = full_dissemination - consumed
                if lag >= 0:
                    yield from idle_rounds(env, lag)
                    env.broadcast((TAG_DECISION, state.b))
            return None

        # ---- Fallback (lines 17-20), as in the base protocol. -------------
        self.used_fallback = True
        if state.operative:
            decision = yield from dolev_strong_consensus(
                env, self.t, state.b, participating=True
            )
            state.b = decision
            env.broadcast((TAG_DECISION, decision))
            env.decide(decision)
            return None
        for _ in range(self.t + 3 + self.num_epochs * self.epoch_rounds()):
            inbox = yield
            received = _decision_from(inbox)
            if received is not None:
                state.b = received
                env.decide(received)
                return None
        return None


def run_early_stopping_consensus(
    inputs: Sequence[int],
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    num_epochs: int | None = None,
    max_rounds: int = 200_000,
    observers: Sequence = (),
) -> ConsensusRun:
    """Run the early-stopping variant end to end (API of
    :func:`repro.core.run_consensus`).  Thin wrapper over
    :func:`repro.harness.execute`."""
    from ..harness import execute

    return execute(
        "early-stopping",
        inputs,
        t=t,
        adversary=adversary,
        params=params,
        seed=seed,
        graph_seed=graph_seed,
        max_rounds=max_rounds,
        observers=observers,
        num_epochs=num_epochs,
    )
