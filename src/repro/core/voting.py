"""Biased-majority-voting epoch rule (Algorithm 1 lines 9-12, Figure 3).

Given the epoch's operative counts ``(ones, zeros)``, a process updates its
candidate bit:

* ``ones >  18/30 (ones + zeros)``  -> adopt 1;
* ``ones <  15/30 (ones + zeros)``  -> adopt 0;
* otherwise                          -> a fresh uniform random bit
  (the only randomness the whole algorithm uses: at most one bit per process
  per epoch);

and applies the safety rule: at ``> 27/30`` or ``< 3/30`` it marks itself
ready to decide.  The 18/30-vs-15/30 gap equals the maximal inoperative
fraction, which is what forbids two operative processes from
deterministically adopting opposite bits in the same epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import ProtocolParams
from ..runtime import CountingRandom


@dataclass(frozen=True)
class VoteOutcome:
    """Result of applying the epoch rule."""

    bit: int
    decided: bool
    used_coin: bool


def apply_vote_rule(
    ones: int,
    zeros: int,
    params: ProtocolParams,
    coin: CountingRandom,
) -> VoteOutcome:
    """Apply lines 9-12 of Algorithm 1 to one epoch's counts.

    ``coin`` is the process's metered random source; it is touched only in
    the middle band, so the randomness accounting matches the paper's "one
    bit per process per epoch" bound.
    """
    total = ones + zeros
    if total == 0:
        # The process heard of no operative value at all; keep voting with a
        # coin so a transient blackout cannot freeze its candidate forever.
        return VoteOutcome(bit=coin.bit(), decided=False, used_coin=True)
    if params.adopt_one(ones, total):
        bit = 1
        used_coin = False
    elif params.adopt_zero(ones, total):
        bit = 0
        used_coin = False
    else:
        bit = coin.bit()
        used_coin = True
    decided = params.ready_to_decide(ones, total)
    return VoteOutcome(bit=bit, decided=decided, used_coin=used_coin)
