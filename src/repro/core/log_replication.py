"""Repeated consensus: an agreed-upon log (the ledger/SMR building block).

The paper's introduction motivates consensus through distributed ledgers
and replicated databases; operationally those run *one consensus instance
per log slot*.  :class:`ConsensusLog` packages that loop as a library
feature:

* each slot takes one proposal per replica (bits by default, or
  ``value_bits``-wide integers via the multi-valued reduction);
* a fresh adversary can be injected per slot (faults are per-slot in this
  abstraction: a replica silenced in slot 3 may be fine in slot 4, which
  models per-instance corruption budgets);
* the log records, per slot, the decided value, the per-slot faulty set,
  and the cost (rounds/bits/randomness), and exposes the consistency
  invariant: every replica that was non-faulty in slot i holds the same
  entry i.

This is deliberately a *driver* above the consensus API, not a new
protocol: each slot is exactly one `run_consensus` /
`run_multivalued_consensus` execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from ..params import ProtocolParams
from ..runtime import Adversary
from .consensus import run_consensus
from .multivalued import run_multivalued_consensus

#: Per-slot adversary factory: (slot, n, t) -> Adversary or None.
SlotAdversaryFactory = Callable[[int, int, int], Adversary | None]


@dataclass(frozen=True)
class LogEntry:
    """One committed slot."""

    slot: int
    value: int
    rounds: int
    bits: int
    random_bits: int
    faulty: frozenset[int]


@dataclass
class ConsensusLog:
    """An agreed log over n replicas tolerating t omission faults per slot.

    Usage::

        log = ConsensusLog(n=48, t=1)
        entry = log.append([replica_proposal(pid) for pid in range(48)])
        log.replica_view(7)     # the entries replica 7 is guaranteed
        log.check_consistency() # raises on divergence (it cannot happen)
    """

    n: int
    t: int | None = None
    params: ProtocolParams | None = None
    #: Bits per value; 1 = binary consensus, >1 = multi-valued reduction.
    value_bits: int = 1
    adversary_factory: SlotAdversaryFactory | None = None
    seed: int = 0
    entries: list[LogEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.params = (
            self.params if self.params is not None else ProtocolParams.practical()
        )
        self.t = self.t if self.t is not None else self.params.max_faults(self.n)
        if self.value_bits < 1:
            raise ValueError(f"value_bits must be >= 1, got {self.value_bits}")

    # ------------------------------------------------------------------
    def append(self, proposals: Sequence[int]) -> LogEntry:
        """Run one consensus slot over the replicas' proposals."""
        if len(proposals) != self.n:
            raise ValueError(
                f"need {self.n} proposals, got {len(proposals)}"
            )
        slot = len(self.entries)
        adversary = (
            self.adversary_factory(slot, self.n, self.t)
            if self.adversary_factory is not None
            else None
        )
        slot_seed = self.seed * 7919 + slot
        if self.value_bits == 1:
            run = run_consensus(
                proposals,
                t=self.t,
                adversary=adversary,
                params=self.params,
                seed=slot_seed,
            )
            decision = run.decision
            result = run.result
        else:
            result = run_multivalued_consensus(
                proposals,
                value_bits=self.value_bits,
                t=self.t,
                adversary=adversary,
                params=self.params,
                seed=slot_seed,
            ).result
            decision = result.agreement_value()
        entry = LogEntry(
            slot=slot,
            value=decision,
            rounds=result.time_to_agreement(),
            bits=result.metrics.bits_sent,
            random_bits=result.metrics.random_bits,
            faulty=result.faulty,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def replica_view(self, pid: int) -> list[int | None]:
        """The log as replica ``pid`` is guaranteed to hold it.

        Slots where the replica was faulty are ``None`` (the model makes no
        promise to faulty processes); all other slots carry the agreed
        value.
        """
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        return [
            None if pid in entry.faulty else entry.value
            for entry in self.entries
        ]

    def check_consistency(self) -> None:
        """Assert the ledger invariant: all non-faulty views agree slotwise.

        Structurally guaranteed (each slot's value comes from one agreement
        call), so this is a tripwire for misuse, not an expected failure.
        """
        for entry in self.entries:
            views = {
                self.replica_view(pid)[entry.slot]
                for pid in range(self.n)
                if pid not in entry.faulty
            }
            if len(views) != 1:
                raise AssertionError(
                    f"slot {entry.slot}: divergent views {views}"
                )

    def totals(self) -> dict[str, int]:
        """Aggregate cost of the whole log."""
        return {
            "slots": len(self.entries),
            "rounds": sum(entry.rounds for entry in self.entries),
            "bits": sum(entry.bits for entry in self.entries),
            "random_bits": sum(entry.random_bits for entry in self.entries),
        }
