"""``GroupBitsAggregation`` (Algorithm 2) and its 3-round ``GroupRelay``.

Within one group ``W_i`` of the sqrt(n)-decomposition, operative processes
count how many operative group members hold candidate value 1 and 0,
aggregating up the binary bag tree (Figure 2).  Each tree stage runs the
3-round relay of Appendix B.1:

1. every operative *source* sends its current bag counts to all group
   members (the *transmitters* — all group members relay, operative or not,
   which is what keeps Lemma 7's quorum argument sound for non-faulty
   processes that have merely gone inoperative);
2. transmitters acknowledge the sources they heard; a source hearing at most
   ``|W|/2`` confirmations goes inoperative;
3. transmitters push the merged counts of each member's two child bags back;
   a source hearing fewer than ``|W|/r3 + 1`` goes inoperative.

The phase consumes exactly ``3 * stage_budget`` rounds on every code path —
processes in groups with shallower trees idle-pad — so the global network
stays in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import ProtocolParams
from ..runtime import Message, ProcessEnv, Program
from .partition import BagTree

#: Payload tags (small ints keep the metered bit sizes honest).
TAG_COUNTS = 1
TAG_ACK = 2
TAG_MERGED = 3

#: Divisor of the round-3 quorum: a source must hear from more than
#: ``|W| / GROUP_RELAY_R3_DIVISOR`` transmitters (Appendix B.1 uses 1/5).
GROUP_RELAY_R3_DIVISOR = 5


@dataclass
class AggregationResult:
    """Output of one ``GroupBitsAggregation`` execution for one process."""

    ones: int
    zeros: int
    operative: bool


def _first_counts(
    inbox: list[Message],
) -> tuple[dict[int, tuple[int, int]], set[int]]:
    """Collect first-received (ones, zeros) per child bag, and the senders."""
    counts: dict[int, tuple[int, int]] = {}
    senders: set[int] = set()
    for message in inbox:
        payload = message.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == TAG_COUNTS):
            continue
        senders.add(message.sender)
        _, child_index, ones, zeros = payload
        if child_index not in counts:
            counts[child_index] = (ones, zeros)
    return counts, senders


def group_bits_aggregation(
    env: ProcessEnv,
    group: tuple[int, ...],
    tree: BagTree,
    operative: bool,
    bit: int,
    params: ProtocolParams,
    stage_budget: int,
) -> Program:
    """Run Algorithm 2 for process ``env.pid``; returns
    :class:`AggregationResult`.

    ``stage_budget`` is the global (max over groups) number of stages; this
    generator always consumes ``3 * stage_budget`` rounds.
    """
    pid = env.pid
    group_size = len(group)
    others = [member for member in group if member != pid]

    # Lines 1-4: operative processes seed their singleton bag with their bit.
    if operative and bit == 1:
        my_ones, my_zeros = 1, 0
    elif operative:
        my_ones, my_zeros = 0, 1
    else:
        my_ones, my_zeros = 0, 0

    for stage in range(1, stage_budget + 1):
        if stage > tree.num_stages:
            # Pad: this group's tree is shallower than the global budget.
            for _ in range(3):
                yield
            continue

        parent_index = tree.bag_index(stage, pid)
        my_child_index = tree.bag_index(stage - 1, pid)
        left_index, right_index = tree.child_indices(stage, parent_index)

        # ---- Round 1: sources broadcast their child-bag counts. ----------
        if operative:
            env.send_many(
                others, (TAG_COUNTS, my_child_index, my_ones, my_zeros)
            )
        inbox = yield
        stage_counts, round1_senders = _first_counts(inbox)
        if operative:
            # A process always knows its own contribution (no self-send).
            stage_counts.setdefault(my_child_index, (my_ones, my_zeros))

        # ---- Round 2: transmitters acknowledge the sources they heard. ---
        if round1_senders:
            env.send_many(round1_senders, (TAG_ACK,))
        inbox = yield
        if operative:
            # +1: a source always (implicitly) confirms itself.
            acks = 1 + sum(
                1
                for message in inbox
                if isinstance(message.payload, tuple)
                and message.payload
                and message.payload[0] == TAG_ACK
            )
            if 2 * acks <= group_size:
                operative = False

        # ---- Round 3: transmitters push merged counts back to everyone. --
        # Members of the same parent bag are contiguous in pid order and
        # receive identical merged payloads, so each run becomes one
        # multicast; the flat recipient order is the per-member loop's.
        run_payload: tuple | None = None
        run_members: list[int] = []
        for member in others:
            member_parent = tree.bag_index(stage, member)
            m_left, m_right = tree.child_indices(stage, member_parent)
            left_entry = stage_counts.get(m_left)
            right_entry = (
                stage_counts.get(m_right) if m_right is not None else None
            )
            payload = (TAG_MERGED, left_entry, right_entry)
            if payload == run_payload:
                run_members.append(member)
                continue
            if run_members:
                env.send_many(run_members, run_payload)
            run_payload = payload
            run_members = [member]
        if run_members:
            env.send_many(run_members, run_payload)
        inbox = yield
        if operative:
            merged_messages = [
                message
                for message in inbox
                if isinstance(message.payload, tuple)
                and message.payload
                and message.payload[0] == TAG_MERGED
            ]
            # +1: the process transmits to itself implicitly.
            heard = 1 + len(merged_messages)
            if heard < group_size // GROUP_RELAY_R3_DIVISOR + 1:
                operative = False
            else:
                left_counts = stage_counts.get(left_index)
                right_counts = (
                    stage_counts.get(right_index)
                    if right_index is not None
                    else None
                )
                for message in merged_messages:
                    _, left_entry, right_entry = message.payload
                    if left_counts is None and left_entry is not None:
                        left_counts = tuple(left_entry)
                    if right_counts is None and right_entry is not None:
                        right_counts = tuple(right_entry)
                left_ones, left_zeros = left_counts or (0, 0)
                right_ones, right_zeros = right_counts or (0, 0)
                my_ones = left_ones + right_ones
                my_zeros = left_zeros + right_zeros

    if not operative:
        return AggregationResult(ones=0, zeros=0, operative=False)
    return AggregationResult(ones=my_ones, zeros=my_zeros, operative=True)
