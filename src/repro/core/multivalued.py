"""Multi-valued consensus on top of Algorithm 1 (bit-prefix agreement).

The paper solves binary consensus; real deployments (the ledgers and
replicated databases its introduction motivates) agree on *values*.  This
module provides the classical reduction, engineered for the omission model
and the repository's lockstep substrate:

1. **Value exchange** (1 round): everyone broadcasts its input; each
   process stores the set ``S`` of values seen (omission-faulty processes
   never lie, so everything in ``S`` is a genuine input).
2. **Bit loop** (``value_bits`` iterations, most significant first): run a
   *fixed-length* binary consensus (Algorithm 1's epochs + dissemination,
   followed by a structurally always-present Dolev-Strong phase, so every
   code path consumes identical rounds) on the current candidate's next
   bit; then one *witness round* — processes holding a value in ``S``
   matching the decided prefix broadcast it; everyone re-anchors its
   candidate to the smallest matching value.  Binary validity guarantees
   at least one non-faulty process always holds a witness.
3. **Decide** the assembled bit string.

Strong validity holds: the decided value is some process's actual input
(the last bit's validity pins the full string to an existing candidate).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..baselines.dolev_strong import dolev_strong_consensus
from ..params import ProtocolParams
from ..runtime import (
    Adversary,
    ProcessEnv,
    Program,
    SyncProcess,
)
from .consensus import CoreState, optimal_epochs_and_dissemination

TAG_VALUE = 16
TAG_BIN_DECISION = 17
TAG_WITNESS = 18


def _bit_of(value: int, index: int, width: int) -> int:
    """Bit ``index`` of ``value`` counting from the most significant of a
    ``width``-bit representation."""
    return (value >> (width - 1 - index)) & 1


def _matches_prefix(value: int, prefix_bits: list[int], width: int) -> bool:
    return all(
        _bit_of(value, index, width) == bit
        for index, bit in enumerate(prefix_bits)
    )


def fixed_length_binary_consensus(
    env: ProcessEnv,
    members: tuple[int, ...],
    params: ProtocolParams,
    t: int,
    input_bit: int,
    graph_seed: int,
) -> Program:
    """Binary consensus consuming the same number of rounds on every path.

    Algorithm 1's natural ending is ragged (fast-path deciders exit while
    fallback participants run Dolev-Strong), which cannot be nested inside
    a larger lockstep loop.  Here the Dolev-Strong phase is *structurally
    always present* — processes that already hold a decision simply do not
    participate — followed by one propagation round, so the total length is
    ``core_total_rounds + (t + 1) + 1`` for everyone.

    Returns the decision bit, or ``None`` for a process the adversary
    starved of every broadcast (necessarily faulty).
    """
    state = CoreState(b=input_bit)
    value = yield from optimal_epochs_and_dissemination(
        env, members, params, state, graph_seed=graph_seed
    )

    participating = value is None and state.operative
    ds_decision = yield from dolev_strong_consensus(
        env, t, state.b, participating=participating
    )
    final = value if value is not None else ds_decision

    # One propagation round so starved-but-reachable processes catch up.
    if final is not None:
        env.send_many(
            (pid for pid in members if pid != env.pid),
            (TAG_BIN_DECISION, final),
        )
    inbox = yield
    if final is None:
        for message in inbox:
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == TAG_BIN_DECISION
            ):
                final = payload[1]
                break
    return final


class MultiValuedConsensus(SyncProcess):
    """Agree on a ``value_bits``-bit non-negative integer.

    Public state: ``candidate`` (current anchored value), ``seen`` (inputs
    observed in the exchange round), ``prefix`` (bits decided so far).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_value: int,
        value_bits: int,
        t: int | None = None,
        params: ProtocolParams | None = None,
        graph_seed: int = 0,
    ) -> None:
        super().__init__(pid, n)
        if value_bits < 1:
            raise ValueError(f"value_bits must be >= 1, got {value_bits}")
        if not 0 <= input_value < (1 << value_bits):
            raise ValueError(
                f"input {input_value} does not fit in {value_bits} bits"
            )
        self.params = params if params is not None else ProtocolParams.practical()
        self.t = t if t is not None else self.params.max_faults(n)
        self.params.validate_fault_budget(n, self.t)
        self.input_value = input_value
        self.value_bits = value_bits
        self.graph_seed = graph_seed
        self.candidate = input_value
        self.seen: set[int] = {input_value}
        self.prefix: list[int] = []

    def program(self, env: ProcessEnv) -> Program:
        members = tuple(range(self.n))
        width = self.value_bits

        # ---- Value exchange. ---------------------------------------------
        env.broadcast((TAG_VALUE, self.input_value))
        inbox = yield
        for message in inbox:
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == TAG_VALUE
            ):
                self.seen.add(payload[1])

        # ---- Bit loop. -----------------------------------------------------
        for index in range(width):
            my_bit = _bit_of(self.candidate, index, width)
            decided_bit = yield from fixed_length_binary_consensus(
                env,
                members,
                self.params,
                self.t,
                my_bit,
                graph_seed=self.graph_seed + 101 * (index + 1),
            )
            if decided_bit is None:
                # Fully starved (faulty): track the majority assumption 0
                # so the remaining rounds stay lockstep; the final decision
                # of this process is not covered by agreement anyway.
                decided_bit = 0
            self.prefix.append(decided_bit)

            # ---- Witness round. ------------------------------------------
            matching = sorted(
                value
                for value in self.seen
                if _matches_prefix(value, self.prefix, width)
            )
            if matching:
                env.broadcast((TAG_WITNESS, matching[0]))
            inbox = yield
            for message in inbox:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == TAG_WITNESS
                ):
                    self.seen.add(payload[1])
            matching = sorted(
                value
                for value in self.seen
                if _matches_prefix(value, self.prefix, width)
            )
            if matching:
                self.candidate = matching[0]
            # else: keep the stale candidate; the decided prefix is what
            # counts, and a matching witness reaches every non-faulty
            # process (binary validity guarantees a non-faulty holder).

        decided_value = 0
        for bit in self.prefix:
            decided_value = (decided_value << 1) | bit
        env.decide(decided_value)
        return None


def run_multivalued_consensus(
    inputs: Sequence[int],
    value_bits: int,
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    max_rounds: int = 500_000,
    observers: Sequence = (),
):
    """Run multi-valued consensus end to end.

    Thin wrapper over :func:`repro.harness.execute`; the returned
    :class:`repro.core.consensus.ConsensusRun` still unpacks as the
    historical ``(result, processes)`` tuple.
    """
    from ..harness import execute

    return execute(
        "multivalued",
        inputs,
        t=t,
        adversary=adversary,
        params=params,
        seed=seed,
        graph_seed=graph_seed,
        max_rounds=max_rounds,
        observers=observers,
        value_bits=value_bits,
    )
