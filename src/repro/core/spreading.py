"""``GroupBitsSpreading`` (Algorithm 3): inter-group count dissemination.

After aggregation, each group holds a pair (operative ones, operative zeros).
Operative processes gossip these ``ceil(sqrt n)`` pairs along the
predetermined sparse spreading graph for ``Theta(log n)`` rounds, sending
each group's pair at most once per link.  A process that hears from fewer
than ``Delta/3`` of its (not yet disregarded) neighbours in a round becomes
inoperative and stays idle for the rest of the execution; links observed
silent are disregarded forever (Lemma 5 relies on this downward
monotonicity).

Heartbeats: a round with nothing new still sends an empty pack, because
neighbour liveness is judged by "did it deliver a message this round".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime import ProcessEnv, Program

TAG_PACK = 4


@dataclass
class SpreadingState:
    """Per-process state persisting across epochs.

    ``disregarded`` implements the "never use this link again" rule;
    ``sent`` tracks, per neighbour, which group slots were already pushed on
    that link (each slot crosses each link at most once per epoch run).
    """

    neighbors: tuple[int, ...]
    disregarded: set[int] = field(default_factory=set)

    def live_neighbors(self) -> list[int]:
        return [v for v in self.neighbors if v not in self.disregarded]


@dataclass
class SpreadingResult:
    """Output of one ``GroupBitsSpreading`` run for one process."""

    ones: int
    zeros: int
    operative: bool
    packs: list[tuple[int, int] | None]


def group_bits_spreading(
    env: ProcessEnv,
    state: SpreadingState,
    group_count: int,
    my_group: int,
    my_counts: tuple[int, int],
    rounds: int,
    degree_threshold: int,
) -> Program:
    """Run Algorithm 3 for an *operative* process; returns
    :class:`SpreadingResult`.

    Consumes exactly ``rounds`` rounds.  ``my_counts`` is this process's
    group-aggregation output ``(ones, zeros)``.
    """
    packs: list[tuple[int, int] | None] = [None] * group_count
    packs[my_group] = my_counts
    # Per-link queues of slots not yet exchanged on that link (tracking the
    # queue beats rescanning all sqrt(n) slots per link per round).
    pending: dict[int, set[int]] = {v: {my_group} for v in state.neighbors}
    operative = True
    empty_pack = (TAG_PACK, ())

    for _round_index in range(rounds):
        if operative:
            for neighbor in state.live_neighbors():
                queue = pending[neighbor]
                if queue:
                    fresh = tuple(
                        (slot, packs[slot][0], packs[slot][1])
                        for slot in sorted(queue)
                    )
                    queue.clear()
                    env.send(neighbor, (TAG_PACK, fresh))
                else:
                    # Heartbeat: liveness is judged per round.
                    env.send(neighbor, empty_pack)
            inbox = yield
            heard: set[int] = set()
            for message in inbox:
                sender = message.sender
                if sender in state.disregarded or sender not in pending:
                    continue
                payload = message.payload
                if not (
                    isinstance(payload, tuple)
                    and payload
                    and payload[0] == TAG_PACK
                ):
                    continue
                heard.add(sender)
                for slot, ones, zeros in payload[1]:
                    if packs[slot] is None:
                        packs[slot] = (ones, zeros)
                        for queue in pending.values():
                            queue.add(slot)
                    # Known on this link already: no need to echo it back.
                    pending[sender].discard(slot)
            silent = set(state.live_neighbors()) - heard
            state.disregarded |= silent
            if len(heard) < degree_threshold:
                operative = False
        else:
            yield

    ones = sum(entry[0] for entry in packs if entry is not None)
    zeros = sum(entry[1] for entry in packs if entry is not None)
    return SpreadingResult(ones=ones, zeros=zeros, operative=operative, packs=packs)
