"""The paper's primary contribution: Algorithm 1 and its building blocks.

* :func:`run_consensus` / :class:`OptimalOmissionsConsensus` — Theorem 1;
* :class:`ParamOmissions` / :func:`run_tradeoff_consensus` — Theorem 3
  (time-for-randomness trade-off, Algorithm 4);
* partition, aggregation, spreading, voting — Algorithms 2-3 and the
  biased-majority rule.
"""

from .aggregation import AggregationResult, group_bits_aggregation
from .consensus import (
    ConsensusRun,
    CoreState,
    OptimalOmissionsConsensus,
    build_processes,
    core_total_rounds,
    epoch_rounds,
    optimal_epochs_and_dissemination,
    run_consensus,
    shared_spreading_graph,
)
from .partition import (
    BagTree,
    GroupPartition,
    cached_bag_tree,
    cached_sqrt_partition,
    global_stage_count,
    sqrt_partition,
)
from .early_stopping import EarlyStoppingConsensus, run_early_stopping_consensus
from .log_replication import ConsensusLog, LogEntry
from .multivalued import (
    MultiValuedConsensus,
    fixed_length_binary_consensus,
    run_multivalued_consensus,
)
from .spreading import SpreadingResult, SpreadingState, group_bits_spreading
from .tradeoff import (
    ParamOmissions,
    TradeoffPoint,
    run_tradeoff_consensus,
    super_partition,
    sweep_tradeoff,
)
from .voting import VoteOutcome, apply_vote_rule

__all__ = [
    "AggregationResult",
    "EarlyStoppingConsensus",
    "run_early_stopping_consensus",
    "ConsensusLog",
    "LogEntry",
    "MultiValuedConsensus",
    "fixed_length_binary_consensus",
    "run_multivalued_consensus",
    "CoreState",
    "core_total_rounds",
    "epoch_rounds",
    "optimal_epochs_and_dissemination",
    "ParamOmissions",
    "TradeoffPoint",
    "run_tradeoff_consensus",
    "super_partition",
    "sweep_tradeoff",
    "group_bits_aggregation",
    "ConsensusRun",
    "OptimalOmissionsConsensus",
    "build_processes",
    "run_consensus",
    "shared_spreading_graph",
    "BagTree",
    "GroupPartition",
    "cached_bag_tree",
    "cached_sqrt_partition",
    "global_stage_count",
    "sqrt_partition",
    "SpreadingResult",
    "SpreadingState",
    "group_bits_spreading",
    "VoteOutcome",
    "apply_vote_rule",
]
