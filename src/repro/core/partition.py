"""The sqrt(n)-decomposition into groups and per-group binary bag trees.

Algorithm 1 line 3 pre-partitions ``P`` into ``ceil(sqrt(n))`` disjoint groups
of at most ``ceil(sqrt(n))`` processes each (Figure 1).  Within each group,
``GroupBitsAggregation`` aggregates operative counts along a balanced binary
tree of *bags* (Figure 2): layer 0 holds singletons and each higher-layer bag
is the union of its two children.

Both structures are pure functions of ``n`` — every process derives the same
partition locally, costing no communication, exactly as the paper requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class GroupPartition:
    """Partition of ``range(n)`` into contiguous groups of ~sqrt(n) size."""

    n: int
    groups: tuple[tuple[int, ...], ...]
    group_of: tuple[int, ...]

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def max_group_size(self) -> int:
        return max((len(group) for group in self.groups), default=0)

    def group_members(self, index: int) -> tuple[int, ...]:
        return self.groups[index]

    def group_index_of(self, pid: int) -> int:
        return self.group_of[pid]


def sqrt_partition(n: int) -> GroupPartition:
    """Partition ``range(n)`` into ``ceil(sqrt n)`` groups of size
    at most ``ceil(sqrt n)`` (Algorithm 1, line 3)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    side = int(math.isqrt(n))
    if side * side < n:
        side += 1
    group_count = side
    groups: list[tuple[int, ...]] = []
    group_of = [0] * n
    start = 0
    for index in range(group_count):
        remaining_groups = group_count - index
        remaining = n - start
        size = math.ceil(remaining / remaining_groups)
        members = tuple(range(start, start + size))
        for pid in members:
            group_of[pid] = index
        groups.append(members)
        start += size
    assert start == n, "partition must cover all processes"
    return GroupPartition(n=n, groups=tuple(groups), group_of=tuple(group_of))


@lru_cache(maxsize=256)
def cached_sqrt_partition(n: int) -> GroupPartition:
    """Memoized :func:`sqrt_partition` (it is pure in ``n``)."""
    return sqrt_partition(n)


class BagTree:
    """Balanced binary decomposition of one group into bags (Figure 2).

    ``layers[0]`` is the list of singleton bags in member order;
    ``layers[j][k]`` is the union of ``layers[j-1][2k]`` and
    ``layers[j-1][2k+1]`` (missing right children are empty).  The top layer
    has a single bag equal to the whole group.
    """

    __slots__ = ("members", "layers", "_member_positions")

    def __init__(self, members: tuple[int, ...]) -> None:
        if not members:
            raise ValueError("a bag tree needs at least one member")
        self.members = tuple(members)
        layers: list[list[tuple[int, ...]]] = [
            [(member,) for member in self.members]
        ]
        while len(layers[-1]) > 1:
            previous = layers[-1]
            merged = [
                previous[2 * k] + (previous[2 * k + 1] if 2 * k + 1 < len(previous) else ())
                for k in range((len(previous) + 1) // 2)
            ]
            layers.append(merged)
        self.layers = layers
        self._member_positions = {
            member: position for position, member in enumerate(self.members)
        }

    @property
    def num_stages(self) -> int:
        """Number of aggregation stages (= tree height)."""
        return len(self.layers) - 1

    def bag_index(self, layer: int, pid: int) -> int:
        """Index of the bag containing ``pid`` at the given layer."""
        return self._member_positions[pid] >> layer

    def bag(self, layer: int, index: int) -> tuple[int, ...]:
        return self.layers[layer][index]

    def child_indices(self, layer: int, index: int) -> tuple[int, int | None]:
        """Indices of the left and (possibly absent) right child bags."""
        if layer <= 0:
            raise ValueError("layer 0 bags have no children")
        left = 2 * index
        right = 2 * index + 1
        if right >= len(self.layers[layer - 1]):
            return left, None
        return left, right


@lru_cache(maxsize=4096)
def cached_bag_tree(members: tuple[int, ...]) -> BagTree:
    """Memoized :class:`BagTree` construction (pure in the member tuple)."""
    return BagTree(members)


def global_stage_count(partition: GroupPartition) -> int:
    """Uniform number of aggregation stages across all groups.

    Groups may differ in size by one, hence in tree height by one; the
    aggregation phase is padded to the maximum height so that every process
    consumes the same number of rounds per epoch (lockstep).
    """
    return max(
        cached_bag_tree(group).num_stages for group in partition.groups
    )
