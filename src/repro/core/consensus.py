"""``OptimalOmissionsConsensus`` — Algorithm 1 / Theorems 1 and 5.

The paper's main contribution: randomized consensus against an adaptive,
full-information omission adversary controlling ``t < n/30`` processes, in
``O(sqrt(n) log^2 n)`` rounds, ``O(n^2 log^3 n)`` communication bits and
``O(n^{3/2} log^2 n)`` random bits, whp.

Epoch structure (main loop, lines 5-13):

1. ``GroupBitsAggregation`` — operative counts of 0s/1s within each
   sqrt-decomposition group, up a binary bag tree (Algorithm 2);
2. ``GroupBitsSpreading`` — gossip of the per-group counts along the sparse
   spreading graph (Algorithm 3);
3. the biased-majority vote rule with safety thresholds (lines 9-12).

Afterwards (lines 14-16) decided operative processes broadcast their bit and
inoperative processes adopt any received bit; undecided operative processes
fall back (lines 17-20) to the deterministic Dolev-Strong-style protocol and
broadcast its outcome.

The epochs-plus-dissemination part (lines 5-16) is exposed as the standalone
sub-protocol :func:`optimal_epochs_and_dissemination` operating on an
arbitrary member subset — Algorithm 4 (``ParamOmissions``) runs exactly this
*truncated* form inside each super-process.

Every process runs this class; the operative/inoperative partition is local,
dynamic, and downward monotone.  Inoperative processes still *relay* inside
their group's aggregation (they serve as transmitters), which is what keeps
the Lemma-7 quorum argument valid for non-faulty processes that merely lost
spreading-graph connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence
from typing import Any

from ..baselines.dolev_strong import dolev_strong_consensus
from ..graphs import SpreadingGraph, spreading_graph
from ..params import ProtocolParams
from ..runtime import (
    Adversary,
    ExecutionResult,
    Message,
    ProcessEnv,
    Program,
    SyncProcess,
    idle_rounds,
)
from .aggregation import group_bits_aggregation
from .partition import (
    GroupPartition,
    cached_bag_tree,
    cached_sqrt_partition,
    global_stage_count,
)
from .spreading import SpreadingState, group_bits_spreading
from .voting import apply_vote_rule

TAG_DECISION = 6


@lru_cache(maxsize=256)
def shared_spreading_graph(n: int, delta: int, seed: int) -> SpreadingGraph:
    """The predetermined graph all processes derive locally (Theorem 4).

    Cached so that building an n-process system costs one construction, not
    n — the processes "compute the same graph" for free, as in the paper.
    """
    return spreading_graph(n, delta, seed)


def epoch_rounds(m: int, params: ProtocolParams) -> int:
    """Rounds per epoch for an m-member run: 3 per tree stage + spreading."""
    partition = cached_sqrt_partition(m)
    return 3 * global_stage_count(partition) + params.spread_rounds(m)


def core_total_rounds(
    m: int, params: ProtocolParams, num_epochs: int | None = None
) -> int:
    """Rounds consumed by :func:`optimal_epochs_and_dissemination` on m
    members: all epochs plus the one line-14 dissemination round.

    Every process can compute this locally, which is how Algorithm 4's
    non-members know how long to stay idle during another super-process's
    phase.
    """
    if m == 1:
        return 1
    if num_epochs is None:
        num_epochs = params.num_epochs(m, params.max_faults(m))
    return num_epochs * epoch_rounds(m, params) + 1


@dataclass
class CoreState:
    """Mutable per-process state of lines 5-16, exposed to the adversary.

    ``b`` is the candidate bit, ``operative``/``decided`` the Algorithm-1
    flags, ``epoch`` the index of the epoch currently executing (equal to the
    epoch budget once the loop has finished).
    """

    b: int
    operative: bool = True
    decided: bool = False
    epoch: int = -1


def _decision_from(inbox: list[Message]) -> int | None:
    """Extract the first decision bit from line-14-style broadcasts."""
    for message in inbox:
        payload = message.payload
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == TAG_DECISION
        ):
            return payload[1]
    return None


def optimal_epochs_and_dissemination(
    env: ProcessEnv,
    members: tuple[int, ...],
    params: ProtocolParams,
    state: CoreState,
    graph_seed: int = 0,
    num_epochs: int | None = None,
) -> Program:
    """Lines 5-16 of Algorithm 1 among ``members`` (sorted global pids).

    Returns the decision value, or ``None`` when this process neither set
    ``decided`` nor (being inoperative) received a decision broadcast — the
    "⊥" outcome Algorithm 4 expects from a truncated run.  Always consumes
    exactly ``core_total_rounds(len(members), params, num_epochs)`` rounds.
    """
    m = len(members)
    if m == 1:
        # A singleton run decides its own bit; one round for symmetry with
        # the dissemination round of larger runs.
        state.decided = True
        yield
        return state.b

    if num_epochs is None:
        num_epochs = params.num_epochs(m, params.max_faults(m))

    local_of = {pid: index for index, pid in enumerate(members)}
    my_local = local_of[env.pid]
    partition: GroupPartition = cached_sqrt_partition(m)
    my_group = partition.group_index_of(my_local)
    group = tuple(members[i] for i in partition.group_members(my_group))
    tree = cached_bag_tree(group)
    stage_budget = global_stage_count(partition)
    spread_rounds = params.spread_rounds(m)
    degree_threshold = params.operative_degree_threshold(m)

    graph = shared_spreading_graph(m, params.delta(m), graph_seed)
    spreading_state = SpreadingState(
        neighbors=tuple(sorted(members[v] for v in graph.neighbors(my_local)))
    )

    # ---- Main loop (lines 5-13): the biased-majority epochs. -------------
    for epoch in range(num_epochs):
        state.epoch = epoch
        aggregation = yield from group_bits_aggregation(
            env, group, tree, state.operative, state.b, params, stage_budget
        )
        if state.operative and not aggregation.operative:
            state.operative = False
        if not state.operative:
            # Line 7: idle until the end of the epoch (the aggregation
            # above was pure relay duty).
            yield from idle_rounds(env, spread_rounds)
            continue

        spread = yield from group_bits_spreading(
            env,
            spreading_state,
            partition.group_count,
            my_group,
            (aggregation.ones, aggregation.zeros),
            spread_rounds,
            degree_threshold,
        )
        if not spread.operative:
            state.operative = False
            continue

        outcome = apply_vote_rule(spread.ones, spread.zeros, params, env.random)
        state.b = outcome.bit
        if outcome.decided:
            state.decided = True

    # ---- Lines 14-16: one dissemination round. ---------------------------
    state.epoch = num_epochs
    if state.operative and state.decided:
        env.send_many(
            (pid for pid in members if pid != env.pid),
            (TAG_DECISION, state.b),
        )
    inbox = yield
    received = _decision_from(inbox)
    if received is not None and not (state.operative and state.decided):
        state.b = received  # line 15
    if state.decided or (not state.operative and received is not None):
        return state.b  # line 16
    return None


class OptimalOmissionsConsensus(SyncProcess):
    """One process of Algorithm 1.

    Public attributes (all visible to the full-information adversary):

    * ``b`` — current candidate bit;
    * ``operative`` — local operative status (dynamic, downward monotone);
    * ``decided`` — the line-12 safety flag;
    * ``epoch`` — index of the epoch currently executing.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        t: int | None = None,
        params: ProtocolParams | None = None,
        graph_seed: int = 0,
        num_epochs: int | None = None,
    ) -> None:
        super().__init__(pid, n)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        self.params = params if params is not None else ProtocolParams.practical()
        self.t = t if t is not None else self.params.max_faults(n)
        self.params.validate_fault_budget(n, self.t)
        self.input_bit = input_bit
        self.state = CoreState(b=input_bit)
        self.graph_seed = graph_seed
        self.num_epochs = (
            num_epochs
            if num_epochs is not None
            else self.params.num_epochs(n, self.t)
        )
        self.used_fallback = False

    # Adversary-facing views of the core state -------------------------
    @property
    def b(self) -> int:
        return self.state.b

    @property
    def operative(self) -> bool:
        return self.state.operative

    @property
    def decided(self) -> bool:
        return self.state.decided

    @property
    def epoch(self) -> int:
        return self.state.epoch

    def epoch_rounds(self) -> int:
        """Rounds per epoch of this configuration."""
        return epoch_rounds(self.n, self.params)

    def program(self, env: ProcessEnv) -> Program:
        members = tuple(range(self.n))
        value = yield from optimal_epochs_and_dissemination(
            env,
            members,
            self.params,
            self.state,
            graph_seed=self.graph_seed,
            num_epochs=self.num_epochs,
        )
        if value is not None:
            env.decide(value)
            return None

        # ---- Lines 17-20: deterministic fallback. ------------------------
        self.used_fallback = True
        if self.state.operative:
            decision = yield from dolev_strong_consensus(
                env, self.t, self.state.b, participating=True
            )
            self.state.b = decision
            env.broadcast((TAG_DECISION, decision))
            env.decide(decision)
            return None
        # Line 19: an inoperative, undecided process waits for a decision.
        # Non-faulty processes are guaranteed one (Lemma 11); a fully
        # eclipsed *faulty* process may starve, so the wait is bounded by
        # the fallback's length plus the final broadcast.
        for _ in range(self.t + 3):
            inbox = yield
            received = _decision_from(inbox)
            if received is not None:
                self.state.b = received
                env.decide(received)
                return None
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OptimalOmissionsConsensus(pid={self.pid}, b={self.b}, "
            f"operative={self.operative}, decided={self.decided}, "
            f"epoch={self.epoch})"
        )


@dataclass
class ConsensusRun:
    """A finished consensus execution plus convenience accessors.

    The historical ``(result, processes)`` tuple protocol was removed
    after its documented deprecation window (docs/api.md); use the named
    ``result`` / ``processes`` fields and the richer accessors below.
    """

    result: ExecutionResult
    processes: list[SyncProcess]
    #: The normalized :class:`repro.harness.ExecutionRequest` this run was
    #: produced from (None for runs constructed outside the harness).
    request: Any = None

    @property
    def decision(self) -> Any:
        return self.result.agreement_value()

    @property
    def metrics(self):
        return self.result.metrics

    @property
    def used_fallback(self) -> bool:
        """True when any process left the fast path (including inoperative
        processes that merely waited for a decision broadcast)."""
        return any(
            getattr(process, "used_fallback", False)
            for process in self.processes
        )

    @property
    def ran_deterministic_fallback(self) -> bool:
        """True when operative processes actually executed the Dolev-Strong
        fallback — the polynomially-unlikely slow branch of Theorem 5."""
        return any(
            getattr(process, "used_fallback", False)
            and getattr(process, "operative", False)
            for process in self.processes
        )


def build_processes(
    inputs: Sequence[int],
    t: int | None = None,
    params: ProtocolParams | None = None,
    graph_seed: int = 0,
    num_epochs: int | None = None,
) -> list[OptimalOmissionsConsensus]:
    """Construct the n process objects of Algorithm 1 for the given inputs."""
    n = len(inputs)
    params = params if params is not None else ProtocolParams.practical()
    t = t if t is not None else params.max_faults(n)
    return [
        OptimalOmissionsConsensus(
            pid,
            n,
            inputs[pid],
            t=t,
            params=params,
            graph_seed=graph_seed,
            num_epochs=num_epochs,
        )
        for pid in range(n)
    ]


def run_consensus(
    inputs: Sequence[int],
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    num_epochs: int | None = None,
    max_rounds: int = 200_000,
    observers: Sequence[Any] = (),
) -> ConsensusRun:
    """Run Algorithm 1 end-to-end on the synchronous substrate.

    Parameters mirror the paper's inputs: one bit per process, the fault
    budget ``t`` (defaults to the preset's maximum for n), and an adversary
    strategy (defaults to no faults).  Returns a :class:`ConsensusRun` whose
    ``decision`` property asserts agreement+termination of non-faulty
    processes while extracting the decided value.  Thin wrapper over
    :func:`repro.harness.execute`.
    """
    from ..harness import execute

    return execute(
        "algorithm1",
        inputs,
        t=t,
        adversary=adversary,
        params=params,
        seed=seed,
        graph_seed=graph_seed,
        max_rounds=max_rounds,
        observers=observers,
        num_epochs=num_epochs,
    )
