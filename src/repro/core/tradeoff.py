"""``ParamOmissions`` — Algorithm 4 / Theorems 3 and 8 (time ↔ randomness).

The trade-off algorithm: split ``P`` into ``x`` super-processes of size
``ceil(n/x)``; in round-robin phases each super-process runs the *truncated*
``OptimalOmissionsConsensus`` (lines 5-16 only — the sub-protocol
:func:`repro.core.consensus.optimal_epochs_and_dissemination`) on its own
members, then floods the phase's outcome (if any) along the global spreading
graph for ``2 log n`` rounds.  Every subsequent phase uses the propagated
value as its input bit.  A final 2-round safety rule (lines 15-23) counts
bits among operative processes; near-unanimous counts decide, anything else
drops to the deterministic fallback (lines 24-30), giving correctness with
probability 1.

Randomness accounting (Theorem 8): each phase's sub-run spends
``~ (n/x)^{3/2}`` random bits, so x phases spend ``~ n^2 / sqrt(nx)`` while
time grows to ``~ sqrt(nx)`` — the ``T x R ≈ n^2`` trade-off curve the
benchmarks sweep.

Once a process turns inoperative it idles until the final decision
broadcasts (pseudocode line 10: "stay idle until line 25") — in particular a
stale candidate bit can never re-enter a later phase, which is what keeps
one value in the system after the first reliable super-process's phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from ..baselines.dolev_strong import dolev_strong_consensus
from ..params import ProtocolParams, log2ceil
from ..runtime import (
    Adversary,
    Message,
    ProcessEnv,
    Program,
    SyncProcess,
    idle_rounds,
)
from .consensus import (
    ConsensusRun,
    CoreState,
    TAG_DECISION,
    core_total_rounds,
    optimal_epochs_and_dissemination,
    shared_spreading_graph,
)
from .spreading import SpreadingState

TAG_FLOOD = 11
TAG_SAFETY = 12


def super_partition(n: int, x: int) -> tuple[tuple[int, ...], ...]:
    """Split ``range(n)`` into x contiguous super-processes of size
    ``ceil(n/x)`` (the last may be smaller)."""
    if not 1 <= x <= n:
        raise ValueError(f"need 1 <= x <= n, got x={x}, n={n}")
    size = math.ceil(n / x)
    groups = []
    start = 0
    while start < n:
        groups.append(tuple(range(start, min(n, start + size))))
        start += size
    return tuple(groups)


def flood_rounds(n: int, params: ProtocolParams) -> int:
    """Rounds of per-phase decision flooding (paper: ``2 log n``)."""
    return max(3, 2 * log2ceil(max(2, n)))


def _flood_decision(
    env: ProcessEnv,
    state: SpreadingState,
    value: int | None,
    rounds: int,
    degree_threshold: int,
) -> Program:
    """Flood a phase's consensus value along the global graph.

    Operative processes send their current value (possibly none) to all
    not-yet-disregarded neighbours each round, adopt the first value they
    hear, disregard silent links forever, and go inoperative below the
    ``Delta/3`` per-round threshold.  Returns ``(value, operative)``.
    """
    operative = True
    for _ in range(rounds):
        if operative:
            env.send_many(state.live_neighbors(), (TAG_FLOOD, value))
            inbox = yield
            heard: set[int] = set()
            for message in inbox:
                sender = message.sender
                if sender in state.disregarded:
                    continue
                payload = message.payload
                if not (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == TAG_FLOOD
                ):
                    continue
                heard.add(sender)
                if value is None and payload[1] is not None:
                    value = payload[1]
            silent = set(state.live_neighbors()) - heard
            state.disregarded |= silent
            if len(heard) < degree_threshold:
                operative = False
        else:
            yield
    return value, operative


def _safety_counts(inbox: list[Message]) -> tuple[int, int]:
    """Count (ones, zeros) among received line-17 safety broadcasts."""
    ones = zeros = 0
    for message in inbox:
        payload = message.payload
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == TAG_SAFETY
        ):
            if payload[1] == 1:
                ones += 1
            else:
                zeros += 1
    return ones, zeros


class ParamOmissions(SyncProcess):
    """One process of Algorithm 4, parameterized by the super-process count.

    Public attributes visible to the adversary: ``b``, ``operative``,
    ``decided``, ``phase`` (current round-robin phase, = x when finished).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        x: int,
        t: int | None = None,
        params: ProtocolParams | None = None,
        graph_seed: int = 0,
    ) -> None:
        super().__init__(pid, n)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        self.params = params if params is not None else ProtocolParams.practical()
        # Theorem 8 halves Algorithm 1's fault tolerance (t < n/60).
        self.t = (
            t if t is not None else max(0, (n - 1) // (2 * (self.params.fault_fraction_denominator + 1)))
        )
        self.input_bit = input_bit
        self.x = x
        self.b = input_bit
        self.operative = True
        self.decided = False
        self.phase = -1
        self.graph_seed = graph_seed
        self.supers = super_partition(n, x)
        self.used_fallback = False

    def program(self, env: ProcessEnv) -> Program:
        n, params = self.n, self.params
        graph = shared_spreading_graph(n, params.delta(n), self.graph_seed)
        flood_state = SpreadingState(
            neighbors=tuple(sorted(graph.neighbors(self.pid)))
        )
        degree_threshold = params.operative_degree_threshold(n)
        flooding = flood_rounds(n, params)

        # ---- Round-robin phases (lines 4-14). ----------------------------
        for phase, members in enumerate(self.supers):
            self.phase = phase
            sub_rounds = core_total_rounds(len(members), params)
            if self.pid in members and self.operative:
                sub_state = CoreState(b=self.b)
                decision = yield from optimal_epochs_and_dissemination(
                    env,
                    members,
                    params,
                    sub_state,
                    graph_seed=self.graph_seed + 1 + phase,
                )
            else:
                # Other super-processes (and inoperative members) stay idle
                # for the sub-run's fixed length (line 6 / line 10).
                yield from idle_rounds(env, sub_rounds)
                decision = None

            # Lines 7-8: members carry the sub-run outcome, others bottom.
            consensus_decision = decision

            # Lines 9-12: flooding along the global graph.
            if self.operative:
                consensus_decision, operative = yield from _flood_decision(
                    env, flood_state, consensus_decision, flooding,
                    degree_threshold,
                )
                self.operative = operative
            else:
                yield from idle_rounds(env, flooding)

            # Line 13: the propagated value becomes the next input bit.
            if self.operative and consensus_decision is not None:
                self.b = consensus_decision

        self.phase = self.x

        # ---- Safety rule (lines 15-23): one exchange among operative. ----
        if self.operative:
            env.broadcast((TAG_SAFETY, self.b))
        inbox = yield
        if self.operative:
            ones, zeros = _safety_counts(inbox)
            ones += self.b
            zeros += 1 - self.b
            total = ones + zeros
            if params.adopt_one(ones, total):
                self.b = 1
            elif params.adopt_zero(ones, total):
                self.b = 0
            if params.ready_to_decide(ones, total):
                self.decided = True

        # ---- Lines 24-26: decision broadcast, mirror of Algorithm 1. -----
        if self.operative and self.decided:
            env.broadcast((TAG_DECISION, self.b))
        inbox = yield
        received = None
        for message in inbox:
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == TAG_DECISION
            ):
                received = payload[1]
                break
        if received is not None and not (self.operative and self.decided):
            self.b = received
        if self.decided or (not self.operative and received is not None):
            env.decide(self.b)
            return None

        # ---- Lines 27-30: deterministic fallback. -------------------------
        self.used_fallback = True
        if self.operative:
            decision = yield from dolev_strong_consensus(
                env, self.t, self.b, participating=True
            )
            self.b = decision
            env.broadcast((TAG_DECISION, decision))
            env.decide(decision)
            return None
        for _ in range(self.t + 3):
            inbox = yield
            for message in inbox:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == TAG_DECISION
                ):
                    self.b = payload[1]
                    env.decide(self.b)
                    return None
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParamOmissions(pid={self.pid}, x={self.x}, b={self.b}, "
            f"operative={self.operative}, phase={self.phase})"
        )


def run_tradeoff_consensus(
    inputs: Sequence[int],
    x: int,
    t: int | None = None,
    adversary: Adversary | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    graph_seed: int = 0,
    max_rounds: int = 500_000,
    observers: Sequence[Any] = (),
) -> ConsensusRun:
    """Run Algorithm 4 end-to-end with ``x`` super-processes.

    ``x = 1`` degenerates to a single Algorithm-1 run plus the safety rule;
    ``x = n`` is the randomness-free extreme (singleton phases use no coins),
    paying ~n rounds of round-robin time — the two ends of the Theorem-3
    interpolation.  Thin wrapper over :func:`repro.harness.execute`.
    """
    from ..harness import execute

    return execute(
        "tradeoff",
        inputs,
        t=t,
        adversary=adversary,
        params=params,
        seed=seed,
        graph_seed=graph_seed,
        max_rounds=max_rounds,
        observers=observers,
        x=x,
    )


@dataclass
class TradeoffPoint:
    """One sweep point of the Theorem-3 trade-off curve."""

    x: int
    rounds: int
    random_bits: int
    random_calls: int
    bits_sent: int
    decision: Any


def sweep_tradeoff(
    inputs: Sequence[int],
    xs: Sequence[int],
    adversary_factory=None,
    params: ProtocolParams | None = None,
    seed: int = 0,
) -> list[TradeoffPoint]:
    """Run Algorithm 4 for each x and collect the (T, R) trade-off points."""
    points = []
    for x in xs:
        adversary = adversary_factory() if adversary_factory is not None else None
        run = run_tradeoff_consensus(
            inputs, x, adversary=adversary, params=params, seed=seed
        )
        metrics = run.metrics
        points.append(
            TradeoffPoint(
                x=x,
                rounds=metrics.rounds,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                bits_sent=metrics.bits_sent,
                decision=run.decision,
            )
        )
    return points
