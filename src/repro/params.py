"""Protocol parameters for the omission-tolerant consensus algorithms.

The paper states its algorithms with explicit asymptotic constants (for example
``Delta = 832 * log n`` in Theorem 4 and ``t < n / 30`` in Theorem 1).  Those
constants are chosen to make the union bounds in the proofs go through for
*every* n; at the system sizes a simulator can reach they would make the
"sparse" spreading graph complete and collapse the epoch count to zero or blow
it up by orders of magnitude.

:class:`ProtocolParams` therefore carries every tunable of the protocol with
two presets:

* :meth:`ProtocolParams.paper` — the verbatim constants from the paper, usable
  for property checks and very small systems;
* :meth:`ProtocolParams.practical` — the same functional forms
  (``Theta(log n)`` degree, ``Theta(log n)`` spreading rounds,
  ``Theta(t / sqrt(n) * log n)`` epochs) with small multiplicative constants so
  that measured scaling *shapes* match the theory at simulable n.

All derived quantities (degree, epoch count, rounds per phase) are computed
through methods of this class so that every protocol and benchmark agrees on
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


def log2ceil(x: float) -> int:
    """Return ``ceil(log2(x))`` for x >= 1, and 0 for x in (0, 1]."""
    if x <= 0:
        raise ValueError(f"log2ceil requires a positive argument, got {x!r}")
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def default_fault_bound(n: int, fraction_denominator: int = 31) -> int:
    """Largest t strictly below ``n / fraction_denominator``, but at least 0.

    The paper's Theorem 1 tolerates ``t < n / 30``; using denominator 31 keeps
    a safety margin at small n where integer effects bite.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    t = (n - 1) // fraction_denominator
    return max(0, t)


@dataclass(frozen=True)
class ProtocolParams:
    """Tunable constants of the PODC'24 omission-consensus protocols.

    Attributes
    ----------
    delta_factor:
        Spreading-graph expected degree is ``delta_factor * ceil(log2 n)``
        (``Delta`` in Theorem 4; the paper uses 832).
    delta_min:
        Floor on the degree so tiny systems stay connected.
    operative_degree_divisor:
        A process stays operative while it hears from at least
        ``Delta / operative_degree_divisor`` spreading-graph neighbours
        (the paper uses ``Delta / 3``).
    spread_rounds_factor:
        ``GroupBitsSpreading`` runs ``spread_rounds_factor * ceil(log2 n)``
        rounds (the paper uses 8).
    spread_rounds_min:
        Floor on the number of spreading rounds.
    epoch_factor:
        Number of epochs is ``ceil(epoch_factor * t / sqrt(n) * log2 n)``
        (the paper's main loop runs ``t / sqrt(n) * log n`` epochs).
    epoch_min:
        Floor on the epoch count so small runs still vote at least a few
        times.
    group_relay_quorum_divisor:
        A source in ``GroupRelay`` stays operative only if it hears from more
        than ``|W| / group_relay_quorum_divisor`` transmitters (paper: 2).
    one_threshold_num / zero_threshold_num / decide_hi_num / decide_lo_num:
        Numerators (over :attr:`threshold_den`) of the biased-majority
        thresholds of Algorithm 1 lines 9-12: adopt 1 at >= 18/30, adopt 0 at
        < 15/30, decide at > 27/30 or < 3/30.
    threshold_den:
        Common denominator of the voting thresholds (paper: 30).
    fault_fraction_denominator:
        The protocol tolerates ``t < n / fault_fraction_denominator``
        (paper: 30 for Algorithm 1, 60 for Algorithm 4).
    """

    delta_factor: int = 832
    delta_min: int = 4
    operative_degree_divisor: int = 3
    spread_rounds_factor: int = 8
    spread_rounds_min: int = 3
    epoch_factor: float = 1.0
    epoch_min: int = 1
    group_relay_quorum_divisor: int = 2
    one_threshold_num: int = 18
    zero_threshold_num: int = 15
    decide_hi_num: int = 27
    decide_lo_num: int = 3
    threshold_den: int = 30
    fault_fraction_denominator: int = 30

    def __post_init__(self) -> None:
        if self.delta_factor < 1:
            raise ValueError("delta_factor must be >= 1")
        if self.delta_min < 1:
            raise ValueError("delta_min must be >= 1")
        if self.operative_degree_divisor < 1:
            raise ValueError("operative_degree_divisor must be >= 1")
        if self.spread_rounds_min < 1:
            raise ValueError("spread_rounds_min must be >= 1")
        if self.epoch_min < 0:
            raise ValueError("epoch_min must be >= 0")
        if not (
            0
            <= self.decide_lo_num
            < self.zero_threshold_num
            <= self.one_threshold_num
            < self.decide_hi_num
            <= self.threshold_den
        ):
            raise ValueError(
                "voting thresholds must satisfy "
                "0 <= decide_lo < zero <= one < decide_hi <= den, got "
                f"{self.decide_lo_num}/{self.zero_threshold_num}/"
                f"{self.one_threshold_num}/{self.decide_hi_num}"
                f"/{self.threshold_den}"
            )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> ProtocolParams:
        """The verbatim constants from the paper (Theorems 1, 4, 5)."""
        return cls()

    @classmethod
    def practical(cls) -> ProtocolParams:
        """Scaled-down constants preserving the paper's functional forms.

        Suitable for simulation at n up to a few thousand; see DESIGN.md
        ("Substitutions") for the rationale.
        """
        return cls(
            delta_factor=4,
            delta_min=6,
            spread_rounds_factor=2,
            spread_rounds_min=3,
            epoch_factor=1.0,
            # Each epoch unifies the candidate bits with constant
            # probability (Lemma 10); five epochs push the fall-back rate
            # on balanced inputs to a few percent while staying cheap.
            epoch_min=5,
        )

    def with_overrides(self, **changes: object) -> ProtocolParams:
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def delta(self, n: int) -> int:
        """Spreading-graph target degree ``Delta`` for an n-process system."""
        if n <= 1:
            return 0
        raw = self.delta_factor * max(1, log2ceil(n))
        return min(n - 1, max(self.delta_min, raw))

    def operative_degree_threshold(self, n: int) -> int:
        """Messages per spreading round needed to stay operative (``Delta/3``)."""
        return max(1, self.delta(n) // self.operative_degree_divisor)

    def spread_rounds(self, n: int) -> int:
        """Rounds of ``GroupBitsSpreading`` (paper: ``8 log n``)."""
        raw = self.spread_rounds_factor * max(1, log2ceil(n))
        return max(self.spread_rounds_min, raw)

    def num_epochs(self, n: int, t: int) -> int:
        """Epoch count of Algorithm 1 (paper: ``t / sqrt(n) * log n``)."""
        if n <= 1:
            return 0
        raw = self.epoch_factor * (t / math.sqrt(n)) * max(1, log2ceil(n))
        return max(self.epoch_min, int(math.ceil(raw)))

    def max_faults(self, n: int) -> int:
        """Largest fault budget t the preset tolerates for n processes."""
        return default_fault_bound(n, self.fault_fraction_denominator + 1)

    def validate_fault_budget(self, n: int, t: int) -> None:
        """Raise ``ValueError`` when t exceeds the tolerated fraction."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        if t * self.fault_fraction_denominator >= n and t > 0:
            raise ValueError(
                f"fault budget t={t} violates t < n/"
                f"{self.fault_fraction_denominator} for n={n}"
            )

    # Voting thresholds -------------------------------------------------
    def adopt_one(self, ones: int, total: int) -> bool:
        """Algorithm 1 line 9: adopt candidate value 1."""
        return ones * self.threshold_den > self.one_threshold_num * total

    def adopt_zero(self, ones: int, total: int) -> bool:
        """Algorithm 1 line 10: adopt candidate value 0."""
        return ones * self.threshold_den < self.zero_threshold_num * total

    def ready_to_decide(self, ones: int, total: int) -> bool:
        """Algorithm 1 line 12: the safety rule that sets ``decided``."""
        hi = ones * self.threshold_den > self.decide_hi_num * total
        lo = ones * self.threshold_den < self.decide_lo_num * total
        return hi or lo
