"""Determinism rules: REP001 (metered randomness), REP002 (wall clock /
entropy), REP003 (order-unstable iteration).

These encode the repo's reproducibility contract: every random bit is
drawn from a seeded, counted source (``repro.runtime.randomness``), no
engine/protocol/adversary/replay code reads ambient entropy, and nothing
on a replayed path iterates a ``set`` in interpreter-chosen order.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext, Project
from .findings import Finding
from .rules import (
    Rule,
    dotted_chain,
    from_imports,
    module_aliases,
    register_rule,
)

#: ``random`` module functions bound to the hidden process-global instance.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class UnseededRandomness(Rule):
    """REP001: randomness must flow through a seeded, metered source.

    Flags calls to the process-global ``random`` functions, ``from random
    import <func>`` bindings, unseeded ``random.Random()`` instances, and
    ``random.SystemRandom`` anywhere outside ``repro/runtime/randomness.py``
    (the one module allowed to wrap :mod:`random`).
    """

    code = "REP001"
    name = "unseeded-randomness"
    summary = (
        "global/unseeded random usage outside repro.runtime.randomness"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        return not module.endswith("repro/runtime/randomness.py")

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        aliases = module_aliases(module.tree, "random")
        for name, node in from_imports(module.tree, "random").items():
            if name in _GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"`from random import {name}` binds the process-global "
                    "generator; draw from a seeded source "
                    "(repro.runtime.randomness) instead",
                )
            elif name == "SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom reads OS entropy and cannot be "
                    "replayed; use a seeded source instead",
                )
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None or len(chain) != 2 or chain[0] not in aliases:
                continue
            attr = chain[1]
            if attr in _GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"call to process-global `random.{attr}`; draw from a "
                    "seeded source (repro.runtime.randomness) instead",
                )
            elif attr == "SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom reads OS entropy and cannot be "
                    "replayed; use a seeded source instead",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded random.Random() seeds itself from OS entropy; "
                    "pass an explicit seed (e.g. via stable_seed)",
                )


#: time-module attributes that read the wall clock.  ``monotonic`` and
#: ``monotonic_ns`` are included: deadline arithmetic belongs to the
#: transport layer (``src/repro/transport/``, outside this rule's scope),
#: never to replayed engine/protocol code.
_WALL_CLOCK_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "localtime",
        "gmtime",
        "ctime",
        "strftime",
    }
)
#: datetime constructors that read the wall clock.
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
#: os-module entropy sources.
_OS_ENTROPY = frozenset({"urandom", "getrandom"})

_REP002_SCOPE = (
    "repro/runtime",
    # The round-model layer is nested under runtime/ and already matched
    # by the fragment above; listed explicitly because simulated time
    # lives there — a wall-clock read in a RoundModel is the likeliest
    # future regression.
    "repro/runtime/models",
    "repro/core",
    "repro/baselines",
    "repro/adversary",
    "repro/replay",
    "repro/harness",
)


@register_rule
class WallClockEntropy(Rule):
    """REP002: no ambient time or entropy in replayed code.

    Engine, protocol, adversary, harness, and replay modules must not read
    ``time.time``/``datetime.now``-style wall clocks, ``time.monotonic``
    deadline clocks, ``os.urandom``, or import :mod:`uuid`/:mod:`secrets`
    — any such read makes a recorded run unreplayable.  The profiling
    clock ``time.perf_counter`` is allowed: it informs observers, never
    control flow.

    Scope note: real wall-clock behaviour — connect retry/backoff, link
    send timeouts — is confined to ``src/repro/transport/``, which is
    deliberately *outside* this rule's scope; ``time.monotonic`` is
    permitted there and nowhere else on a replayed path.  The transport
    surfaces wall-clock effects to the engine only as data (crash faults
    and :class:`~repro.runtime.observers.LinkSample` metrics), keeping
    the in-scope layers deterministic.
    """

    code = "REP002"
    name = "wall-clock-entropy"
    summary = "wall-clock/entropy source in engine, protocol, or replay code"

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        return module.in_dirs(*_REP002_SCOPE)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        tree = module.tree
        for banned in ("uuid", "secrets"):
            for alias in module_aliases(tree, banned):
                node = _import_node(tree, banned)
                yield self.finding(
                    module,
                    node,
                    f"importing `{banned}` (as `{alias}`) pulls OS entropy "
                    "into replayed code; derive identifiers from "
                    "stable_seed instead",
                )
            for _name, imp in from_imports(tree, banned).items():
                yield self.finding(
                    module,
                    imp,
                    f"`from {banned} import ...` pulls OS entropy into "
                    "replayed code; derive identifiers from stable_seed "
                    "instead",
                )
        time_aliases = module_aliases(tree, "time")
        os_aliases = module_aliases(tree, "os")
        datetime_aliases = module_aliases(tree, "datetime")
        datetime_names = {
            name
            for name in from_imports(tree, "datetime")
            if name in {"datetime", "date"}
        }
        time_names = {
            name
            for name in from_imports(tree, "time")
            if name in _WALL_CLOCK_TIME
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            root, attr = chain[0], chain[-1]
            if len(chain) == 1:
                if root in time_names:
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock read `{root}()` in replayed code; pass "
                        "timestamps in from the caller or use the round "
                        "counter",
                    )
                continue
            if root in time_aliases and attr in _WALL_CLOCK_TIME:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read `time.{attr}()` in replayed code; "
                    "pass timestamps in from the caller or use the round "
                    "counter",
                )
            elif root in os_aliases and attr in _OS_ENTROPY:
                yield self.finding(
                    module,
                    node,
                    f"`os.{attr}()` reads OS entropy; replayed code must "
                    "draw from a seeded source",
                )
            elif attr in _WALL_CLOCK_DATETIME and (
                root in datetime_aliases or root in datetime_names
            ):
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read `{'.'.join(chain)}()` in replayed "
                    "code; pass timestamps in from the caller",
                )


def _import_node(tree: ast.Module, module_name: str) -> ast.AST:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and any(
            alias.name == module_name or alias.name.startswith(module_name + ".")
            for alias in node.names
        ):
            return node
    return tree


_REP003_SCOPE = (
    "repro/runtime",
    # Explicit for the same reason as in _REP002_SCOPE: deferred-delivery
    # bookkeeping in the models layer must iterate deterministically.
    "repro/runtime/models",
    "repro/core",
    "repro/baselines",
    "repro/adversary",
)

#: Builtins whose consumption of a set is order-insensitive.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)
#: Builtins that materialize their argument in iteration order.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

_SET_PRESERVING_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


@register_rule
class UnstableIteration(Rule):
    """REP003: no order-unstable iteration on replayed paths.

    Within ``runtime/``, ``core/``, ``baselines/``, and ``adversary/``,
    iterating a ``set``/``frozenset`` directly (``for``, comprehensions,
    ``list(...)``/``tuple(...)``/``enumerate(...)``) is flagged unless the
    expression passes through ``sorted(...)`` first, as is sorting with an
    ``id()``-based key.  Set types are inferred locally (literals,
    ``set()``/``frozenset()`` calls, set operators, annotated names), so
    sets hidden behind attribute access or function returns are not seen —
    a documented limitation, not a licence.

    Dict iteration is deliberately *not* flagged: CPython dicts iterate in
    insertion order (guaranteed since 3.7), which is deterministic under
    replay.  Sets iterate in hash order, which is not (string hashing is
    salted per interpreter).
    """

    code = "REP003"
    name = "unstable-iteration"
    summary = "order-unstable set iteration or id()-keyed sort in replayed code"

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        return module.in_dirs(*_REP003_SCOPE)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        yield from self._check_scope(module, module.tree.body)

    def _check_scope(
        self, module: ModuleContext, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        set_names: set[str] = set()
        for stmt in body:
            yield from self._check_stmt(module, stmt, set_names)

    def _check_stmt(
        self, module: ModuleContext, stmt: ast.stmt, set_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_scope(module, stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._check_scope(module, stmt.body)
            return
        # Findings first (pre-assignment state), then update inference.
        yield from self._check_exprs(module, stmt, set_names)
        self._infer(stmt, set_names)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield from self._check_stmt(module, child, set_names)
            elif isinstance(child, ast.excepthandler):
                for inner in child.body:
                    yield from self._check_stmt(module, inner, set_names)

    def _check_exprs(
        self, module: ModuleContext, stmt: ast.stmt, set_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and self._is_set(
            stmt.iter, set_names
        ):
            yield self.finding(
                module,
                stmt.iter,
                "iterating a set in interpreter hash order; wrap in "
                "sorted(...) to fix the traversal order",
            )
        for node in _walk_stmt_exprs(stmt):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, set_names)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if self._is_set(comp.iter, set_names):
                        yield self.finding(
                            module,
                            comp.iter,
                            "comprehension over a set iterates in "
                            "interpreter hash order; wrap in sorted(...)",
                        )

    def _check_call(
        self, module: ModuleContext, node: ast.Call, set_names: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_CONSUMERS
            and node.args
            and self._is_set(node.args[0], set_names)
        ):
            yield self.finding(
                module,
                node,
                f"`{func.id}(...)` materializes a set in interpreter hash "
                "order; use sorted(...) instead",
            )
        # id()-keyed sorts: sorted(xs, key=id) / xs.sort(key=lambda v: id(v)).
        is_sort = (isinstance(func, ast.Name) and func.id == "sorted") or (
            isinstance(func, ast.Attribute) and func.attr == "sort"
        )
        if is_sort:
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    yield self.finding(
                        module,
                        keyword.value,
                        "id()-based sort key depends on allocation addresses "
                        "and is not stable across runs; sort on a value key",
                    )

    def _infer(self, stmt: ast.stmt, set_names: set[str]) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if self._is_set(stmt.value, set_names):
                    set_names.add(target.id)
                else:
                    set_names.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_is_set(stmt.annotation) or (
                stmt.value is not None and self._is_set(stmt.value, set_names)
            ):
                set_names.add(stmt.target.id)
            else:
                set_names.discard(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id in set_names and not isinstance(
                stmt.op, _SET_PRESERVING_BINOPS
            ):
                set_names.discard(stmt.target.id)

    def _is_set(self, node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _SET_PRESERVING_BINOPS
        ):
            return self._is_set(node.left, set_names) or self._is_set(
                node.right, set_names
            )
        return False


def _walk_stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """All expressions directly under *stmt*, not descending into nested
    statements (those get their own scope-aware pass)."""
    stack = [c for c in ast.iter_child_nodes(stmt) if not isinstance(c, ast.stmt)]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.expr):
            yield node
        stack.extend(
            c for c in ast.iter_child_nodes(node) if not isinstance(c, ast.stmt)
        )


def _annotation_is_set(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in {"set", "frozenset", "Set", "FrozenSet"}
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    return False


def _is_id_key(value: ast.expr) -> bool:
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        body = value.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id == "id"
        )
    return False
