"""repro.lint — determinism & API-conformance static analysis.

A small AST-based linter encoding the repo's reproducibility contract as
checkable rules (``REP001``–``REP006``): metered randomness, no ambient
entropy, order-stable iteration, no deprecated APIs, adversary purity,
and protocol-registration completeness.  See ``docs/lint.md`` for the
rule catalog and suppression policy.

Run it as ``python -m repro.lint [paths]``; use programmatically via
:func:`lint_paths` / :func:`lint_source`.
"""

from .baseline import Baseline, write_baseline
from .context import ModuleContext, Project
from .engine import (
    PARSE_ERROR_CODE,
    LintReport,
    collect_files,
    lint_modules,
    lint_paths,
    lint_source,
)
from .findings import Finding
from .pragmas import PragmaIndex
from .rules import Rule, all_rules, register_rule, rule_for

__all__ = [
    "PARSE_ERROR_CODE",
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleContext",
    "PragmaIndex",
    "Project",
    "Rule",
    "all_rules",
    "collect_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "rule_for",
    "write_baseline",
]
