"""Parsed-module and project context handed to lint rules.

A :class:`ModuleContext` bundles one source file with its AST, raw lines,
and suppression pragmas.  A :class:`Project` is the set of modules under
analysis plus cross-file lookups — currently the protocol-registration
module needed by REP006, which is located on disk relative to the module
being checked so that linting a single file still sees it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .pragmas import PragmaIndex


@dataclass(slots=True)
class ModuleContext:
    """One source file prepared for rule checks."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module | None
    syntax_error: SyntaxError | None
    pragmas: PragmaIndex
    lines: list[str]

    @classmethod
    def from_path(cls, path: Path, root: Path | None = None) -> ModuleContext:
        source = path.read_text(encoding="utf-8")
        relpath = _relativize(path, root)
        return cls.from_source(source, relpath=relpath, path=path)

    @classmethod
    def from_source(
        cls,
        source: str,
        relpath: str = "<string>.py",
        path: Path | None = None,
    ) -> ModuleContext:
        tree: ast.Module | None
        error: SyntaxError | None
        try:
            tree = ast.parse(source, filename=relpath)
            error = None
        except SyntaxError as exc:
            tree = None
            error = exc
        return cls(
            path=path if path is not None else Path(relpath),
            relpath=relpath,
            source=source,
            tree=tree,
            syntax_error=error,
            pragmas=PragmaIndex.from_source(source),
            lines=source.splitlines(),
        )

    def in_dirs(self, *parts: str) -> bool:
        """True when the module lives under any of the given path parts.

        ``parts`` are slash-separated fragments like ``"repro/runtime"``;
        a module matches when the fragment appears as a whole directory
        run inside its project-relative path.
        """
        haystack = f"/{self.relpath}"
        return any(f"/{part.strip('/')}/" in haystack for part in parts)

    def endswith(self, suffix: str) -> bool:
        return self.relpath.endswith(suffix)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _relativize(path: Path, root: Path | None) -> str:
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


#: Location of the protocol-registration module inside the ``repro``
#: package — the cross-file anchor for REP006.
REGISTRATION_MODULE = ("harness", "protocols.py")


@dataclass(slots=True)
class Project:
    """All modules under analysis, plus cross-file lookups for rules."""

    modules: list[ModuleContext] = field(default_factory=list)
    _registration_cache: dict[Path, str | None] = field(default_factory=dict)

    def find(self, suffix: str) -> ModuleContext | None:
        for module in self.modules:
            if module.endswith(suffix):
                return module
        return None

    def registration_source(self, module: ModuleContext) -> str | None:
        """Source of ``repro/harness/protocols.py`` for *module*'s package.

        Walks up from the module's on-disk location to the enclosing
        ``repro`` directory and reads the registration module from disk,
        so single-file invocations still get the cross-file REP006 check.
        Returns ``None`` when no registration module exists (e.g. test
        fixture trees), in which case REP006 falls back to requiring
        in-module registration.
        """
        repro_root = _find_repro_root(module.path)
        if repro_root is None:
            return None
        if repro_root not in self._registration_cache:
            candidate = repro_root.joinpath(*REGISTRATION_MODULE)
            try:
                self._registration_cache[repro_root] = candidate.read_text(
                    encoding="utf-8"
                )
            except OSError:
                self._registration_cache[repro_root] = None
        return self._registration_cache[repro_root]


def _find_repro_root(path: Path) -> Path | None:
    for parent in path.resolve().parents:
        if parent.name == "repro":
            return parent
    return None
