"""Rule base class and registry.

Rules are singletons keyed by code (``REPxxx``).  Each rule declares which
modules it applies to and yields :class:`~.findings.Finding` records; the
engine handles pragma suppression and baselines, so rules stay pure.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import ClassVar

from .context import ModuleContext, Project
from .findings import Finding


class Rule(ABC):
    """One lint check with a stable ``REPxxx`` code."""

    code: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]

    def applies_to(self, module: ModuleContext) -> bool:
        return module.tree is not None

    @abstractmethod
    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        """Yield findings for *module*; must not mutate either argument."""

    def finding(
        self,
        module: ModuleContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            code=self.code,
            message=message,
            source_line=module.source_line(line),
        )


_REGISTRY: dict[str, Rule] = {}
_BUILTINS_LOADED = False


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule singleton to the registry."""
    code = cls.code
    if code in _REGISTRY and type(_REGISTRY[code]) is not cls:
        raise ValueError(f"duplicate lint rule code {code!r}")
    _REGISTRY[code] = cls()
    return cls


def _ensure_builtin_rules() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from . import (  # noqa: F401
        rules_api,
        rules_determinism,
        rules_identity,
        rules_model,
        rules_perf,
    )


def all_rules() -> list[Rule]:
    _ensure_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for(code: str) -> Rule:
    _ensure_builtin_rules()
    return _REGISTRY[code]


def dotted_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None when the root is not a Name.

    Shared helper for rules that match attribute access on imported
    modules (``random.shuffle``, ``time.time``, ``datetime.datetime.now``).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def module_aliases(tree: ast.Module, module_name: str) -> set[str]:
    """Local names bound to ``import module_name`` (honouring ``as``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name or alias.name.startswith(
                    module_name + "."
                ):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def from_imports(tree: ast.Module, module_name: str) -> dict[str, ast.ImportFrom]:
    """Names bound by ``from module_name import x [as y]`` → binding node."""
    bound: dict[str, ast.ImportFrom] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                bound[alias.asname or alias.name] = node
    return bound
