"""Lint engine: file collection, rule dispatch, pragma and baseline
filtering.

The engine is deterministic by construction — files are walked in sorted
order and findings are sorted by position — so two runs over the same
tree produce byte-identical reports (the linter holds itself to the
repo's own reproducibility bar).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .context import ModuleContext, Project
from .findings import Finding
from .rules import Rule, all_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: Code used for files that fail to parse; suppressible like any rule.
PARSE_ERROR_CODE = "REP000"


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        return not self.new


def collect_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand *paths* to a sorted, de-duplicated list of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(file.parts):
                    seen.add(file)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def lint_modules(
    modules: Iterable[ModuleContext],
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run *rules* over prepared modules; the core of every entry point."""
    active = list(rules) if rules is not None else all_rules()
    project = Project(modules=list(modules))
    findings: list[Finding] = []
    for module in project.modules:
        raw: list[Finding] = []
        if module.syntax_error is not None:
            error = module.syntax_error
            raw.append(
                Finding(
                    path=module.relpath,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {error.msg}",
                    source_line=module.source_line(error.lineno or 1),
                )
            )
        else:
            for rule in active:
                if rule.applies_to(module):
                    raw.extend(rule.check(module, project))
        findings.extend(
            finding
            for finding in raw
            if not module.pragmas.suppresses(finding.code, finding.line)
        )
    findings.sort(key=Finding.sort_key)
    if baseline is not None:
        new, baselined = baseline.partition(findings)
        findings = sorted(new + baselined, key=Finding.sort_key)
    return LintReport(findings=findings, files_checked=len(project.modules))


def lint_paths(
    paths: Sequence[Path | str],
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint every ``.py`` file reachable from *paths*."""
    files = collect_files(paths)
    modules = [ModuleContext.from_path(file, root=root) for file in files]
    return lint_modules(modules, rules=rules, baseline=baseline)


def lint_source(
    source: str,
    relpath: str = "module.py",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string as if it lived at *relpath* (test helper)."""
    module = ModuleContext.from_source(source, relpath=relpath)
    return lint_modules([module], rules=rules).findings
