"""Model-conformance rules: REP005 (adversary purity) and REP006
(protocol-registration completeness).

REP005 guards the omission model itself: the paper's adversary *observes*
the full-information view and *returns* an action; the engine is the only
component that mutates network state.  An adversary that writes through
its ``view``/``ctx`` argument silently bypasses budget validation and the
record/replay action log.

REP006 keeps the protocol registry complete: a protocol module under
``repro/core`` or ``repro/baselines`` that exposes a ``run_*`` entry point
must be wired into ``repro.harness.registry`` — either by calling
``register_protocol`` itself or by being imported from the central
registration module ``repro/harness/protocols.py``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from .context import ModuleContext, Project
from .findings import Finding
from .rules import Rule, dotted_chain, register_rule

#: In-place mutators on containers reachable from an adversary's view.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)
#: Attributes whose methods are exempt even when reached through a
#: parameter: drawing from ``ctx.rng`` is the sanctioned way to randomize.
_EXEMPT_ATTRS = frozenset({"rng", "random"})


def _root_name(node: ast.expr) -> str | None:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _passes_through(node: ast.expr, attr_names: frozenset[str]) -> bool:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute) and current.attr in attr_names:
            return True
        current = current.value
    return False


@register_rule
class AdversaryPurity(Rule):
    """REP005: adversaries return actions; they never mutate the view."""

    code = "REP005"
    name = "adversary-purity"
    summary = "Adversary method mutates view/network state instead of returning an action"

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _subclasses_adversary(node):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                yield from self._check_method(module, stmt)

    def _check_method(
        self, module: ModuleContext, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        params = {
            arg.arg
            for arg in method.args.posonlyargs
            + method.args.args
            + method.args.kwonlyargs
            if arg.arg not in {"self", "cls"}
        }
        if not params:
            return
        # Names bound by iterating something reachable from a parameter
        # (``for message in view.messages``) are tainted too.
        tainted = set(params)
        for node in ast.walk(method):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                root = _root_name(node.iter)
                if root in tainted and isinstance(node.target, ast.Name):
                    tainted.add(node.target.id)
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in tainted:
                            yield self.finding(
                                module,
                                target,
                                f"adversary writes through `{root}` — return "
                                "an AdversaryAction instead of mutating the "
                                "view",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATORS:
                    continue
                root = _root_name(node.func.value)
                if root not in tainted:
                    continue
                if _passes_through(node.func.value, _EXEMPT_ATTRS):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"adversary calls `.{node.func.attr}()` on state reached "
                    f"through `{root}` — return an AdversaryAction instead "
                    "of mutating the view",
                )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.tree is not None


def _subclasses_adversary(node: ast.ClassDef) -> bool:
    for base in node.bases:
        chain = dotted_chain(base)
        if chain and chain[-1].endswith("Adversary"):
            return True
    return False


_REP006_SCOPE = ("repro/core", "repro/baselines")


@register_rule
class ProtocolRegistration(Rule):
    """REP006: every run_* protocol module is wired into the registry."""

    code = "REP006"
    name = "protocol-registration"
    summary = (
        "protocol module defines run_* but is not registered with "
        "repro.harness.registry"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        if module.endswith("__init__.py"):
            return False
        return module.in_dirs(*_REP006_SCOPE)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        entry = next(
            (
                stmt
                for stmt in module.tree.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name.startswith("run_")
            ),
            None,
        )
        if entry is None:
            return
        if self._registers_itself(module.tree):
            return
        registration = project.registration_source(module)
        if registration is not None and self._imported_by(module, registration):
            return
        where = (
            "repro/harness/protocols.py"
            if registration is not None
            else "a registration module"
        )
        yield self.finding(
            module,
            entry,
            f"module defines `{entry.name}` but registers no ProtocolSpec: "
            "call repro.harness.registry.register_protocol, or import the "
            f"module from {where}",
        )

    @staticmethod
    def _registers_itself(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                if chain and chain[-1] == "register_protocol":
                    return True
        return False

    @staticmethod
    def _imported_by(module: ModuleContext, registration_source: str) -> bool:
        stem = module.path.stem
        package = module.path.parent.name
        pattern = re.compile(
            rf"\b{re.escape(package)}\s*\.\s*{re.escape(stem)}\b"
        )
        return pattern.search(registration_source) is not None
