"""Finding records produced by lint rules.

A :class:`Finding` pins a rule violation to a file position and carries a
*fingerprint* — a stable hash of ``(path, code, normalized source line)``.
Baselines key on fingerprints rather than line numbers so that unrelated
edits above a grandfathered finding do not invalidate the baseline entry,
while any edit to the offending line itself surfaces the finding again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    """Project-relative POSIX path of the offending file."""

    line: int
    """1-based line number."""

    col: int
    """0-based column offset (as reported by :mod:`ast`)."""

    code: str
    """Rule code, e.g. ``"REP003"``."""

    message: str
    """Human-readable description of the violation."""

    source_line: str = ""
    """Verbatim text of the offending line (used for fingerprinting)."""

    baselined: bool = False
    """True when a committed baseline entry grandfathers this finding."""

    @property
    def fingerprint(self) -> str:
        """Stable identity of the finding, independent of line numbers.

        Whitespace inside the source line is collapsed so reindentation
        alone does not churn the baseline.
        """
        normalized = " ".join(self.source_line.split())
        digest = hashlib.blake2b(
            f"{self.path}::{self.code}::{normalized}".encode(),
            digest_size=8,
        )
        return digest.hexdigest()

    def as_baselined(self) -> Finding:
        return replace(self, baselined=True)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)
