"""Committed baseline of grandfathered findings.

The baseline is a JSON file keyed by finding fingerprints (see
:class:`~.findings.Finding`).  Findings whose fingerprint appears in the
baseline are reported as *baselined* and do not affect the exit code;
anything new fails the run.  Fingerprints form a multiset: two identical
offending lines need two baseline entries, so silently duplicating a
grandfathered pattern still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

SCHEMA_VERSION = 1


@dataclass(slots=True)
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    path: Path | None = None
    entries: Counter[str] = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return cls(path=path)
        data = json.loads(raw)
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported lint baseline schema {schema!r} in {path} "
                f"(expected {SCHEMA_VERSION})"
            )
        entries: Counter[str] = Counter()
        for item in data.get("findings", []):
            entries[item["fingerprint"]] += 1
        return cls(path=path, entries=entries)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split *findings* into (new, baselined).

        Each baseline entry absolves at most one finding; matching is by
        fingerprint, so line-number drift does not invalidate entries but
        editing the offending line does.
        """
        budget = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint
            if budget[fingerprint] > 0:
                budget[fingerprint] -= 1
                baselined.append(finding.as_baselined())
            else:
                new.append(finding)
        return new, baselined


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write *findings* as the new baseline (sorted, human-diffable)."""
    items = [
        {
            "fingerprint": finding.fingerprint,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"schema": SCHEMA_VERSION, "findings": items}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
