"""Suppression pragmas: ``# repro-lint: disable=REP001[,REP002]``.

Two forms are recognised:

* trailing a statement — suppresses the named rules on that line only::

      net.faulty.add(0)  # repro-lint: disable=REP005

* ``disable-file`` anywhere in the file — suppresses the named rules for
  the whole module::

      # repro-lint: disable-file=REP004

``disable=all`` suppresses every rule.  Unknown codes are tolerated (a
pragma for a rule that later lands should not be a syntax error), but the
engine can surface them for auditing via :meth:`PragmaIndex.codes_used`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)

ALL = "all"


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(
        code.strip().upper() if code.strip().lower() != ALL else ALL
        for code in raw.split(",")
        if code.strip()
    )


@dataclass(slots=True)
class PragmaIndex:
    """Per-module view of every suppression pragma in a source file."""

    line_disables: dict[int, frozenset[str]] = field(default_factory=dict)
    file_disables: frozenset[str] = frozenset()

    @classmethod
    def from_source(cls, source: str) -> PragmaIndex:
        line_disables: dict[int, frozenset[str]] = {}
        file_disables: frozenset[str] = frozenset()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if not codes:
                continue
            if match.group("kind") == "disable-file":
                file_disables |= codes
            else:
                line_disables[lineno] = line_disables.get(lineno, frozenset()) | codes
        return cls(line_disables=line_disables, file_disables=file_disables)

    def suppresses(self, code: str, line: int) -> bool:
        if ALL in self.file_disables or code in self.file_disables:
            return True
        at_line = self.line_disables.get(line)
        if at_line is None:
            return False
        return ALL in at_line or code in at_line

    def codes_used(self) -> frozenset[str]:
        used = set(self.file_disables)
        for codes in self.line_disables.values():
            used |= codes
        return frozenset(used)
