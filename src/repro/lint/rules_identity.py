"""Cell-identity rule: REP009 (hand-rolled cell identity).

The fabric's content-addressed cache keys every cell by the SHA-256
digest of its canonical identity (:class:`repro.fabric.CellId`).  Any
code that re-derives that identity by hand — a tuple of identity fields,
or ``str(options)`` / ``json.dumps(options)`` as a dictionary key — is a
second recipe that will drift from the digest the moment a field is
added, reordered, or re-canonicalized, silently splitting the cache.

REP009 keeps ``CellId`` the single recipe: inside the fabric and the
campaign/CLI layers that feed it, cell identity must be built via
``CellId.make`` / ``CellId.from_record`` and compared via ``.digest`` or
the ``CellId`` value itself.  ``repro/fabric/digest.py`` is the
designated implementation and is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext, Project
from .findings import Finding
from .rules import Rule, dotted_chain, register_rule

#: The cell-identity components (the fields of ``CellId.payload()``).
_IDENTITY_FIELDS = frozenset(
    {
        "protocol",
        "n",
        "t",
        "adversary",
        "seed",
        "options",
        "model",
        "model_options",
        "engine",
        "transport",
        "transport_options",
    }
)

#: Option mappings whose stringification must go through canonical_json.
_OPTION_NAMES = frozenset(
    {"options", "model_options", "transport_options"}
)

#: Where cell identity is produced or consumed.
_SCOPE_DIRS = ("repro/fabric",)
_SCOPE_FILES = ("repro/analysis/campaign.py", "repro/cli.py")

#: The one module allowed to spell the recipe out.
_DESIGNATED_IMPLEMENTATION = "repro/fabric/digest.py"


def _identity_field_of(node: ast.expr) -> str | None:
    """The identity field a single expression reads, if any.

    Matches ``record["protocol"]``-style constant subscripts and
    ``cell.protocol``-style attribute reads.
    """
    if isinstance(node, ast.Subscript):
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            if node.slice.value in _IDENTITY_FIELDS:
                return node.slice.value
        return None
    if isinstance(node, ast.Attribute) and node.attr in _IDENTITY_FIELDS:
        return node.attr
    return None


def _names_option_mapping(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _OPTION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _OPTION_NAMES
    if isinstance(node, ast.Subscript):
        return (
            isinstance(node.slice, ast.Constant)
            and node.slice.value in _OPTION_NAMES
        )
    return False


@register_rule
class HandRolledCellIdentity(Rule):
    """REP009: cell identity derived outside CellId."""

    code = "REP009"
    name = "hand-rolled-cell-identity"
    summary = (
        "cell identity built from a field tuple or str(options) instead "
        "of CellId"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        if module.endswith(_DESIGNATED_IMPLEMENTATION):
            return False
        return module.in_dirs(*_SCOPE_DIRS) or any(
            module.endswith(path) for path in _SCOPE_FILES
        )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Tuple, ast.List)):
                yield from self._check_identity_tuple(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_stringified_options(module, node)

    def _check_identity_tuple(
        self, module: ModuleContext, node: ast.Tuple | ast.List
    ) -> Iterator[Finding]:
        fields = {
            field
            for element in node.elts
            if (field := _identity_field_of(element)) is not None
        }
        if len(fields) >= 3:
            listed = ", ".join(sorted(fields))
            yield self.finding(
                module,
                node,
                f"hand-rolled identity tuple over ({listed}); build a "
                "CellId (CellId.make / CellId.from_record) and key on it "
                "or its .digest so the recipe cannot drift from the cache",
            )

    def _check_stringified_options(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        chain = dotted_chain(node.func)
        if chain is None or not node.args:
            return
        callee = chain[-1]
        is_str = callee in {"str", "repr"} and len(chain) == 1
        is_dumps = callee == "dumps"
        if not (is_str or is_dumps):
            return
        if not _names_option_mapping(node.args[0]):
            return
        spelled = ".".join(chain)
        yield self.finding(
            module,
            node,
            f"{spelled}(...) over an options mapping is not canonical "
            "(dict order and whitespace leak into the key); use "
            "repro.fabric.canonical_json, or carry the whole CellId",
        )
