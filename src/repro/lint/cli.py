"""Command line for the repro linter: ``python -m repro.lint [paths]``.

Exit codes: 0 — no new findings; 1 — new findings (or a file failed to
parse); 2 — usage error.  ``--format github`` emits workflow annotation
commands so CI failures land on the offending lines in the diff view.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline, write_baseline
from .engine import LintReport, lint_paths
from .findings import Finding
from .rules import all_rules

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")
DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism and API-conformance checks for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: the repo's "
            f"{'/'.join(DEFAULT_PATHS)} trees that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule codes and exit",
    )
    return parser


def _default_paths() -> list[str]:
    present = [path for path in DEFAULT_PATHS if Path(path).is_dir()]
    return present or ["."]


def _format_text(report: LintReport, show_baselined: bool) -> str:
    lines = []
    for finding in report.findings:
        if finding.baselined and not show_baselined:
            continue
        tag = " (baselined)" if finding.baselined else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.code} {finding.message}{tag}"
        )
    new, old = len(report.new), len(report.baselined)
    lines.append(
        f"{report.files_checked} files checked: {new} new finding(s), "
        f"{old} baselined"
    )
    return "\n".join(lines)


def _format_github(report: LintReport) -> str:
    lines = []
    for finding in report.new:
        message = finding.message.replace("\n", " ")
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.code}::{message}"
        )
    for finding in report.baselined:
        message = finding.message.replace("\n", " ")
        lines.append(
            f"::warning file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.code} (baselined)::{message}"
        )
    return "\n".join(lines)


def _finding_payload(finding: Finding) -> dict[str, object]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "code": finding.code,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
        "baselined": finding.baselined,
    }


def _format_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "new": len(report.new),
        "baselined": len(report.baselined),
        "findings": [_finding_payload(f) for f in report.findings],
    }
    return json.dumps(payload, indent=2)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    baseline: Baseline | None = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (ValueError, json.JSONDecodeError) as exc:
            parser.error(str(exc))

    report = lint_paths(paths, baseline=baseline)

    if args.update_baseline:
        target = Path(args.baseline)
        write_baseline(target, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to baseline {target}"
        )
        return 0

    if args.format == "text":
        print(_format_text(report, show_baselined=args.show_baselined))
    elif args.format == "github":
        output = _format_github(report)
        if output:
            print(output)
    else:
        print(_format_json(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
