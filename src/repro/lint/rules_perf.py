"""Performance rules: REP007 (per-copy Message construction in hot loops).

The columnar round engine exists so that an all-to-all round moves O(n)
array rows, not O(n^2) ``Message`` objects.  That only holds if engine
code keeps multicast fan-out symbolic — offset ranges into the flat copy
order — and materializes concrete :class:`~repro.runtime.messages.Message`
views at the few designated points where a program or observer actually
reads one.  REP007 guards the invariant structurally: constructing
``Message(...)`` inside a loop or comprehension anywhere in
``repro/runtime`` is flagged unless the construction site is one of the
designated materialization points.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext, Project
from .findings import Finding
from .rules import Rule, register_rule

#: The whole message-model module is a materialization point: it owns the
#: ``Message`` type and the flat-expansion of ``Multicast`` records.
_EXEMPT_MODULE = "repro/runtime/messages.py"

#: Function-level materialization points elsewhere in the runtime: the
#: lazy view's cache fill, the object-path delivery loop, and the
#: program-facing legacy multicast expansion.
_MATERIALIZATION_POINTS: dict[str, frozenset[str]] = {
    "repro/runtime/columnar.py": frozenset({"_materialize"}),
    "repro/runtime/network.py": frozenset({"_deliver"}),
    "repro/runtime/process.py": frozenset({"_queue_multicast"}),
}

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@register_rule
class PerCopyMessageConstruction(Rule):
    """REP007: no per-copy ``Message(...)`` loops in the round engine.

    Within ``repro/runtime``, a ``Message(...)`` call under a loop or
    comprehension is per-copy work — O(copies) allocations where the
    columnar layout needs O(records) — unless it sits in a designated
    materialization point (``messages.py`` wholesale,
    ``columnar.py::_materialize``, ``network.py::_deliver``,
    ``process.py::_queue_multicast``).  Queue a ``Multicast`` record or hand out
    a :class:`~repro.runtime.columnar.LazyMessageList` instead.
    """

    code = "REP007"
    name = "per-copy-message-construction"
    summary = (
        "per-copy Message(...) construction in an engine hot loop outside "
        "a designated materialization point"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        return module.in_dirs("repro/runtime") and not module.endswith(
            _EXEMPT_MODULE
        )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        allowed: frozenset[str] = frozenset()
        for suffix, names in _MATERIALIZATION_POINTS.items():
            if module.endswith(suffix):
                allowed = names
                break
        for stmt in module.tree.body:
            yield from self._visit(module, stmt, allowed, 0)

    def _visit(
        self,
        module: ModuleContext,
        node: ast.AST,
        allowed: frozenset[str],
        loop_depth: int,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in allowed:
                return
            for child in node.body:
                yield from self._visit(module, child, allowed, 0)
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                yield from self._visit(module, child, allowed, 0)
            return
        if isinstance(node, _LOOPS):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                # The iterable is evaluated once, before the loop runs.
                yield from self._visit(module, node.iter, allowed, loop_depth)
                yield from self._visit(module, node.target, allowed, loop_depth)
            else:
                yield from self._visit(
                    module, node.test, allowed, loop_depth + 1
                )
            for child in node.body + node.orelse:
                yield from self._visit(module, child, allowed, loop_depth + 1)
            return
        if isinstance(node, _COMPREHENSIONS):
            for child in ast.iter_child_nodes(node):
                yield from self._visit(module, child, allowed, loop_depth + 1)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Message"
            and loop_depth > 0
        ):
            yield self.finding(
                module,
                node,
                "per-copy Message(...) constructed in an engine loop; keep "
                "fan-out symbolic (Multicast / flat offsets) and let a "
                "designated materialization point build concrete views",
            )
            # Still descend: nested calls may hide further constructions.
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, allowed, loop_depth)
