"""API-surface rules: REP004 (removed legacy API) and REP008 (direct
engine construction).

The deprecation timeline in docs/api.md ran its course: the three legacy
surfaces below were deleted from the codebase, so code written against
them now fails at runtime.  REP004 catches such code statically (and
earlier than a crash would):

* ``SyncNetwork(on_round=...)`` — superseded by the observer bus;
* ``ConsensusRun`` tuple protocol (``run[0]``, ``result, procs = run_x(...)``)
  — superseded by the named ``.result`` / ``.processes`` attributes;
* three-argument ``Adversary.setup(n, t, processes)`` — superseded by
  ``setup(ctx: AdversaryContext)``;
* loose grid keywords to ``run_campaign(ns=..., adversaries=...)`` —
  superseded by a single :class:`~repro.analysis.campaign.CampaignSpec`
  positional argument;
* ``CampaignSpec.cell_key(...)`` — superseded by ``cell_id(...)``.

REP008 keeps the harness the single front door to the engine: library
and example code that constructs ``SyncNetwork(...)`` directly bypasses
the registry's model axis, option normalization, and record/replay
surface.  The harness itself, the engine's own package, and the test and
benchmark trees are designated fixtures; anything else either routes
through :func:`repro.harness.execute` or carries an explicit
``# repro-lint: disable=REP008`` pragma naming itself a fixture.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext, Project
from .findings import Finding
from .rules import Rule, dotted_chain, register_rule

#: Registry run helpers returning ``ConsensusRun`` objects.
_RUN_HELPERS = frozenset(
    {
        "run_consensus",
        "run_tradeoff_consensus",
        "run_early_stopping_consensus",
        "run_multivalued_consensus",
        "run_ben_or",
        "run_phase_king",
        "run_dolev_strong",
        "run_trb",
        "run_collectors",
    }
)


#: ``CampaignSpec`` fields once accepted by ``run_campaign`` as loose
#: keywords; the adapter is gone, so any of these on a ``run_campaign``
#: call marks code written against the removed spelling.
_CAMPAIGN_GRID_KWARGS = frozenset(
    {
        "name",
        "protocol",
        "ns",
        "adversaries",
        "seeds",
        "options",
        "capture",
        "model",
        "model_options",
        "transport",
        "transport_options",
    }
)


def _is_run_helper_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_chain(node.func)
    return chain is not None and chain[-1] in _RUN_HELPERS


@register_rule
class DeprecatedApi(Rule):
    """REP004: code written against a removed legacy surface."""

    code = "REP004"
    name = "removed-api"
    summary = (
        "removed surface: on_round=, ConsensusRun tuple protocol, legacy "
        "Adversary.setup(n, t, processes), loose run_campaign grid "
        "keywords, or CampaignSpec.cell_key"
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        yield from self._check_scope(module, module.tree.body, run_names=set())

    def _check_scope(
        self,
        module: ModuleContext,
        body: list[ast.stmt],
        run_names: set[str],
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._check_stmt(module, stmt, run_names)

    def _check_stmt(
        self, module: ModuleContext, stmt: ast.stmt, run_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_scope(module, stmt.body, run_names=set())
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._check_class(module, stmt)
            yield from self._check_scope(module, stmt.body, run_names=set())
            return
        yield from self._check_exprs(module, stmt, run_names)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if _is_run_helper_call(stmt.value):
                    run_names.add(target.id)
                else:
                    run_names.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)) and _is_run_helper_call(
                stmt.value
            ):
                yield self.finding(
                    module,
                    stmt,
                    "tuple-unpacking a ConsensusRun no longer works; use "
                    "`run = run_*(...)` and the named .result/.processes "
                    "attributes",
                )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield from self._check_stmt(module, child, run_names)
            elif isinstance(child, ast.excepthandler):
                for inner in child.body:
                    yield from self._check_stmt(module, inner, run_names)

    def _check_exprs(
        self, module: ModuleContext, stmt: ast.stmt, run_names: set[str]
    ) -> Iterator[Finding]:
        stack = [c for c in ast.iter_child_nodes(stmt) if not isinstance(c, ast.stmt)]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node, run_names)
            elif isinstance(node, ast.Attribute) and node.attr == "cell_key":
                yield self.finding(
                    module,
                    node,
                    "CampaignSpec.cell_key was removed; call cell_id(...) "
                    "(same signature, same CellId result)",
                )
            stack.extend(
                c for c in ast.iter_child_nodes(node) if not isinstance(c, ast.stmt)
            )

    def _check_call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        chain = dotted_chain(node.func)
        callee = chain[-1] if chain else ""
        if callee.endswith("Network"):
            for keyword in node.keywords:
                if keyword.arg == "on_round":
                    yield self.finding(
                        module,
                        keyword.value,
                        "SyncNetwork(on_round=...) was removed; register "
                        "a RoundObserver via observers=[...] or "
                        "add_observer()",
                    )
        if callee == "run_campaign":
            loose = sorted(
                keyword.arg
                for keyword in node.keywords
                if keyword.arg in _CAMPAIGN_GRID_KWARGS
            )
            if loose:
                yield self.finding(
                    module,
                    node,
                    f"loose grid keywords ({', '.join(loose)}) to "
                    "run_campaign were removed; construct a CampaignSpec "
                    "and pass it as the single positional argument",
                )

    def _check_subscript(
        self, module: ModuleContext, node: ast.Subscript, run_names: set[str]
    ) -> Iterator[Finding]:
        if not (
            isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            return
        indexed_call = _is_run_helper_call(node.value)
        indexed_name = (
            isinstance(node.value, ast.Name) and node.value.id in run_names
        )
        if indexed_call or indexed_name:
            yield self.finding(
                module,
                node,
                "indexing a ConsensusRun like a tuple no longer works; use "
                "the named .result/.processes attributes",
            )

    def _check_class(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if not _subclasses_adversary(node):
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.FunctionDef) or stmt.name != "setup":
                continue
            positional = [
                arg.arg
                for arg in stmt.args.posonlyargs + stmt.args.args
                if arg.arg not in {"self", "cls"}
            ]
            if len(positional) >= 3:
                yield self.finding(
                    module,
                    stmt,
                    "legacy Adversary.setup(n, t, processes) signature was "
                    "removed; accept a single AdversaryContext",
                )


def _subclasses_adversary(node: ast.ClassDef) -> bool:
    for base in node.bases:
        chain = dotted_chain(base)
        if chain and chain[-1].endswith("Adversary"):
            return True
    return False


#: Designated fixtures: trees whose direct engine construction is the
#: point — the harness front door, the engine's own package, and the
#: test/benchmark corpora that exercise engine seams on purpose.
_REP008_FIXTURE_DIRS = (
    "repro/harness",
    "repro/runtime",
    "tests",
    "benchmarks",
)


@register_rule
class DirectEngineConstruction(Rule):
    """REP008: library/example code constructs SyncNetwork directly."""

    code = "REP008"
    name = "direct-engine-construction"
    summary = (
        "SyncNetwork(...) constructed outside harness/designated fixtures"
    )

    def applies_to(self, module: ModuleContext) -> bool:
        if module.tree is None:
            return False
        return not module.in_dirs(*_REP008_FIXTURE_DIRS)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None or chain[-1] != "SyncNetwork":
                continue
            yield self.finding(
                module,
                node,
                "direct SyncNetwork(...) construction bypasses the harness "
                "(model axis, option normalization, record/replay); route "
                "through repro.harness.execute(), or mark a designated "
                "fixture with `# repro-lint: disable=REP008`",
            )
