"""Command-line interface: ``repro-consensus``.

Subcommands mirror the experiment index in DESIGN.md::

    repro-consensus run --n 128 --adversary balance
    repro-consensus tradeoff --n 64 --xs 1,2,4,8
    repro-consensus table1 --n 128
    repro-consensus coin-game --ks 64,256 --alpha 0.25
    repro-consensus graph-check --n 512
    repro-consensus serve --transport tcp --processes-per-worker 4
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from .analysis import render_table, table1
from .core import run_tradeoff_consensus
from .graphs import spreading_graph, theorem4_report
from .harness import (
    RoundProfiler,
    available_protocols,
    execute,
    protocol_spec,
)
from .analysis.montecarlo import decision_bias, fallback_rate_vs_epochs
from .lowerbound import sweep_lemma12
from .params import ProtocolParams
from .runtime import Adversary

ADVERSARIES = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "random": lambda n, t, seed: RandomOmissionAdversary(0.6, seed=seed),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}


def _available_models() -> tuple[str, ...]:
    from .runtime import available_models

    return available_models()


def _available_transports() -> tuple[str, ...]:
    from .transport import available_transports

    return available_transports()


def _build_adversary(name: str, n: int, t: int, seed: int) -> Adversary | None:
    try:
        factory = ADVERSARIES[name]
    except KeyError:
        raise SystemExit(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        ) from None
    return factory(n, t, seed)


def _parse_int_list(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item]


def _cmd_run(args: argparse.Namespace) -> int:
    params = ProtocolParams.practical()
    n = args.n
    spec = protocol_spec(args.protocol)
    t = args.t if args.t is not None else spec.campaign_t(n, params)
    inputs = [pid % 2 for pid in range(n)] if args.inputs == "mixed" else (
        [int(args.inputs)] * n
    )
    adversary = _build_adversary(args.adversary, n, t, args.seed)
    profiler = RoundProfiler() if args.profile else None
    run = execute(
        spec,
        inputs,
        t=t,
        adversary=adversary,
        seed=args.seed,
        observers=(profiler,) if profiler is not None else (),
        model=args.model,
        transport=args.transport,
    )
    metrics = run.metrics
    if args.json:
        import json

        from .runtime import result_to_dict

        payload = result_to_dict(run.result)
        payload["protocol"] = spec.name
        payload["decision"] = run.decision
        payload["time_to_agreement"] = run.result.time_to_agreement()
        payload["used_fallback"] = run.used_fallback
        if profiler is not None:
            payload["profile"] = profiler.summary()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"protocol      : {spec.name}")
    print(f"decision      : {run.decision}")
    print(f"time (rounds) : {run.result.time_to_agreement()}")
    print(f"comm. bits    : {metrics.bits_sent}")
    print(f"messages      : {metrics.messages_sent}")
    print(f"random bits   : {metrics.random_bits}")
    print(f"faulty        : {sorted(run.result.faulty)}")
    print(f"used fallback : {run.used_fallback}")
    from .analysis.sparkline import render_series

    print(render_series("traffic/round", metrics.messages_per_round, width=64))
    if profiler is not None:
        summary = profiler.summary()
        print(
            "profile (s)   : "
            f"wall={summary['wall_time']:.4f} "
            f"compute={summary['compute']:.4f} "
            f"adversary={summary['adversary']:.4f} "
            f"delivery={summary['delivery']:.4f} "
            f"overhead={summary['overhead']:.4f}"
        )
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    n = args.n
    inputs = [pid % 2 for pid in range(n)]
    print(f"{'x':>5} {'rounds':>8} {'random bits':>12} {'comm bits':>12}")
    for x in _parse_int_list(args.xs):
        run = run_tradeoff_consensus(inputs, x, seed=args.seed)
        metrics = run.metrics
        print(
            f"{x:>5} {run.result.time_to_agreement():>8} "
            f"{metrics.random_bits:>12} {metrics.bits_sent:>12}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table(table1(n=args.n, seed=args.seed)))
    return 0


def _cmd_coin_game(args: argparse.Namespace) -> int:
    points = sweep_lemma12(
        _parse_int_list(args.ks), [args.alpha], trials=args.trials
    )
    print(f"{'k':>7} {'alpha':>7} {'measured':>9} {'Lemma 12':>9} {'ratio':>6}")
    for point in points:
        print(
            f"{point.k:>7} {point.alpha:>7} {point.measured_budget:>9} "
            f"{point.lemma12_bound:>9.1f} {point.ratio:>6.3f}"
        )
    return 0


def _cmd_graph_check(args: argparse.Namespace) -> int:
    params = ProtocolParams.practical()
    delta = params.delta(args.n)
    graph = spreading_graph(args.n, delta, args.seed)
    report = theorem4_report(graph, delta)
    print(f"n={args.n} delta={delta} edges={graph.edge_count}")
    print(
        f"degrees in [{report.degrees.minimum}, {report.degrees.maximum}] "
        f"(target {report.degrees.expected}); "
        f"within bounds: {report.degrees.within_bounds}"
    )
    print(f"(n/10)-expanding     : {report.expanding}")
    print(f"(n/10, d/15)-sparse  : {report.edge_sparse}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    print(f"fallback rate vs epoch budget (n={args.n}, {args.trials} trials):")
    for epochs, estimate in fallback_rate_vs_epochs(
        args.n, _parse_int_list(args.epochs), trials=args.trials,
        seed=args.seed,
    ):
        print(f"  epochs={epochs:>3}: {estimate}")
    bias = decision_bias(args.n, trials=args.trials, seed=args.seed)
    print(f"decision bias toward 1 on balanced inputs: {bias}")
    return 0


def _campaign_spec_from_args(args: argparse.Namespace):
    from .analysis.campaign import CampaignSpec

    options = {"x": args.x} if args.x is not None else {}
    return CampaignSpec(
        name=args.name,
        protocol=args.protocol,
        ns=_parse_int_list(args.ns),
        adversaries=args.adversaries.split(","),
        seeds=_parse_int_list(args.seeds),
        options=options,
        capture=tuple(item for item in args.capture.split(",") if item),
        model=args.model,
        transport=args.transport,
    )


def _open_campaign_cache(args: argparse.Namespace):
    from .fabric import open_cache

    if getattr(args, "cache", None) is None:
        return None
    return open_cache(args.cache)


def _print_campaign_records(records, output) -> None:
    from .analysis.campaign import save_campaign, summarize_campaign

    for rec in records:
        if rec.get("failed"):
            print(
                f"  FAILED {rec['protocol']} n={rec['n']} {rec['adversary']} "
                f"seed={rec['seed']}: {rec['invariant']} -> {rec['recipe']}"
            )
    if output is not None:
        save_campaign(records, output)
        print(f"wrote {output} ({len(records)} records)")
    for row in summarize_campaign(records):
        print(
            f"  {row['protocol']} n={row['n']:>4} {row['adversary']:>8}: "
            f"rounds={row['mean_rounds']:.1f} bits={row['mean_bits']:.0f} "
            f"rbits={row['mean_random_bits']:.1f} "
            f"fallback={row['fallback_rate']:.2f}"
        )


def _run_campaign_command(
    args: argparse.Namespace,
    resume_records,
    journal,
) -> int:
    """Shared engine behind ``campaign run|resume`` and the legacy form."""
    import json

    from .analysis.campaign import run_campaign

    spec = _campaign_spec_from_args(args)
    cache = _open_campaign_cache(args)
    claims = None
    if getattr(args, "coordinate", False):
        from .fabric import DirectoryClaims

        if cache is None:
            raise SystemExit("--coordinate requires --cache")
        claims = DirectoryClaims(
            cache.root / "claims", lease_seconds=args.lease_seconds
        )
    computed: list[dict] = []
    records = run_campaign(
        spec,
        resume=resume_records,
        jobs=args.jobs,
        journal=journal,
        record_failures=args.record_failures,
        cache=cache,
        claims=claims,
        on_record=computed.append,
    )
    _print_campaign_records(records, args.output)
    if cache is not None:
        stats = cache.stats.as_dict()
        print(
            f"cache: {stats['hits']} hits, {len(computed)} computed, "
            f"hit rate {stats['hit_rate']:.2f}"
        )
        if getattr(args, "cache_stats", None) is not None:
            payload = {
                "spec": spec.name,
                "cells": len(records),
                "computed": len(computed),
                "resumed": len(records) - len(computed) - stats["hits"],
                **stats,
            }
            with open(args.cache_stats, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.cache_stats}")
    return 0


def _load_resume_journal(journal) -> list:
    from .analysis.campaign import load_journal

    if journal is None:
        return []
    try:
        records = load_journal(journal)
    except FileNotFoundError:
        return []
    print(f"resuming from {journal} ({len(records)} records)")
    return records


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    journal = args.journal
    return _run_campaign_command(
        args, _load_resume_journal(journal), journal
    )


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    if args.journal is None:
        raise SystemExit("campaign resume requires --journal PATH")
    return _cmd_campaign_run(args)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    """Journal + cache standing for a spec — reads only, never executes."""
    import json

    from .analysis.campaign import load_journal, record_cell_key

    spec = _campaign_spec_from_args(args)
    cache = _open_campaign_cache(args)
    journaled = {}
    if args.journal is not None:
        try:
            for record in load_journal(args.journal):
                if record.get("campaign") != spec.name:
                    continue
                try:
                    journaled[record_cell_key(record)] = record
                except KeyError:
                    continue
        except FileNotFoundError:
            pass
    states = {"journal": 0, "cache": 0, "missing": 0}
    missing = []
    for coords in spec.grid():
        cell = spec.cell_id(*coords)
        if cell in journaled:
            states["journal"] += 1
        elif cache is not None and cache.contains(cell):
            states["cache"] += 1
        else:
            states["missing"] += 1
            missing.append(cell)
    total = sum(states.values())
    if args.json:
        print(
            json.dumps(
                {
                    "spec": spec.name,
                    "cells": total,
                    **states,
                    "missing_cells": [str(cell) for cell in missing],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"campaign      : {spec.name} ({total} cells)")
    print(f"in journal    : {states['journal']}")
    print(f"in cache      : {states['cache']}")
    print(f"missing       : {states['missing']}")
    for cell in missing:
        print(f"  MISSING {cell}")
    return 0


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    """Resolve a spec against the cache; print hits, never execute."""
    import json

    from .analysis.campaign import summarize_campaign
    from .fabric import query

    spec = _campaign_spec_from_args(args)
    if args.cache is None:
        raise SystemExit("campaign query requires --cache DIR")
    result = query(spec, args.cache)
    if args.json:
        payload = result.as_dict()
        payload["records"] = result.records()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if not result.misses else 1
    for status in result.cells:
        mark = "HIT " if status.hit else "MISS"
        print(f"  {mark} {status.cell}")
    print(
        f"cache: {len(result.hits)}/{len(result.cells)} cells "
        f"(hit rate {result.hit_rate:.2f})"
    )
    for row in summarize_campaign(result.records()):
        print(
            f"  {row['protocol']} n={row['n']:>4} {row['adversary']:>8}: "
            f"rounds={row['mean_rounds']:.1f} bits={row['mean_bits']:.0f} "
            f"rbits={row['mean_random_bits']:.1f} "
            f"fallback={row['fallback_rate']:.2f}"
        )
    return 0 if not result.misses else 1


def _load_smr_example():
    """Load ``examples/state_machine_replication.py`` as a module.

    The examples directory is not a package; the service loop lives there
    so the example stays a runnable, self-contained artifact, and the CLI
    imports it by path.
    """
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parents[2]
        / "examples"
        / "state_machine_replication.py"
    )
    if not path.exists():
        raise SystemExit(f"example not found: {path}")
    spec = importlib.util.spec_from_file_location(
        "repro_example_smr", path
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the SMR example as a (multi-process) consensus service."""
    module = _load_smr_example()
    transport_options = {}
    if args.processes_per_worker is not None:
        if args.transport != "tcp":
            raise SystemExit(
                "--processes-per-worker requires --transport tcp"
            )
        transport_options["processes_per_worker"] = args.processes_per_worker
    module.run_service(
        args.replicas,
        args.slots,
        transport=args.transport,
        transport_options=transport_options or None,
        seed=args.seed,
        adversary=args.adversary,
        verify_replay=args.verify_replay,
        metrics_out=args.metrics_out,
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .replay import load_recipe, replay, save_recipe, shrink_recipe

    try:
        recipe = load_recipe(args.recipe)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load recipe {args.recipe}: {exc}")
        return 2
    kind = "failing" if recipe.failing else "passing"
    print(
        f"recipe        : {args.recipe} ({kind})"
        + (f" — {recipe.note}" if recipe.note else "")
    )
    print(
        f"protocol      : {recipe.protocol} n={recipe.n} t={recipe.t} "
        f"seed={recipe.seed} multicast={recipe.multicast}"
    )
    print(
        f"schedule      : {len(recipe.actions)} rounds, "
        f"{recipe.total_corruptions()} corruptions, "
        f"{recipe.total_omissions()} omissions"
    )
    multicast = (
        None if args.multicast is None else args.multicast == "on"
    )
    columnar = (
        None if args.columnar is None else args.columnar == "on"
    )
    strict = False if args.lenient else None
    try:
        report = replay(
            recipe,
            strict=strict,
            multicast=multicast,
            columnar=columnar,
            model=args.model,
        )
    except ValueError as exc:
        # e.g. the recipe names a protocol this process has not
        # registered (test-only plants live in their test modules).
        print(f"error: {exc}")
        return 2
    print(f"verdict       : {report.summary()}")
    if args.shrink and recipe.failing:
        result = shrink_recipe(recipe)
        out = Path(args.recipe).with_suffix(".shrunk.json")
        save_recipe(result.recipe, out)
        print(
            f"shrunk        : {result.recipe.total_omissions()} omissions / "
            f"{result.recipe.total_corruptions()} corruptions "
            f"({result.replays} replays) -> {out}"
        )
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import render_markdown, run_full_report

    records = run_full_report()
    text = render_markdown(records)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} ({len(records)} experiments)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description=(
            "Nearly-optimal consensus tolerating adaptive omissions "
            "(PODC 2024) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run one registered protocol once (default: Algorithm 1)"
    )
    run_parser.add_argument("--n", type=int, default=128)
    run_parser.add_argument("--t", type=int, default=None)
    run_parser.add_argument(
        "--protocol", default="algorithm1",
        choices=list(available_protocols(sweepable=True)),
    )
    run_parser.add_argument(
        "--inputs", default="mixed", help='"mixed", "0" or "1"'
    )
    run_parser.add_argument(
        "--adversary", default="none", choices=sorted(ADVERSARIES)
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit the full execution result as JSON",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="attach a RoundProfiler and print per-phase wall time",
    )
    run_parser.add_argument(
        "--model", default=None, choices=list(_available_models()),
        help="execution model (default: $REPRO_EXECUTION_MODEL or lockstep)",
    )
    run_parser.add_argument(
        "--transport", default=None, choices=list(_available_transports()),
        help="where processes execute: in-process (default) or real OS "
        "worker processes over localhost TCP",
    )
    run_parser.set_defaults(func=_cmd_run)

    tradeoff_parser = sub.add_parser(
        "tradeoff", help="sweep Algorithm 4 over super-process counts"
    )
    tradeoff_parser.add_argument("--n", type=int, default=64)
    tradeoff_parser.add_argument("--xs", default="1,2,4,8,16")
    tradeoff_parser.add_argument("--seed", type=int, default=0)
    tradeoff_parser.set_defaults(func=_cmd_tradeoff)

    table_parser = sub.add_parser("table1", help="reproduce Table 1")
    table_parser.add_argument("--n", type=int, default=128)
    table_parser.add_argument("--seed", type=int, default=0)
    table_parser.set_defaults(func=_cmd_table1)

    coin_parser = sub.add_parser(
        "coin-game", help="Lemma-12 coin-flipping-game measurements"
    )
    coin_parser.add_argument("--ks", default="16,64,256")
    coin_parser.add_argument("--alpha", type=float, default=0.25)
    coin_parser.add_argument("--trials", type=int, default=1000)
    coin_parser.set_defaults(func=_cmd_coin_game)

    graph_parser = sub.add_parser(
        "graph-check", help="Theorem-4 spreading-graph property checks"
    )
    graph_parser.add_argument("--n", type=int, default=512)
    graph_parser.add_argument("--seed", type=int, default=0)
    graph_parser.set_defaults(func=_cmd_graph_check)

    ablation_parser = sub.add_parser(
        "ablation", help="epoch-budget ablation + decision-bias Monte Carlo"
    )
    ablation_parser.add_argument("--n", type=int, default=48)
    ablation_parser.add_argument("--epochs", default="1,2,4,8")
    ablation_parser.add_argument("--trials", type=int, default=10)
    ablation_parser.add_argument("--seed", type=int, default=0)
    ablation_parser.set_defaults(func=_cmd_ablation)

    campaign_parser = sub.add_parser(
        "campaign",
        help="cached grid sweeps: run | resume | status | query",
        description=(
            "Sweep a (protocol, n, adversary, seed) grid through the "
            "campaign fabric.  Cells are identified by content digest "
            "(CellId) and served from the --cache store when already "
            "computed."
        ),
    )

    def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--name", default="campaign")
        parser.add_argument(
            "--protocol", default="algorithm1",
            choices=list(available_protocols(sweepable=True)),
        )
        parser.add_argument("--ns", default="64,100")
        parser.add_argument("--adversaries", default="none,silence")
        parser.add_argument("--seeds", default="0,1")
        parser.add_argument(
            "--x", type=int, default=None,
            help="tradeoff super-process count (stored in the spec options)",
        )
        parser.add_argument(
            "--capture", default="",
            help='comma list of per-cell observers: "trace", "profile"',
        )
        parser.add_argument(
            "--model", default=None, choices=list(_available_models()),
            help="execution model axis; part of cell identity when given",
        )
        parser.add_argument(
            "--transport", default=None,
            choices=list(_available_transports()),
            help="transport axis (where processes execute); part of cell "
            "identity when given",
        )
        parser.add_argument(
            "--cache", default=None, metavar="DIR",
            help="content-addressed cell cache: hits are served without "
            "executing, newly computed cells are stored for every later "
            "campaign, invocation, or host",
        )

    def _add_run_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--output", default="campaign.json")
        parser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the grid (1 = in-process serial); "
            "cells shard by estimated cost and idle workers steal from "
            "stragglers",
        )
        parser.add_argument(
            "--journal", "--resume", dest="journal", default=None,
            metavar="PATH",
            help="append-only JSONL journal: newly computed cells stream "
            "to it and are reused on restart (--resume is the legacy "
            "spelling)",
        )
        parser.add_argument(
            "--record-failures", default=None, metavar="DIR",
            help="run cells through the replay recorder with invariants "
            "on; violating cells save an ExecutionRecipe here (and into "
            "the cache) instead of aborting the sweep",
        )
        parser.add_argument(
            "--cache-stats", default=None, metavar="PATH",
            help="write hit/miss/computed accounting JSON after the run",
        )
        parser.add_argument(
            "--coordinate", action="store_true",
            help="multi-host mode: claim cells via atomic lease files "
            "under the cache so hosts sharing it partition the grid",
        )
        parser.add_argument(
            "--lease-seconds", type=float, default=3600.0,
            help="claim lease before another host may take a cell over",
        )

    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", metavar="{run,resume,status,query}",
        required=True,
    )
    campaign_run = campaign_sub.add_parser(
        "run", help="execute the grid (cache and journal hits are reused)"
    )
    _add_grid_flags(campaign_run)
    _add_run_flags(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="continue an interrupted sweep from its journal"
    )
    _add_grid_flags(campaign_resume)
    _add_run_flags(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status",
        help="journal + cache standing for a spec (reads only, no runs)",
    )
    _add_grid_flags(campaign_status)
    campaign_status.add_argument(
        "--journal", default=None, metavar="PATH",
        help="JSONL journal to count completed cells from",
    )
    campaign_status.add_argument("--json", action="store_true")
    campaign_status.set_defaults(func=_cmd_campaign_status)

    campaign_query = campaign_sub.add_parser(
        "query",
        help="resolve a spec against the cache and print the hits "
        "(exit 1 when any cell is missing)",
    )
    _add_grid_flags(campaign_query)
    campaign_query.add_argument("--json", action="store_true")
    campaign_query.set_defaults(func=_cmd_campaign_query)

    replay_parser = sub.add_parser(
        "replay",
        help="re-execute a recorded ExecutionRecipe and verify the outcome",
    )
    replay_parser.add_argument("recipe", help="path to a recipe JSON")
    replay_parser.add_argument(
        "--multicast", choices=("on", "off"), default=None,
        help="override the recorded engine send path",
    )
    replay_parser.add_argument(
        "--columnar", choices=("on", "off"), default=None,
        help="override the recorded delivery engine (on = vectorized "
        "numpy path, off = object path)",
    )
    replay_parser.add_argument(
        "--model", default=None, choices=list(_available_models()),
        help="override the recipe's recorded execution model",
    )
    replay_parser.add_argument(
        "--lenient", action="store_true",
        help="cap/censor illegal scripted actions instead of erroring "
        "(the default for failing recipes)",
    )
    replay_parser.add_argument(
        "--shrink", action="store_true",
        help="minimize a failing recipe's schedule and write it back "
        "next to the input as <name>.shrunk.json",
    )
    replay_parser.set_defaults(func=_cmd_replay)

    report_parser = sub.add_parser(
        "report", help="run the full battery and write EXPERIMENTS.md"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.set_defaults(func=_cmd_report)

    serve_parser = sub.add_parser(
        "serve",
        help="run the state-machine-replication service "
        "(examples/state_machine_replication.py), optionally as real OS "
        "processes over localhost TCP",
    )
    serve_parser.add_argument("--replicas", type=int, default=36)
    serve_parser.add_argument("--slots", type=int, default=4)
    serve_parser.add_argument(
        "--transport", default=None, choices=list(_available_transports()),
        help="where the replicas execute (default: in-process)",
    )
    serve_parser.add_argument(
        "--processes-per-worker", type=int, default=None, metavar="K",
        help="TCP transport: replicas hosted per OS worker process",
    )
    serve_parser.add_argument("--seed", type=int, default=77)
    serve_parser.add_argument(
        "--adversary", default="alternate",
        choices=("alternate", "silence", "random", "none"),
    )
    serve_parser.add_argument(
        "--verify-replay", action="store_true",
        help="record every slot and assert it replays in-process to the "
        "identical fingerprint",
    )
    serve_parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run summary (incl. per-link transport metrics) "
        "as JSON",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
