"""Command-line interface: ``repro-consensus``.

Subcommands mirror the experiment index in DESIGN.md::

    repro-consensus run --n 128 --adversary balance
    repro-consensus tradeoff --n 64 --xs 1,2,4,8
    repro-consensus table1 --n 128
    repro-consensus coin-game --ks 64,256 --alpha 0.25
    repro-consensus graph-check --n 512
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from .analysis import render_table, table1
from .core import run_tradeoff_consensus
from .graphs import spreading_graph, theorem4_report
from .harness import (
    RoundProfiler,
    available_protocols,
    execute,
    protocol_spec,
)
from .analysis.montecarlo import decision_bias, fallback_rate_vs_epochs
from .lowerbound import sweep_lemma12
from .params import ProtocolParams
from .runtime import Adversary

ADVERSARIES = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "random": lambda n, t, seed: RandomOmissionAdversary(0.6, seed=seed),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}


def _available_models() -> tuple[str, ...]:
    from .runtime import available_models

    return available_models()


def _build_adversary(name: str, n: int, t: int, seed: int) -> Adversary | None:
    try:
        factory = ADVERSARIES[name]
    except KeyError:
        raise SystemExit(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        ) from None
    return factory(n, t, seed)


def _parse_int_list(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item]


def _cmd_run(args: argparse.Namespace) -> int:
    params = ProtocolParams.practical()
    n = args.n
    spec = protocol_spec(args.protocol)
    t = args.t if args.t is not None else spec.campaign_t(n, params)
    inputs = [pid % 2 for pid in range(n)] if args.inputs == "mixed" else (
        [int(args.inputs)] * n
    )
    adversary = _build_adversary(args.adversary, n, t, args.seed)
    profiler = RoundProfiler() if args.profile else None
    run = execute(
        spec,
        inputs,
        t=t,
        adversary=adversary,
        seed=args.seed,
        observers=(profiler,) if profiler is not None else (),
        model=args.model,
    )
    metrics = run.metrics
    if args.json:
        import json

        from .runtime import result_to_dict

        payload = result_to_dict(run.result)
        payload["protocol"] = spec.name
        payload["decision"] = run.decision
        payload["time_to_agreement"] = run.result.time_to_agreement()
        payload["used_fallback"] = run.used_fallback
        if profiler is not None:
            payload["profile"] = profiler.summary()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"protocol      : {spec.name}")
    print(f"decision      : {run.decision}")
    print(f"time (rounds) : {run.result.time_to_agreement()}")
    print(f"comm. bits    : {metrics.bits_sent}")
    print(f"messages      : {metrics.messages_sent}")
    print(f"random bits   : {metrics.random_bits}")
    print(f"faulty        : {sorted(run.result.faulty)}")
    print(f"used fallback : {run.used_fallback}")
    from .analysis.sparkline import render_series

    print(render_series("traffic/round", metrics.messages_per_round, width=64))
    if profiler is not None:
        summary = profiler.summary()
        print(
            "profile (s)   : "
            f"wall={summary['wall_time']:.4f} "
            f"compute={summary['compute']:.4f} "
            f"adversary={summary['adversary']:.4f} "
            f"delivery={summary['delivery']:.4f} "
            f"overhead={summary['overhead']:.4f}"
        )
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    n = args.n
    inputs = [pid % 2 for pid in range(n)]
    print(f"{'x':>5} {'rounds':>8} {'random bits':>12} {'comm bits':>12}")
    for x in _parse_int_list(args.xs):
        run = run_tradeoff_consensus(inputs, x, seed=args.seed)
        metrics = run.metrics
        print(
            f"{x:>5} {run.result.time_to_agreement():>8} "
            f"{metrics.random_bits:>12} {metrics.bits_sent:>12}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table(table1(n=args.n, seed=args.seed)))
    return 0


def _cmd_coin_game(args: argparse.Namespace) -> int:
    points = sweep_lemma12(
        _parse_int_list(args.ks), [args.alpha], trials=args.trials
    )
    print(f"{'k':>7} {'alpha':>7} {'measured':>9} {'Lemma 12':>9} {'ratio':>6}")
    for point in points:
        print(
            f"{point.k:>7} {point.alpha:>7} {point.measured_budget:>9} "
            f"{point.lemma12_bound:>9.1f} {point.ratio:>6.3f}"
        )
    return 0


def _cmd_graph_check(args: argparse.Namespace) -> int:
    params = ProtocolParams.practical()
    delta = params.delta(args.n)
    graph = spreading_graph(args.n, delta, args.seed)
    report = theorem4_report(graph, delta)
    print(f"n={args.n} delta={delta} edges={graph.edge_count}")
    print(
        f"degrees in [{report.degrees.minimum}, {report.degrees.maximum}] "
        f"(target {report.degrees.expected}); "
        f"within bounds: {report.degrees.within_bounds}"
    )
    print(f"(n/10)-expanding     : {report.expanding}")
    print(f"(n/10, d/15)-sparse  : {report.edge_sparse}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    print(f"fallback rate vs epoch budget (n={args.n}, {args.trials} trials):")
    for epochs, estimate in fallback_rate_vs_epochs(
        args.n, _parse_int_list(args.epochs), trials=args.trials,
        seed=args.seed,
    ):
        print(f"  epochs={epochs:>3}: {estimate}")
    bias = decision_bias(args.n, trials=args.trials, seed=args.seed)
    print(f"decision bias toward 1 on balanced inputs: {bias}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis.campaign import (
        CampaignSpec,
        load_campaign,
        load_journal,
        run_campaign,
        save_campaign,
        summarize_campaign,
    )

    options = {"x": args.x} if args.x is not None else {}
    spec = CampaignSpec(
        name=args.name,
        protocol=args.protocol,
        ns=_parse_int_list(args.ns),
        adversaries=args.adversaries.split(","),
        seeds=_parse_int_list(args.seeds),
        options=options,
        capture=tuple(item for item in args.capture.split(",") if item),
        model=args.model,
    )
    resume = []
    output = args.output
    journal = args.resume
    if journal is not None:
        try:
            resume = load_journal(journal)
            print(f"resuming from {journal} ({len(resume)} records)")
        except FileNotFoundError:
            pass
    else:
        try:
            resume = load_campaign(output)
            print(f"resuming from {output} ({len(resume)} records)")
        except FileNotFoundError:
            pass
    records = run_campaign(
        spec,
        resume_from=resume,
        jobs=args.jobs,
        journal=journal,
        record_failures=args.record_failures,
    )
    failed = [rec for rec in records if rec.get("failed")]
    for rec in failed:
        print(
            f"  FAILED {rec['protocol']} n={rec['n']} {rec['adversary']} "
            f"seed={rec['seed']}: {rec['invariant']} -> {rec['recipe']}"
        )
    save_campaign(records, output)
    print(f"wrote {output} ({len(records)} records)")
    for row in summarize_campaign(records):
        print(
            f"  {row['protocol']} n={row['n']:>4} {row['adversary']:>8}: "
            f"rounds={row['mean_rounds']:.1f} bits={row['mean_bits']:.0f} "
            f"rbits={row['mean_random_bits']:.1f} "
            f"fallback={row['fallback_rate']:.2f}"
        )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .replay import load_recipe, replay, save_recipe, shrink_recipe

    try:
        recipe = load_recipe(args.recipe)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load recipe {args.recipe}: {exc}")
        return 2
    kind = "failing" if recipe.failing else "passing"
    print(
        f"recipe        : {args.recipe} ({kind})"
        + (f" — {recipe.note}" if recipe.note else "")
    )
    print(
        f"protocol      : {recipe.protocol} n={recipe.n} t={recipe.t} "
        f"seed={recipe.seed} multicast={recipe.multicast}"
    )
    print(
        f"schedule      : {len(recipe.actions)} rounds, "
        f"{recipe.total_corruptions()} corruptions, "
        f"{recipe.total_omissions()} omissions"
    )
    multicast = (
        None if args.multicast is None else args.multicast == "on"
    )
    columnar = (
        None if args.columnar is None else args.columnar == "on"
    )
    strict = False if args.lenient else None
    try:
        report = replay(
            recipe,
            strict=strict,
            multicast=multicast,
            columnar=columnar,
            model=args.model,
        )
    except ValueError as exc:
        # e.g. the recipe names a protocol this process has not
        # registered (test-only plants live in their test modules).
        print(f"error: {exc}")
        return 2
    print(f"verdict       : {report.summary()}")
    if args.shrink and recipe.failing:
        result = shrink_recipe(recipe)
        out = Path(args.recipe).with_suffix(".shrunk.json")
        save_recipe(result.recipe, out)
        print(
            f"shrunk        : {result.recipe.total_omissions()} omissions / "
            f"{result.recipe.total_corruptions()} corruptions "
            f"({result.replays} replays) -> {out}"
        )
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import render_markdown, run_full_report

    records = run_full_report()
    text = render_markdown(records)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} ({len(records)} experiments)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description=(
            "Nearly-optimal consensus tolerating adaptive omissions "
            "(PODC 2024) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run one registered protocol once (default: Algorithm 1)"
    )
    run_parser.add_argument("--n", type=int, default=128)
    run_parser.add_argument("--t", type=int, default=None)
    run_parser.add_argument(
        "--protocol", default="algorithm1",
        choices=list(available_protocols(sweepable=True)),
    )
    run_parser.add_argument(
        "--inputs", default="mixed", help='"mixed", "0" or "1"'
    )
    run_parser.add_argument(
        "--adversary", default="none", choices=sorted(ADVERSARIES)
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit the full execution result as JSON",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="attach a RoundProfiler and print per-phase wall time",
    )
    run_parser.add_argument(
        "--model", default=None, choices=list(_available_models()),
        help="execution model (default: $REPRO_EXECUTION_MODEL or lockstep)",
    )
    run_parser.set_defaults(func=_cmd_run)

    tradeoff_parser = sub.add_parser(
        "tradeoff", help="sweep Algorithm 4 over super-process counts"
    )
    tradeoff_parser.add_argument("--n", type=int, default=64)
    tradeoff_parser.add_argument("--xs", default="1,2,4,8,16")
    tradeoff_parser.add_argument("--seed", type=int, default=0)
    tradeoff_parser.set_defaults(func=_cmd_tradeoff)

    table_parser = sub.add_parser("table1", help="reproduce Table 1")
    table_parser.add_argument("--n", type=int, default=128)
    table_parser.add_argument("--seed", type=int, default=0)
    table_parser.set_defaults(func=_cmd_table1)

    coin_parser = sub.add_parser(
        "coin-game", help="Lemma-12 coin-flipping-game measurements"
    )
    coin_parser.add_argument("--ks", default="16,64,256")
    coin_parser.add_argument("--alpha", type=float, default=0.25)
    coin_parser.add_argument("--trials", type=int, default=1000)
    coin_parser.set_defaults(func=_cmd_coin_game)

    graph_parser = sub.add_parser(
        "graph-check", help="Theorem-4 spreading-graph property checks"
    )
    graph_parser.add_argument("--n", type=int, default=512)
    graph_parser.add_argument("--seed", type=int, default=0)
    graph_parser.set_defaults(func=_cmd_graph_check)

    ablation_parser = sub.add_parser(
        "ablation", help="epoch-budget ablation + decision-bias Monte Carlo"
    )
    ablation_parser.add_argument("--n", type=int, default=48)
    ablation_parser.add_argument("--epochs", default="1,2,4,8")
    ablation_parser.add_argument("--trials", type=int, default=10)
    ablation_parser.add_argument("--seed", type=int, default=0)
    ablation_parser.set_defaults(func=_cmd_ablation)

    campaign_parser = sub.add_parser(
        "campaign", help="batch grid sweep with JSON persistence/resume"
    )
    campaign_parser.add_argument("--name", default="campaign")
    campaign_parser.add_argument(
        "--protocol", default="algorithm1",
        choices=list(available_protocols(sweepable=True)),
    )
    campaign_parser.add_argument("--ns", default="64,100")
    campaign_parser.add_argument("--adversaries", default="none,silence")
    campaign_parser.add_argument("--seeds", default="0,1")
    campaign_parser.add_argument("--output", default="campaign.json")
    campaign_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the grid (1 = in-process serial)",
    )
    campaign_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="append-only JSONL journal: completed cells stream to it and "
        "are reused on restart (takes precedence over --output for resume)",
    )
    campaign_parser.add_argument(
        "--x", type=int, default=None,
        help="tradeoff super-process count (stored in the spec options)",
    )
    campaign_parser.add_argument(
        "--capture", default="",
        help='comma list of per-cell observers to attach: "trace", "profile"',
    )
    campaign_parser.add_argument(
        "--record-failures", default=None, metavar="DIR",
        help="run cells through the replay recorder with invariants on; "
        "violating cells save an ExecutionRecipe here instead of aborting "
        "the sweep",
    )
    campaign_parser.add_argument(
        "--model", default=None, choices=list(_available_models()),
        help="execution model axis; part of cell identity when given",
    )
    campaign_parser.set_defaults(func=_cmd_campaign)

    replay_parser = sub.add_parser(
        "replay",
        help="re-execute a recorded ExecutionRecipe and verify the outcome",
    )
    replay_parser.add_argument("recipe", help="path to a recipe JSON")
    replay_parser.add_argument(
        "--multicast", choices=("on", "off"), default=None,
        help="override the recorded engine send path",
    )
    replay_parser.add_argument(
        "--columnar", choices=("on", "off"), default=None,
        help="override the recorded delivery engine (on = vectorized "
        "numpy path, off = object path)",
    )
    replay_parser.add_argument(
        "--model", default=None, choices=list(_available_models()),
        help="override the recipe's recorded execution model",
    )
    replay_parser.add_argument(
        "--lenient", action="store_true",
        help="cap/censor illegal scripted actions instead of erroring "
        "(the default for failing recipes)",
    )
    replay_parser.add_argument(
        "--shrink", action="store_true",
        help="minimize a failing recipe's schedule and write it back "
        "next to the input as <name>.shrunk.json",
    )
    replay_parser.set_defaults(func=_cmd_replay)

    report_parser = sub.add_parser(
        "report", help="run the full battery and write EXPERIMENTS.md"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
