"""A rollout-based valency adversary: Lemmas 14/15 as a search procedure.

The Theorem-2 proof is existential: *some* adaptive strategy keeps the
execution null-/bivalent by picking, each round, an action under which the
decision probability stays away from 0 and 1.  For small systems that
strategy is computable by brute force:

* the adversary's full-information view is replayable — every execution is
  a deterministic function of (seed, adversary action sequence);
* so the value ``Pr(H, A)`` of a candidate action can be *estimated by
  rollouts*: re-simulate the whole execution from round 0 with the recorded
  action prefix, the candidate action, and a cheap default policy for the
  suffix, across several continuation seeds;
* each round the adversary evaluates a small action menu (do nothing,
  silence k holders of either bit, ...) and commits to the action whose
  rollout estimate of Pr[decide 1] is closest to 1/2 — the valency-keeping
  choice of Lemma 14/15.

This is expensive (simulations per round = |menu| x rollouts), so it is a
small-n research instrument, not a benchmark workhorse; the test suite runs
it against the broadcast voting baseline where it measurably outlasts the
myopic balancing adversary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..runtime import (
    Adversary,
    AdversaryAction,
    AdversaryContext,
    NetworkView,
    SyncNetwork,
    SyncProcess,
    setup_adversary,
)
from ..runtime.randomness import stable_seed

#: Builds a fresh, identically-configured process list for re-simulation.
ProcessFactory = Callable[[], list[SyncProcess]]


class KeepSilencingFaulty(Adversary):
    """Suffix policy for rollouts: keep omitting all faulty traffic.

    Without this, a rollout's suffix would let previously silenced
    processes speak again, skewing every estimate optimistic.
    """

    def act(self, view: NetworkView) -> AdversaryAction:
        return AdversaryAction(
            omit=view.message_indices_touching(view.faulty)
        )


class ScriptedAdversary(Adversary):
    """Replay a recorded action prefix, then follow a fallback policy."""

    def __init__(
        self,
        script: Sequence[AdversaryAction],
        fallback: Adversary | None = None,
    ) -> None:
        self.script = list(script)
        self.fallback = (
            fallback if fallback is not None else KeepSilencingFaulty()
        )

    def setup(self, ctx: AdversaryContext) -> None:
        setup_adversary(self.fallback, ctx)

    def act(self, view: NetworkView) -> AdversaryAction:
        if view.round < len(self.script):
            action = self.script[view.round]
            # Re-validate omissions against THIS run's message list: the
            # prefix is replayed on identical executions, but clamping
            # keeps a stale script from crashing a divergent rollout.
            omit = frozenset(
                index for index in action.omit if index < len(view.messages)
            )
            return AdversaryAction(corrupt=action.corrupt, omit=omit)
        return self.fallback.act(view)


def _silence_action(
    view: NetworkView, pids: frozenset[int]
) -> AdversaryAction:
    """Corrupt ``pids`` (budget-capped upstream) and omit their traffic."""
    return AdversaryAction(
        corrupt=pids - view.faulty,
        omit=view.message_indices_touching(pids),
    )


@dataclass(frozen=True)
class RolloutConfig:
    """Tuning of the rollout search."""

    rollouts: int = 6
    max_silence_per_round: int = 2
    horizon: int = 400


class RolloutValencyAdversary(Adversary):
    """Pick, each round, the action whose estimated Pr[decide 1] is most
    ambivalent (closest to 1/2) — the executable Lemma-14/15 strategy.

    Parameters
    ----------
    process_factory:
        Rebuilds the protocol's process list from scratch; rollouts
        re-simulate the execution deterministically up to the current round
        (same engine seed) and randomly beyond it.
    engine_seed:
        The seed of the *real* network this adversary is attached to —
        required so the replayed prefix reproduces the real execution.
    decision_probe:
        Maps a finished rollout's decisions to the outcome being tracked
        (default: the majority decision value equals 1).
    """

    def __init__(
        self,
        process_factory: ProcessFactory,
        engine_seed: int,
        config: RolloutConfig | None = None,
        decision_probe: Callable[[dict], bool] | None = None,
        seed: int = 0,
    ) -> None:
        self.process_factory = process_factory
        self.engine_seed = engine_seed
        self.config = config if config is not None else RolloutConfig()
        self.decision_probe = (
            decision_probe if decision_probe is not None else _majority_one
        )
        self._rng = random.Random(stable_seed("rollout-adversary", seed))
        self.history: list[AdversaryAction] = []
        self._silenced: set[int] = set()
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _estimate(
        self, t: int, prefix: list[AdversaryAction]
    ) -> float:
        """Rollout estimate of Pr[probe] under the given action prefix.

        Each rollout replays the recorded prefix on the real engine seed
        (reproducing every coin the adversary has already observed) and
        *forks* the random sources at the first un-simulated round, so the
        suffix randomness differs per rollout — the adversary never peeks
        at future coins.
        """
        hits = 0
        fork_round = len(prefix)
        for _rollout_index in range(self.config.rollouts):
            self.evaluations += 1
            processes = self.process_factory()
            scripted = ScriptedAdversary(prefix)
            fork_seed = self._rng.getrandbits(48)
            # Rollout forks replay a recorded prefix with reseed_at,
            # below the harness surface: a designated engine fixture.
            network = SyncNetwork(  # repro-lint: disable=REP008
                processes,
                adversary=scripted,
                t=t,
                seed=self.engine_seed,
                max_rounds=self.config.horizon,
                reseed_at=(fork_round, fork_seed),
            )
            try:
                result = network.run()
            except Exception:
                continue
            if self.decision_probe(result.decisions):
                hits += 1
        return hits / max(1, self.config.rollouts)

    def _candidate_actions(
        self, view: NetworkView
    ) -> list[AdversaryAction]:
        """The action menu: no-op plus silencing small holder groups."""
        menu = [
            AdversaryAction(
                corrupt=frozenset(),
                omit=view.message_indices_touching(self._silenced),
            )
        ]
        if view.budget_left <= 0:
            return menu
        holders: dict[int, list[int]] = {0: [], 1: []}
        for process in view.processes:
            bit = getattr(process, "b", None)
            if bit not in (0, 1):
                continue
            if process.pid in view.faulty or process.pid in view.terminated:
                continue
            if getattr(process, "decided", False):
                continue
            holders[bit].append(process.pid)
        for bit in (0, 1):
            for count in range(
                1, min(self.config.max_silence_per_round, view.budget_left) + 1
            ):
                if len(holders[bit]) < count:
                    continue
                pids = frozenset(holders[bit][:count]) | self._silenced
                menu.append(_silence_action(view, frozenset(pids)))
        return menu

    def act(self, view: NetworkView) -> AdversaryAction:
        menu = self._candidate_actions(view)
        if len(menu) == 1:
            chosen = menu[0]
        else:
            best_score = None
            chosen = menu[0]
            for action in menu:
                estimate = self._estimate(
                    view.budget_left + len(view.faulty),
                    self.history + [action],
                )
                score = abs(estimate - 0.5)
                if best_score is None or score < best_score:
                    best_score = score
                    chosen = action
        self.history.append(chosen)
        self._silenced |= set(chosen.corrupt)
        return chosen


def _majority_one(decisions: dict) -> bool:
    values = [value for value in decisions.values() if value in (0, 1)]
    if not values:
        return False
    return sum(values) * 2 > len(values)
