"""Constructive Theorem-2 experiment: the T x (R + T) product under attack.

Theorem 2 proves every consensus algorithm correct with probability
``>= 1 - n^{-3/2}`` obeys ``T x (R + T) = Omega(t^2 / log n)`` against some
adaptive strategy, where T is the round count and R the number of
random-source calls.  The proof's engine is the coin-flipping game: hiding
``~ sqrt(r_i log n)`` deviating coins per round keeps the execution
null/bivalent, so randomness-frugal algorithms stall for ~quadratically
longer.

This module realizes that engine as a concrete adversary against the
broadcast voting protocol (:class:`repro.baselines.ben_or.BenOrVotingProcess`)
whose per-round coin access is throttled to ``k`` processes:

* :class:`BalancingCrashAdversary` watches candidate bits (full information)
  and silences holders of the leading value, paying ``~ |margin|`` ≈
  ``sqrt(k)`` corruptions per round — exactly the Lemma-12 price;
* :func:`measure_tradeoff_product` sweeps k and reports measured
  ``(T, R, T*(R+T))`` against the ``t^2 / log2(n)`` reference — the
  empirical counterpart of the lower-bound curve (who-wins shape: the
  product stays ≈ flat in k, i.e. halving randomness roughly doubles time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..baselines.ben_or import BenOrVotingProcess, run_ben_or
from ..runtime import Adversary, AdversaryAction, NetworkView


class BalancingCrashAdversary(Adversary):
    """Silence leading-bit holders to pin the vote at the threshold.

    Each round it inspects undecided processes' candidate bits, computes the
    margin of the leading value, and corrupts enough of its holders
    (silencing them completely — the crash special case of omissions) to
    cancel the margin.  It prefers holders that are *allowed to flip coins*
    last, so the randomness supply is drained as slowly as possible, which is
    the adversary-optimal behaviour in the Theorem-2 analysis.
    """

    def __init__(self, target_margin: float = 0.0) -> None:
        self.target_margin = target_margin
        self._silenced: set[int] = set()
        self.corruptions_per_round: list[int] = []

    def act(self, view: NetworkView) -> AdversaryAction:
        ones_holders: list[int] = []
        zeros_holders: list[int] = []
        for process in view.processes:
            if not isinstance(process, BenOrVotingProcess):
                continue
            if process.pid in self._silenced or process.pid in view.terminated:
                continue
            if process.decided:
                continue
            if process.b == 1:
                ones_holders.append(process.pid)
            else:
                zeros_holders.append(process.pid)

        ones, zeros = len(ones_holders), len(zeros_holders)
        margin = ones - zeros
        corrupt: frozenset[int] = frozenset()
        if abs(margin) > 2 * self.target_margin and view.budget_left > 0:
            leading = ones_holders if margin > 0 else zeros_holders
            need = (abs(margin) + 1) // 2
            # Silence coinless holders first: they can never flip back, so
            # removing them is pure profit for the adversary.
            coinless = [
                pid
                for pid in leading
                if not self._may_flip(view, pid)
            ]
            coinful = [pid for pid in leading if self._may_flip(view, pid)]
            ordered = coinless + coinful
            chosen = ordered[: min(need, view.budget_left)]
            corrupt = frozenset(chosen)
            self._silenced |= corrupt
        self.corruptions_per_round.append(len(corrupt))

        silenced_now = self._silenced & (view.faulty | corrupt)
        return AdversaryAction(
            corrupt=corrupt,
            omit=view.message_indices_touching(silenced_now),
        )

    @staticmethod
    def _may_flip(view: NetworkView, pid: int) -> bool:
        process = view.processes[pid]
        coin_pids = getattr(process, "coin_pids", None)
        return coin_pids is None or pid in coin_pids


@dataclass(frozen=True)
class AttackPoint:
    """One sweep point of the Theorem-2 experiment."""

    coin_processes: int
    rounds: int
    random_calls: int
    product: int
    reference: float
    decided_all: bool
    #: Whether non-faulty processes still agreed.  A stalled run that is cut
    #: off by the phase budget may violate agreement — that is precisely the
    #: theorem's dichotomy: be slow, or stop being correct.
    agreement_ok: bool

    @property
    def normalized(self) -> float:
        """measured product / (t^2 / log2 n) — Theorem 2 predicts Ω(1)."""
        if self.reference == 0:
            return math.inf
        return self.product / self.reference


def measure_tradeoff_product(
    n: int,
    t: int,
    coin_counts: Sequence[int],
    seed: int = 0,
    max_phases: int | None = None,
) -> list[AttackPoint]:
    """Sweep the number of coin-enabled processes; measure T x (R + T).

    Inputs are perfectly balanced, the hardest starting point.  For each k
    the balancing adversary attacks a run where only processes
    ``0..k-1`` may call the random source.
    """
    points = []
    inputs = [pid % 2 for pid in range(n)]
    reference = t * t / max(1.0, math.log2(n))
    for k in coin_counts:
        adversary = BalancingCrashAdversary()
        coin_pids = frozenset(range(k)) if k < n else None
        result = run_ben_or(
            inputs,
            t=t,
            adversary=adversary,
            coin_pids=coin_pids,
            seed=seed,
            max_phases=max_phases,
        ).result
        try:
            # The paper's time metric: last non-faulty decision.
            rounds = result.time_to_agreement()
        except AssertionError:
            rounds = result.metrics.rounds
        # The paper's R metric stops at the last non-faulty termination;
        # counting only non-faulty sources excludes the coins that eclipsed
        # faulty stragglers burn while waiting out their timeout.
        calls = sum(
            calls_and_bits[0]
            for pid, calls_and_bits in enumerate(result.randomness_per_process)
            if pid not in result.faulty
        )
        try:
            result.agreement_value()
            agreement_ok = True
        except AssertionError:
            agreement_ok = False
        points.append(
            AttackPoint(
                coin_processes=k,
                rounds=rounds,
                random_calls=calls,
                product=rounds * (calls + rounds),
                reference=reference,
                decided_all=result.all_terminated,
                agreement_ok=agreement_ok,
            )
        )
    return points
