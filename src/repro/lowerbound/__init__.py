"""Lower-bound machinery (Section 4 / Appendix C).

* :mod:`~repro.lowerbound.coin_game` — the one-round coin-flipping game and
  the Lemma-12 hide-budget measurements;
* :mod:`~repro.lowerbound.talagrand` — exact numeric verification of
  Talagrand's inequality (Theorem 6) on threshold sets;
* :mod:`~repro.lowerbound.valency` — exhaustive valency classification of
  toy protocols under adaptive crash schedules (Lemma 13);
* :mod:`~repro.lowerbound.tradeoff_attack` — the constructive
  ``T x (R + T)`` experiment against randomness-throttled voting
  (Theorem 2's empirical shape).
"""

from .anticoncentration import (
    Lemma9Check,
    adversary_cost_to_cancel,
    deviation_probability,
    lemma9_lower_bound,
    verify_lemma9,
)
from .coin_game import (
    CoinGamePoint,
    corollary1_budget,
    ThresholdCoinGame,
    bias_success_probability,
    lemma12_budget,
    minimal_budget_for_success,
    sweep_lemma12,
)
from .talagrand import (
    TalagrandCheck,
    binomial_tail_geq,
    binomial_tail_lt,
    check_threshold_point,
    verify_threshold_inequality,
)
from .rollout_adversary import (
    KeepSilencingFaulty,
    RolloutConfig,
    RolloutValencyAdversary,
    ScriptedAdversary,
)
from .tradeoff_attack import (
    AttackPoint,
    BalancingCrashAdversary,
    measure_tradeoff_product,
)
from .prob_valency import (
    BIVALENT,
    NULL_VALENT,
    ONE_VALENT,
    ZERO_VALENT,
    CoinVotingProtocol,
    ProbabilisticValency,
    RandomizedToyProtocol,
    classify_state,
    lemma13_probabilistic_witness,
    probability_band,
)
from .valency import (
    DISAGREEMENT,
    STUCK,
    FloodMinProtocol,
    MajorityRoundsProtocol,
    ToyProtocol,
    ValencyReport,
    classify_all_inputs,
    reachable_outcomes,
)

__all__ = [
    "Lemma9Check",
    "adversary_cost_to_cancel",
    "deviation_probability",
    "lemma9_lower_bound",
    "verify_lemma9",
    "CoinGamePoint",
    "corollary1_budget",
    "ThresholdCoinGame",
    "bias_success_probability",
    "lemma12_budget",
    "minimal_budget_for_success",
    "sweep_lemma12",
    "TalagrandCheck",
    "binomial_tail_geq",
    "binomial_tail_lt",
    "check_threshold_point",
    "verify_threshold_inequality",
    "KeepSilencingFaulty",
    "RolloutConfig",
    "RolloutValencyAdversary",
    "ScriptedAdversary",
    "AttackPoint",
    "BalancingCrashAdversary",
    "measure_tradeoff_product",
    "DISAGREEMENT",
    "STUCK",
    "FloodMinProtocol",
    "MajorityRoundsProtocol",
    "ToyProtocol",
    "ValencyReport",
    "classify_all_inputs",
    "reachable_outcomes",
    "BIVALENT",
    "NULL_VALENT",
    "ONE_VALENT",
    "ZERO_VALENT",
    "CoinVotingProtocol",
    "ProbabilisticValency",
    "RandomizedToyProtocol",
    "classify_state",
    "lemma13_probabilistic_witness",
    "probability_band",
]
