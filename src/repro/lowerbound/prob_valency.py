"""Exact probabilistic valency for small *randomized* toy protocols.

The lower-bound proof classifies states by ``Pr(H, A)`` — the probability
of reaching consensus on 1 when continuing history ``H`` under adversary
strategy ``A`` (Appendix C).  For tiny randomized protocols this quantity
is exactly computable: a minimax/expectimax recursion where

* *chance nodes* are the local-computation coins (the adversary cannot see
  a coin before it is flipped, but acts after — Section 2's ordering);
* *adversary nodes* pick the crash action (with crash-round delivery
  subsets, as in :mod:`repro.lowerbound.valency`) after observing the
  round's coins — the full-information adaptivity the paper grants.

:func:`probability_band` returns ``(inf_A Pr, sup_A Pr)``; states are then
classified into the paper's four types relative to a slack ``epsilon``:

* null-valent:  ``eps <= inf`` and ``sup <= 1 - eps``;
* 1-valent:     ``sup > 1 - eps`` and ``inf >= eps``;
* 0-valent:     ``inf < eps`` and ``sup <= 1 - eps``;
* bivalent:     ``sup > 1 - eps`` and ``inf < eps``.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Hashable

NULL_VALENT = "null-valent"
ONE_VALENT = "1-valent"
ZERO_VALENT = "0-valent"
BIVALENT = "bivalent"


class RandomizedToyProtocol(ABC):
    """A synchronous broadcast protocol whose processes may flip coins.

    Per round, in the paper's phase order: each alive process first applies
    its (optional) coin to its state, then broadcasts, then transitions on
    the received values.
    """

    def __init__(self, n: int, max_rounds: int) -> None:
        if n < 1 or max_rounds < 1:
            raise ValueError("need n >= 1 and max_rounds >= 1")
        self.n = n
        self.max_rounds = max_rounds

    @abstractmethod
    def initial_state(self, pid: int, input_bit: int) -> Hashable: ...

    @abstractmethod
    def wants_coin(self, state: Hashable, round_no: int) -> bool:
        """Whether this process calls its random source this round."""

    @abstractmethod
    def apply_coin(
        self, state: Hashable, round_no: int, bit: int
    ) -> Hashable: ...

    @abstractmethod
    def outgoing(self, state: Hashable, round_no: int) -> Hashable: ...

    @abstractmethod
    def transition(
        self,
        state: Hashable,
        round_no: int,
        inbox: tuple[tuple[int, Hashable], ...],
    ) -> Hashable: ...

    @abstractmethod
    def decision(self, state: Hashable) -> int: ...


class CoinVotingProtocol(RandomizedToyProtocol):
    """Minimal randomized consensus attempt: follow unanimity, else flip.

    Each process holds a bit; rounds broadcast bits; a process seeing
    unanimity adopts it deterministically, otherwise it re-flips its bit.
    At the horizon it decides its bit.  The protocol is correct only when
    the adversary is too poor to keep breaking unanimity — exactly the
    dynamic the Theorem-2 analysis amortizes.
    """

    def initial_state(self, pid: int, input_bit: int) -> tuple[int, bool]:
        return (input_bit, False)  # (bit, currently-mixed?)

    def wants_coin(self, state: tuple[int, bool], round_no: int) -> bool:
        return state[1]

    def apply_coin(
        self, state: tuple[int, bool], round_no: int, bit: int
    ) -> tuple[int, bool]:
        return (bit, False)

    def outgoing(self, state: tuple[int, bool], round_no: int) -> int:
        return state[0]

    def transition(
        self,
        state: tuple[int, bool],
        round_no: int,
        inbox: tuple[tuple[int, int], ...],
    ) -> tuple[int, bool]:
        values = {state[0]} | {value for _, value in inbox}
        if len(values) == 1:
            return (state[0], False)
        return (state[0], True)  # mixed view: flip next round

    def decision(self, state: tuple[int, bool]) -> int:
        return state[0]


def probability_band(
    protocol: RandomizedToyProtocol,
    inputs: tuple[int, ...],
    t: int,
) -> tuple[float, float]:
    """Exact ``(inf_A Pr[consensus on 1], sup_A Pr[consensus on 1])``.

    "Consensus on 1" means every never-crashed process decides 1 at the
    horizon; disagreement and consensus-on-0 both count as 0 toward the
    probability, matching the paper's ``Pr(H, A)``.
    """
    n = protocol.n
    if len(inputs) != n:
        raise ValueError(f"need {n} inputs, got {len(inputs)}")
    initial = tuple(
        protocol.initial_state(pid, inputs[pid]) for pid in range(n)
    )
    cache: dict[tuple, float] = {}

    def adversary_choices(alive: frozenset[int], budget: int):
        """All (crashed, delivery) actions available this round."""
        alive_sorted = sorted(alive)
        for crash_count in range(0, budget + 1):
            for crashed in itertools.combinations(alive_sorted, crash_count):
                receiver_options = []
                for pid in crashed:
                    receivers = [q for q in alive_sorted if q != pid]
                    receiver_options.append(
                        [
                            frozenset(subset)
                            for size in range(len(receivers) + 1)
                            for subset in itertools.combinations(
                                receivers, size
                            )
                        ]
                    )
                for delivery in itertools.product(*receiver_options):
                    yield crashed, delivery

    def evaluate(
        round_no: int,
        alive: frozenset[int],
        states: tuple,
        maximize: bool,
    ) -> float:
        if round_no == protocol.max_rounds:
            decisions = {protocol.decision(states[pid]) for pid in alive}
            return 1.0 if decisions == {1} else 0.0
        key = (round_no, alive, states, maximize)
        cached = cache.get(key)
        if cached is not None:
            return cached

        flippers = [
            pid
            for pid in sorted(alive)
            if protocol.wants_coin(states[pid], round_no)
        ]
        total = 0.0
        weight = 0.5 ** len(flippers)
        for coins in itertools.product((0, 1), repeat=len(flippers)):
            coined = list(states)
            for pid, bit in zip(flippers, coins):
                coined[pid] = protocol.apply_coin(coined[pid], round_no, bit)
            broadcast = {
                pid: protocol.outgoing(coined[pid], round_no)
                for pid in sorted(alive)
            }
            best: float | None = None
            budget = t - (n - len(alive))
            for crashed, delivery in adversary_choices(alive, budget):
                crashed_set = frozenset(crashed)
                survivors = alive - crashed_set
                new_states = list(coined)
                for pid in sorted(survivors):
                    inbox = []
                    for sender in sorted(alive):
                        if sender == pid:
                            continue
                        if sender in crashed_set:
                            index = crashed.index(sender)
                            if pid not in delivery[index]:
                                continue
                        inbox.append((sender, broadcast[sender]))
                    new_states[pid] = protocol.transition(
                        coined[pid], round_no, tuple(inbox)
                    )
                value = evaluate(
                    round_no + 1, survivors, tuple(new_states), maximize
                )
                if best is None:
                    best = value
                elif maximize:
                    best = max(best, value)
                else:
                    best = min(best, value)
                # Bound short-circuiting.
                if maximize and best == 1.0:
                    break
                if not maximize and best == 0.0:
                    break
            total += weight * (best if best is not None else 0.0)
        cache[key] = total
        return total

    alive = frozenset(range(n))
    return (
        evaluate(0, alive, initial, maximize=False),
        evaluate(0, alive, initial, maximize=True),
    )


@dataclass(frozen=True)
class ProbabilisticValency:
    """Classification of one initial state."""

    inputs: tuple[int, ...]
    inf_probability: float
    sup_probability: float
    classification: str


def classify_state(
    protocol: RandomizedToyProtocol,
    inputs: tuple[int, ...],
    t: int,
    epsilon: float = 0.1,
) -> ProbabilisticValency:
    """Classify an initial state into the paper's four valency types."""
    if not 0.0 < epsilon < 0.5:
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    inf_probability, sup_probability = probability_band(protocol, inputs, t)
    high = sup_probability > 1 - epsilon
    low = inf_probability < epsilon
    if high and low:
        classification = BIVALENT
    elif high:
        classification = ONE_VALENT
    elif low:
        classification = ZERO_VALENT
    else:
        classification = NULL_VALENT
    return ProbabilisticValency(
        inputs=tuple(inputs),
        inf_probability=inf_probability,
        sup_probability=sup_probability,
        classification=classification,
    )


def lemma13_probabilistic_witness(
    protocol: RandomizedToyProtocol,
    t: int,
    epsilon: float = 0.1,
) -> ProbabilisticValency | None:
    """An initial state that is null-valent or bivalent (Lemma 13)."""
    for inputs in itertools.product((0, 1), repeat=protocol.n):
        result = classify_state(protocol, inputs, t, epsilon)
        if result.classification in (NULL_VALENT, BIVALENT):
            return result
    return None
