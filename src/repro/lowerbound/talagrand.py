"""Numerical verification of Talagrand's inequality (Theorem 6 / [35]).

The lower-bound proof rests on Talagrand's concentration inequality for
product spaces: for any ``U ⊆ Ω^k`` and ``t ≥ 0``,

    Pr[U] * Pr[ρ(U, x) > t] <= exp(-t^2 / 4),

where ``ρ`` is the convex distance.  For *monotone threshold* sets on the
Boolean cube — ``U_s = {x ∈ {0,1}^k : Σx_i >= s}``, exactly the sets the
coin-flipping game uses — the uniform-weight witness gives
``ρ(U_s, x) >= (s - Σx_i)^+ / sqrt(k)``, so verifying

    Pr[Bin(k,1/2) >= s] * Pr[Bin(k,1/2) < s - t*sqrt(k)] <= exp(-t^2/4)

is a sound (slightly stronger-than-needed) numeric check, computable exactly
with binomial tails.  :func:`verify_threshold_inequality` evaluates it on a
grid; the benchmark asserts no violations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence


@lru_cache(maxsize=4096)
def binomial_tail_geq(k: int, s: int) -> float:
    """Exact ``Pr[Bin(k, 1/2) >= s]``."""
    if s <= 0:
        return 1.0
    if s > k:
        return 0.0
    total = sum(math.comb(k, i) for i in range(s, k + 1))
    # Integer/integer division: exact big-int arithmetic until the final
    # float conversion (2.0**k would overflow beyond k ~ 1023).
    return total / (1 << k)


def binomial_tail_lt(k: int, s: float) -> float:
    """Exact ``Pr[Bin(k, 1/2) < s]``."""
    ceiling = math.ceil(s)
    if ceiling <= 0:
        return 0.0
    return 1.0 - binomial_tail_geq(k, ceiling)


@dataclass(frozen=True)
class TalagrandCheck:
    """One grid point of the Theorem-6 verification."""

    k: int
    s: int
    t: float
    lhs: float
    rhs: float

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs + 1e-12


def check_threshold_point(k: int, s: int, t: float) -> TalagrandCheck:
    """Evaluate both sides of the inequality for the threshold set U_s."""
    pr_u = binomial_tail_geq(k, s)
    pr_far = binomial_tail_lt(k, s - t * math.sqrt(k))
    return TalagrandCheck(
        k=k, s=s, t=t, lhs=pr_u * pr_far, rhs=math.exp(-t * t / 4.0)
    )


def verify_threshold_inequality(
    ks: Sequence[int],
    t_values: Sequence[float],
    thresholds_per_k: int = 5,
) -> list[TalagrandCheck]:
    """Evaluate the inequality on a grid of (k, s, t); returns all points.

    Thresholds are spread from the mean to the far tail for each k, probing
    both the bulk (large Pr[U]) and the tail (small Pr[U]) regimes.
    """
    checks = []
    for k in ks:
        mean = k // 2
        spread = max(1, int(2 * math.sqrt(k)))
        step = max(1, (2 * spread) // max(1, thresholds_per_k - 1))
        thresholds = range(mean - spread, mean + spread + 1, step)
        for s in thresholds:
            for t in t_values:
                checks.append(check_threshold_point(k, max(0, s), t))
    return checks
