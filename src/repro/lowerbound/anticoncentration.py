"""Numeric verification of Lemma 9 (anti-concentration of the coin sum).

Lemma 9 (quoted from [10], Lemma 4.3): if n processes flip fair coins and X
counts the 1s, then for any ``t <= sqrt(n)/8``

    Pr[X - E[X] >= t * sqrt(n)]  >=  exp(-4 (t+1)^2) / sqrt(2 pi).

This is the engine of the upper bound's progress argument (Lemma 10): with
constant probability the coin flips *deviate* enough that the adversary
must spend ~sqrt(n) corruptions to cancel them.  Binomial tails are exactly
computable, so the lemma is verifiable point by point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from .talagrand import binomial_tail_geq


def lemma9_lower_bound(t: float) -> float:
    """The Lemma-9 guaranteed probability ``exp(-4(t+1)^2)/sqrt(2 pi)``."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    return math.exp(-4.0 * (t + 1.0) ** 2) / math.sqrt(2.0 * math.pi)


def deviation_probability(n: int, t: float) -> float:
    """Exact ``Pr[X - n/2 >= t sqrt(n)]`` for ``X ~ Bin(n, 1/2)``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    threshold = math.ceil(n / 2.0 + t * math.sqrt(n))
    return binomial_tail_geq(n, threshold)


@dataclass(frozen=True)
class Lemma9Check:
    """One grid point of the Lemma-9 verification."""

    n: int
    t: float
    exact: float
    bound: float

    @property
    def holds(self) -> bool:
        return self.exact >= self.bound - 1e-15

    @property
    def slack(self) -> float:
        """exact / bound — how loose the constant-4 exponent is."""
        if self.bound == 0:
            return math.inf
        return self.exact / self.bound


def verify_lemma9(
    ns: Sequence[int],
    t_values: Sequence[float] | None = None,
) -> list[Lemma9Check]:
    """Evaluate Lemma 9 on a grid; each point's ``holds`` should be True.

    ``t_values`` defaults to a spread over the lemma's valid range
    ``t <= sqrt(n)/8`` for each n.
    """
    checks = []
    for n in ns:
        limit = math.sqrt(n) / 8.0
        values = (
            t_values
            if t_values is not None
            else [0.0, limit / 4, limit / 2, limit]
        )
        for t in values:
            if t > limit:
                continue
            checks.append(
                Lemma9Check(
                    n=n,
                    t=t,
                    exact=deviation_probability(n, t),
                    bound=lemma9_lower_bound(t),
                )
            )
    return checks


def adversary_cost_to_cancel(n: int, quantile: float = 0.25) -> int:
    """Corruptions the adversary needs to cancel a typical coin deviation.

    Returns the ``quantile``-upper deviation of ``Bin(n, 1/2)`` from its
    mean (in processes).  With probability at least ``quantile``, cancelling
    the coin round costs the adversary at least this many corruptions —
    the quantity Lemma 10's "good epoch" argument charges against the
    budget.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    deviation = 0
    while deviation <= n:
        threshold = n // 2 + deviation
        if binomial_tail_geq(n, threshold) < quantile:
            return max(0, deviation - 1)
        deviation += 1
    return n
