"""The one-round coin-flipping game (Appendix C, Lemma 12 / Corollary 1).

Abstraction: ``k`` players draw independent random values; a full-information
adversary may *hide* (replace by ⊥) a bounded number of them; a known
function ``f`` of the (partially hidden) values decides the binary outcome.
Lemma 12: for any ``alpha <= 1/2`` the adversary can bias the game toward
one fixed outcome with probability ``> 1 - alpha`` by hiding at most
``8 sqrt(k log(1/alpha))`` values.

This module implements the game for the canonical *threshold* family —
players flip fair ±1 coins and ``f`` is 1 iff the visible sum is at least a
threshold (hidden values count 0) — where the optimal adversary is greedy
(hide the largest contributors toward the undesired side).  The
Theorem-2-shaped experiments measure, by Monte-Carlo + binary search, the
minimal hide budget achieving success probability ``1 - alpha`` and compare
its growth with ``sqrt(k log(1/alpha))``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Sequence

from ..runtime.randomness import stable_seed


@dataclass(frozen=True)
class ThresholdCoinGame:
    """Players flip fair ±1 coins; outcome 1 iff visible sum >= threshold.

    ``threshold = 0`` is the symmetric majority game the lower-bound proof
    feeds with "state transitions that look 1-ish vs 0-ish".
    """

    k: int
    threshold: int = 0

    def outcome(self, values: Sequence[int], hidden: frozenset[int]) -> int:
        visible_sum = sum(
            value
            for index, value in enumerate(values)
            if index not in hidden
        )
        return 1 if visible_sum >= self.threshold else 0

    def draw(self, rng: random.Random) -> list[int]:
        return [1 if rng.getrandbits(1) else -1 for _ in range(self.k)]

    def bias_toward(
        self, values: Sequence[int], target: int, budget: int
    ) -> frozenset[int] | None:
        """Greedy-optimal hiding: returns a hidden set of size <= budget
        forcing outcome ``target``, or ``None`` when impossible.

        For threshold games, hiding a +1 lowers the visible sum by 1 and
        hiding a -1 raises it by 1, so greedily hiding coins of the
        offending sign is optimal.
        """
        total = sum(values)
        if target == 0:
            # Need visible sum < threshold: hide +1s.
            deficit = total - (self.threshold - 1)
            sign = 1
        else:
            # Need visible sum >= threshold: hide -1s.
            deficit = self.threshold - total
            sign = -1
        if deficit <= 0:
            return frozenset()
        available = [i for i, value in enumerate(values) if value == sign]
        if deficit > min(budget, len(available)):
            return None
        return frozenset(available[:deficit])


def bias_success_probability(
    game: ThresholdCoinGame,
    target: int,
    budget: int,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo probability that the greedy adversary forces ``target``."""
    rng = random.Random(stable_seed("coin-game", game.k, target, budget, seed))
    successes = 0
    for _ in range(trials):
        values = game.draw(rng)
        if game.bias_toward(values, target, budget) is not None:
            successes += 1
    return successes / trials


def minimal_budget_for_success(
    game: ThresholdCoinGame,
    target: int,
    success_probability: float,
    trials: int = 2000,
    seed: int = 0,
) -> int:
    """Smallest hide budget whose empirical success rate meets the target.

    Binary search over the budget (success probability is monotone in it).
    """
    if not 0.0 < success_probability <= 1.0:
        raise ValueError(
            f"success probability must be in (0, 1], got {success_probability}"
        )
    low, high = 0, game.k
    if (
        bias_success_probability(game, target, high, trials, seed)
        < success_probability
    ):
        return game.k  # even hiding everyone is not enough (threshold game: never)
    while low < high:
        mid = (low + high) // 2
        rate = bias_success_probability(game, target, mid, trials, seed)
        if rate >= success_probability:
            high = mid
        else:
            low = mid + 1
    return low


def corollary1_budget(k: int, n: int) -> float:
    """Corollary 1's instantiation: ``8 sqrt(k log^3 n)`` hides bias the
    game with probability ``1 - 1/n^3`` (alpha = n^-3 in Lemma 12)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    return 8.0 * math.sqrt(k * 3.0 * math.log2(n))


def lemma12_budget(k: int, alpha: float) -> float:
    """The Lemma-12 bound: ``8 sqrt(k log2(1/alpha))`` hides suffice."""
    if not 0.0 < alpha <= 0.5:
        raise ValueError(f"alpha must be in (0, 1/2], got {alpha}")
    if k == 0:
        return 0.0
    return 8.0 * math.sqrt(k * math.log2(1.0 / alpha))


@dataclass(frozen=True)
class CoinGamePoint:
    """One measured point of the Lemma-12 experiment."""

    k: int
    alpha: float
    measured_budget: int
    lemma12_bound: float

    @property
    def ratio(self) -> float:
        """measured / bound — Lemma 12 predicts this stays below 1."""
        if self.lemma12_bound == 0:
            return 0.0
        return self.measured_budget / self.lemma12_bound


def sweep_lemma12(
    ks: Sequence[int],
    alphas: Sequence[float],
    trials: int = 2000,
    seed: int = 0,
) -> list[CoinGamePoint]:
    """Measure minimal hide budgets across (k, alpha) and compare with the
    Lemma-12 bound; the scaling in sqrt(k) is the experiment's shape."""
    points = []
    for k in ks:
        game = ThresholdCoinGame(k=k, threshold=0)
        for alpha in alphas:
            budget = minimal_budget_for_success(
                game, target=0, success_probability=1 - alpha,
                trials=trials, seed=seed,
            )
            points.append(
                CoinGamePoint(
                    k=k,
                    alpha=alpha,
                    measured_budget=budget,
                    lemma12_bound=lemma12_budget(k, alpha),
                )
            )
    return points
