"""Valency classification of toy protocols by exhaustive adversary search.

The lower-bound proof (Appendix C) classifies algorithm states by *valency*:
which outcomes an adversary can still steer the execution toward.  Its
Lemma 13 shows every consensus algorithm has an initial state that is not
uni-valent when the adversary controls one process.

This module makes that machinery executable for small deterministic
round-based protocols: an exhaustive game-tree search over all adaptive
clean-crash schedules (crash = silent from that round on, the paper's remark
that crashes are omissions' special case) computes the exact set of
*reachable outcomes* from every initial input assignment:

* ``{0}`` / ``{1}``  — uni-valent in the paper's sense;
* ``{0, 1, ...}``    — bivalent (Lemma-13 witness);
* containing :data:`DISAGREEMENT` or :data:`STUCK` — the protocol is simply
  not a (terminating) consensus algorithm at this fault budget.

Randomized protocols are out of scope here (their valency is defined through
probabilities); the constructive randomized attack lives in
:mod:`repro.lowerbound.tradeoff_attack`.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Hashable, Mapping

#: Outcome marker: some adversary schedule makes surviving processes decide
#: different values (agreement violation).
DISAGREEMENT = "DISAGREEMENT"
#: Outcome marker: some schedule leaves a surviving process undecided at the
#: protocol's round horizon (termination violation).
STUCK = "STUCK"


class ToyProtocol(ABC):
    """A deterministic synchronous broadcast protocol on n processes.

    Each round every alive process broadcasts one value (a function of its
    state) and then transitions on the multiset of received values.  After
    ``max_rounds`` rounds every process must expose a decision.
    """

    def __init__(self, n: int, max_rounds: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.n = n
        self.max_rounds = max_rounds

    @abstractmethod
    def initial_state(self, pid: int, input_bit: int) -> Hashable:
        """The pre-round-0 state of process ``pid``."""

    @abstractmethod
    def outgoing(self, state: Hashable, round_no: int) -> Hashable:
        """The value broadcast by a process in this round."""

    @abstractmethod
    def transition(
        self,
        state: Hashable,
        round_no: int,
        inbox: tuple[tuple[int, Hashable], ...],
    ) -> Hashable:
        """New state after receiving ``(sender, value)`` pairs."""

    @abstractmethod
    def decision(self, state: Hashable) -> int | None:
        """Decided value at the horizon (None = undecided)."""


class FloodMinProtocol(ToyProtocol):
    """Flooding min-consensus: state = min value seen; decide it at the end.

    The classic crash-tolerant protocol: correct with ``max_rounds >= t + 1``
    crash faults, and provably *incorrect* (reachable DISAGREEMENT) with
    fewer rounds — both facts the exhaustive search verifies.
    """

    def initial_state(self, pid: int, input_bit: int) -> int:
        return input_bit

    def outgoing(self, state: int, round_no: int) -> int:
        return state

    def transition(
        self,
        state: int,
        round_no: int,
        inbox: tuple[tuple[int, int], ...],
    ) -> int:
        values = [value for _, value in inbox]
        return min([state] + values)

    def decision(self, state: int) -> int:
        return state


class MajorityRoundsProtocol(ToyProtocol):
    """Repeated majority voting with ties toward 0; decide after the horizon.

    Deliberately *not* a correct consensus protocol under crashes — used to
    exercise the DISAGREEMENT detection.
    """

    def initial_state(self, pid: int, input_bit: int) -> int:
        return input_bit

    def outgoing(self, state: int, round_no: int) -> int:
        return state

    def transition(
        self,
        state: int,
        round_no: int,
        inbox: tuple[tuple[int, int], ...],
    ) -> int:
        ones = state + sum(value for _, value in inbox)
        total = 1 + len(inbox)
        return 1 if 2 * ones > total else 0

    def decision(self, state: int) -> int:
        return state


@dataclass(frozen=True)
class ValencyReport:
    """Classification of every initial input assignment of a protocol."""

    outcomes: Mapping[tuple[int, ...], frozenset]

    def univalent(self, value: int) -> list[tuple[int, ...]]:
        return [
            inputs
            for inputs, reachable in self.outcomes.items()
            if reachable == frozenset({value})
        ]

    def bivalent(self) -> list[tuple[int, ...]]:
        return [
            inputs
            for inputs, reachable in self.outcomes.items()
            if {0, 1} <= set(reachable)
        ]

    def broken(self) -> list[tuple[int, ...]]:
        return [
            inputs
            for inputs, reachable in self.outcomes.items()
            if DISAGREEMENT in reachable or STUCK in reachable
        ]

    def lemma13_witness(self) -> tuple[int, ...] | None:
        """An input assignment that is not uni-valent (Lemma 13)."""
        for inputs, reachable in self.outcomes.items():
            if len(reachable) > 1 or not reachable <= {0, 1}:
                return inputs
        return None


def reachable_outcomes(
    protocol: ToyProtocol, inputs: tuple[int, ...], t: int
) -> frozenset:
    """Exact set of outcomes reachable under adaptive clean-crash schedules.

    DFS with memoization over (round, alive-set, state-vector); the adversary
    may crash any subset of alive processes at each round within its
    remaining budget.  Crashed processes deliver nothing from their crash
    round on.
    """
    n = protocol.n
    if len(inputs) != n:
        raise ValueError(f"need {n} inputs, got {len(inputs)}")

    initial_states = tuple(
        protocol.initial_state(pid, inputs[pid]) for pid in range(n)
    )
    cache: dict[tuple, frozenset] = {}

    def explore(
        round_no: int, alive: frozenset[int], states: tuple
    ) -> frozenset:
        key = (round_no, alive, states)
        cached = cache.get(key)
        if cached is not None:
            return cached

        if round_no == protocol.max_rounds:
            decisions = {
                protocol.decision(states[pid]) for pid in alive
            }
            if None in decisions:
                result = frozenset({STUCK})
            elif len(decisions) > 1:
                result = frozenset({DISAGREEMENT})
            else:
                result = frozenset(decisions)
            cache[key] = result
            return result

        budget = t - (n - len(alive))
        outcomes: set = set()
        alive_sorted = sorted(alive)
        broadcast = {
            pid: protocol.outgoing(states[pid], round_no)
            for pid in alive_sorted
        }

        def deliveries_for(crashed: tuple[int, ...]):
            """All ways the adversary can split each crashing process's
            final-round broadcast (it may reach any recipient subset —
            the crash-round flexibility the model grants)."""
            option_sets = []
            for pid in crashed:
                receivers = [q for q in alive_sorted if q != pid]
                option_sets.append(
                    [
                        frozenset(subset)
                        for size in range(len(receivers) + 1)
                        for subset in itertools.combinations(receivers, size)
                    ]
                )
            return itertools.product(*option_sets)

        for crash_count in range(0, budget + 1):
            for crashed in itertools.combinations(alive_sorted, crash_count):
                crashed_set = frozenset(crashed)
                survivors = alive - crashed_set
                for delivery in deliveries_for(crashed):
                    new_states = list(states)
                    for pid in sorted(survivors):
                        inbox = []
                        for sender in alive_sorted:
                            if sender == pid:
                                continue
                            if sender in crashed_set:
                                index = crashed.index(sender)
                                if pid not in delivery[index]:
                                    continue
                            inbox.append((sender, broadcast[sender]))
                        new_states[pid] = protocol.transition(
                            states[pid], round_no, tuple(inbox)
                        )
                    outcomes |= explore(
                        round_no + 1, survivors, tuple(new_states)
                    )
                    if {0, 1, DISAGREEMENT} <= outcomes:
                        break
                if {0, 1, DISAGREEMENT} <= outcomes:
                    break
        result = frozenset(outcomes)
        cache[key] = result
        return result

    return explore(0, frozenset(range(n)), initial_states)


def classify_all_inputs(protocol: ToyProtocol, t: int) -> ValencyReport:
    """Classify every input assignment of a (small) protocol."""
    outcomes = {}
    for inputs in itertools.product((0, 1), repeat=protocol.n):
        outcomes[inputs] = reachable_outcomes(protocol, inputs, t)
    return ValencyReport(outcomes=outcomes)
