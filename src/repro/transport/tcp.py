"""The asyncio-TCP transport: real OS processes over localhost frames.

``AsyncioTcpTransport`` places an execution's consensus processes in
real worker OS processes (``python -m repro.transport.worker``), each
hosting a contiguous pid block, all dialing a loopback listener owned by
the coordinator.  The coordinator is a
:class:`~repro.runtime.engine.ExecutionCore` subclass
(:class:`RemoteExecutionCore`) so the whole engine — round models,
delivery backends, adversary arbitration, observers, record/replay —
drives it unchanged:

* :meth:`RemoteExecutionCore.advance` fans one ``step`` frame out to
  every live worker concurrently (asyncio), each carrying the hosted
  pids' inboxes and collecting their outbound records; blocks are
  contiguous and workers advance pids in ascending order, so the
  concatenated batch keeps the engine's sender-sorted invariant.
* Per-link send timeouts and dead connections surface as *crash faults*
  via :meth:`drain_faults` — the network folds them into the round's
  corruptions and omits their in-flight copies, preserving
  ``sent == delivered + omitted + lost + Δin-flight`` instead of hanging.
* Every round-trip is measured into a
  :class:`~repro.runtime.observers.LinkSample` (drained per round for
  the ``on_transport`` observer hook).

Determinism: per-process randomness is seeded from the same
``derive_seeds(seed, n)`` table as the in-process core (indexed by pid
inside each worker), and inbox contents are the delivery backend's exact
output shipped byte-for-byte — so a fault-free TCP execution is
fingerprint-identical to the in-process one, and its recorded recipe
replays in-process deterministically.  Runs where the transport itself
faulted replay the *recorded schedule* (the faults became recorded
corruptions/omissions) but are not promised fingerprint-identical: the
dead processes' unsent traffic never entered the record.

This module is inside the REP002 wall-clock carve-out
(``src/repro/transport/`` only): ``time.monotonic`` is used for
timeouts and latency measurement, never for protocol decisions.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..runtime.engine import ExecutionCore
from ..runtime.messages import Message, MessageBatch, MessageRecord
from ..runtime.observers import LinkSample
from ..runtime.process import SyncProcess
from .base import Transport, TransportError
from .framing import FramingError, encode_frame, read_frame

__all__ = ["AsyncioTcpTransport", "RemoteExecutionCore"]

#: Exceptions that mean "this link is gone" rather than "this run is
#: broken": the step that hit one crash-faults the link's processes.
_LINK_FAILURES = (
    TimeoutError,
    asyncio.IncompleteReadError,
    ConnectionError,
    BrokenPipeError,
    FramingError,
    OSError,
)


class AsyncioTcpTransport(Transport):
    """Consensus processes as real OS processes over localhost TCP.

    Parameters
    ----------
    processes_per_worker:
        How many consensus processes each worker OS process hosts
        (contiguous pid blocks).  ``1`` — the default — is one OS process
        per consensus process; larger values bound the spawn cost for
        big ``n``.
    host:
        Loopback interface to listen on.  Non-loopback hosts are
        rejected: frames are pickled and must never leave the machine.
    connect_timeout_s:
        Wall-clock budget for all workers to dial in at setup
        (workers retry with exponential backoff inside this budget).
    link_timeout_s:
        Per-link budget for one step round-trip (send + compute +
        reply).  A link that exceeds it is crash-faulted and its
        processes' in-flight copies become omissions.
    """

    name = "tcp"

    def __init__(
        self,
        *,
        processes_per_worker: int = 1,
        host: str = "127.0.0.1",
        connect_timeout_s: float = 20.0,
        link_timeout_s: float = 30.0,
    ) -> None:
        if processes_per_worker < 1:
            raise ValueError(
                f"processes_per_worker={processes_per_worker} must be >= 1"
            )
        if not (host == "localhost" or host.startswith("127.")):
            raise ValueError(
                f"host={host!r} is not a loopback address; the TCP "
                "transport speaks pickle frames and must stay on-machine"
            )
        if connect_timeout_s <= 0:
            raise ValueError(
                f"connect_timeout_s={connect_timeout_s} must be > 0"
            )
        if link_timeout_s <= 0:
            raise ValueError(f"link_timeout_s={link_timeout_s} must be > 0")
        self.processes_per_worker = processes_per_worker
        self.host = host
        self.connect_timeout_s = connect_timeout_s
        self.link_timeout_s = link_timeout_s

    def options_payload(self) -> dict[str, Any]:
        return {
            "processes_per_worker": self.processes_per_worker,
            "host": self.host,
            "connect_timeout_s": self.connect_timeout_s,
            "link_timeout_s": self.link_timeout_s,
        }

    def create_core(
        self,
        processes: Sequence[SyncProcess],
        *,
        seed: int,
        multicast: bool,
    ) -> ExecutionCore:
        return RemoteExecutionCore(
            processes, seed=seed, multicast=multicast, transport=self
        )


class _WorkerLink:
    """Coordinator-side state of one worker connection."""

    __slots__ = (
        "index",
        "pids",
        "process",
        "reader",
        "writer",
        "alive",
        "connect_retries",
    )

    def __init__(self, index: int, pids: tuple[int, ...]) -> None:
        self.index = index
        self.pids = pids
        self.process: subprocess.Popen[bytes] | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.alive = True
        self.connect_retries = 0


def _worker_environment() -> dict[str, str]:
    """Child env with this repro package importable, whatever spawned us."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


class RemoteExecutionCore(ExecutionCore):
    """ExecutionCore whose local-computation phase runs in OS workers.

    The base-class containers become coordinator-side mirrors: ``envs``
    hold decisions/termination synced from worker replies, ``sources``
    mirror the workers' randomness counters, ``programs`` track liveness
    (the mirror generators are never advanced), and ``inboxes`` are the
    slots delivery backends write into — their contents ship to the
    owning worker on the next step.  Everything the network and the
    result assembly read (``live_count``, ``current_decisions``,
    ``build_result``, …) therefore works unchanged from the base class.
    """

    __slots__ = (
        "_transport",
        "_multicast",
        "_links",
        "_loop",
        "_server",
        "_token",
        "_faults",
        "_samples",
        "_pending_reseed",
        "_closed",
    )

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        *,
        seed: int,
        multicast: bool,
        transport: AsyncioTcpTransport,
    ) -> None:
        super().__init__(processes, seed=seed, multicast=multicast)
        self._transport = transport
        self._multicast = multicast
        self._faults: set[int] = set()
        self._samples: list[LinkSample] = []
        self._pending_reseed: int | None = None
        self._closed = False
        self._server: asyncio.AbstractServer | None = None
        self._token = os.urandom(16).hex()
        per_worker = transport.processes_per_worker
        self._links = [
            _WorkerLink(index, tuple(range(start, min(start + per_worker, self.n))))
            for index, start in enumerate(range(0, self.n, per_worker))
        ]
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._start())
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Setup / teardown
    async def _start(self) -> None:
        connections: asyncio.Queue[
            tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = asyncio.Queue()

        async def on_connect(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            await connections.put((reader, writer))

        transport = self._transport
        self._server = await asyncio.start_server(
            on_connect, host=transport.host, port=0
        )
        sockets = self._server.sockets
        assert sockets, "asyncio.start_server returned no sockets"
        port = int(sockets[0].getsockname()[1])

        started = time.monotonic()
        environment = _worker_environment()
        for link in self._links:
            link.process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.transport.worker",
                    "--host",
                    transport.host,
                    "--port",
                    str(port),
                    "--token",
                    self._token,
                    "--worker",
                    str(link.index),
                    "--connect-timeout",
                    str(transport.connect_timeout_s),
                ],
                stdin=subprocess.DEVNULL,
                stdout=subprocess.DEVNULL,
                env=environment,
            )

        deadline = started + transport.connect_timeout_s
        waiting = {link.index for link in self._links}
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"workers {sorted(waiting)} did not connect within "
                    f"{transport.connect_timeout_s:.1f}s"
                )
            try:
                reader, writer = await asyncio.wait_for(
                    connections.get(), timeout=remaining
                )
                hello, received = await asyncio.wait_for(
                    read_frame(reader), timeout=remaining
                )
            except TimeoutError:
                continue
            except _LINK_FAILURES:
                continue
            if not (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == "hello"
                and isinstance(hello[1], dict)
                and hello[1].get("token") == self._token
                and hello[1].get("worker") in waiting
            ):
                # Wrong token or malformed hello: drop the connection and
                # keep waiting for the real workers within the deadline.
                writer.close()
                continue
            index = int(hello[1]["worker"])
            waiting.discard(index)
            link = self._links[index]
            link.reader = reader
            link.writer = writer
            link.connect_retries = int(hello[1].get("retries", 0))
            self._samples.append(
                LinkSample(
                    worker=index,
                    pids=link.pids,
                    round=-1,
                    latency_s=time.monotonic() - started,
                    bytes_sent=0,
                    bytes_received=received,
                    retries=link.connect_retries,
                )
            )

        for link in self._links:
            writer = link.writer
            assert writer is not None
            setup = (
                "setup",
                {
                    "pids": link.pids,
                    "processes": [self.processes[pid] for pid in link.pids],
                    "n": self.n,
                    "seed": self.seed,
                    "multicast": self._multicast,
                },
            )
            writer.write(encode_frame(setup))
            await asyncio.wait_for(
                writer.drain(), timeout=transport.link_timeout_s
            )

    def close(self) -> None:
        """Graceful shutdown: fini frames, closed streams, reaped workers.

        Idempotent; called by ``SyncNetwork.run`` in a ``finally`` block
        so worker processes never outlive their run, even on errors.
        """
        if self._closed:
            return
        self._closed = True
        if not self._loop.is_closed():
            try:
                self._loop.run_until_complete(self._shutdown_streams())
            finally:
                self._loop.close()
        for link in self._links:
            process = link.process
            if process is None or process.poll() is not None:
                continue
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    async def _shutdown_streams(self) -> None:
        fini = encode_frame(("fini", {}))
        for link in self._links:
            writer = link.writer
            if writer is None:
                continue
            if link.alive:
                try:
                    writer.write(fini)
                    await asyncio.wait_for(writer.drain(), timeout=1.0)
                except _LINK_FAILURES:
                    pass
            try:
                writer.close()
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except _LINK_FAILURES:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Per-round execution
    def advance(self, round_no: int) -> MessageBatch:
        steps: list[tuple[_WorkerLink, dict[int, list[Message]]]] = []
        for link in self._links:
            if not link.alive:
                continue
            live = [pid for pid in link.pids if self.programs[pid] is not None]
            if not live:
                continue
            inbox_map: dict[int, list[Message]] = {}
            for pid in live:
                box = self.inboxes[pid]
                # Columnar rounds leave lazy views in the slots;
                # materialize to plain (picklable) Message lists.
                inbox_map[pid] = box if isinstance(box, list) else list(box)
                self.inboxes[pid] = []
            steps.append((link, inbox_map))
        reseed = self._pending_reseed
        self._pending_reseed = None
        if not steps:
            return MessageBatch([])
        outs = self._loop.run_until_complete(
            self._step_all(steps, round_no, reseed)
        )
        records: list[MessageRecord] = []
        for (link, _), out in zip(steps, outs):
            if out is None:
                self._fail_link(link)
                continue
            for pid in out["terminated"]:
                self.programs[pid] = None
            for pid, (value, decided_round) in out["decisions"].items():
                env = self.envs[pid]
                env.decision = value
                env.has_decided = True
                env.decision_round = decided_round
            for pid, (calls, bits_drawn) in out["randomness"].items():
                source = self.sources[pid]
                source.calls = calls
                source.bits_drawn = bits_drawn
            records.extend(out["records"])
        # Contiguous ascending pid blocks advanced in ascending pid order
        # inside each worker: concatenation in link order keeps the
        # batch's sender-sorted invariant.
        return MessageBatch(records)

    async def _step_all(
        self,
        steps: Sequence[tuple[_WorkerLink, dict[int, list[Message]]]],
        round_no: int,
        reseed: int | None,
    ) -> list[dict[str, Any] | None]:
        return await asyncio.gather(
            *(
                self._step_link(link, inbox_map, round_no, reseed)
                for link, inbox_map in steps
            )
        )

    async def _step_link(
        self,
        link: _WorkerLink,
        inbox_map: dict[int, list[Message]],
        round_no: int,
        reseed: int | None,
    ) -> dict[str, Any] | None:
        reader, writer = link.reader, link.writer
        assert reader is not None and writer is not None
        data = encode_frame(
            ("step", {"round": round_no, "reseed": reseed, "inboxes": inbox_map})
        )
        started = time.monotonic()
        timeout = self._transport.link_timeout_s
        try:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            reply, received = await asyncio.wait_for(
                read_frame(reader), timeout=timeout
            )
        except _LINK_FAILURES:
            self._samples.append(
                LinkSample(
                    worker=link.index,
                    pids=link.pids,
                    round=round_no,
                    latency_s=time.monotonic() - started,
                    bytes_sent=len(data),
                    bytes_received=0,
                    ok=False,
                )
            )
            return None
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "out"
        ):
            self._samples.append(
                LinkSample(
                    worker=link.index,
                    pids=link.pids,
                    round=round_no,
                    latency_s=time.monotonic() - started,
                    bytes_sent=len(data),
                    bytes_received=received,
                    ok=False,
                )
            )
            return None
        self._samples.append(
            LinkSample(
                worker=link.index,
                pids=link.pids,
                round=round_no,
                latency_s=time.monotonic() - started,
                bytes_sent=len(data),
                bytes_received=received,
            )
        )
        out: dict[str, Any] = reply[1]
        return out

    def _fail_link(self, link: _WorkerLink) -> None:
        """Crash-fault a link: its live pids become transport faults."""
        link.alive = False
        for pid in link.pids:
            if self.programs[pid] is not None:
                self.programs[pid] = None
                self._faults.add(pid)
        writer = link.writer
        if writer is not None:
            writer.close()
        process = link.process
        if process is not None and process.poll() is None:
            process.terminate()

    # ------------------------------------------------------------------
    # Transport surface consumed by SyncNetwork
    def reseed(self, fork_seed: int) -> None:
        # Applied by each worker before its next local-computation phase —
        # the same reseed-before-advance point as the in-process core
        # (maybe_reseed precedes advance in every round model).
        self._pending_reseed = fork_seed

    def drain_faults(self) -> frozenset[int]:
        faults = frozenset(self._faults)
        self._faults.clear()
        return faults

    def drain_link_samples(self) -> tuple[LinkSample, ...]:
        samples = tuple(self._samples)
        self._samples.clear()
        return samples
