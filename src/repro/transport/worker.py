"""The TCP transport's worker process: ``python -m repro.transport.worker``.

One worker hosts a contiguous block of consensus processes.  It dials
the coordinator's loopback listener (with retry/backoff — the listener
and the worker race at startup), authenticates with the per-run token,
receives its process block, and then serves one ``step`` frame per
round: resume every hosted live program with the inbox the coordinator
shipped, reply with the queued outbound records, newly terminated pids,
current decisions, and randomness counters.

The shard mirrors :meth:`repro.runtime.engine.ExecutionCore.advance`
exactly — same pid order, same round-0 ``next`` vs ``send`` resumption,
same outbox/inbox reset semantics — and seeds each hosted process's
:class:`~repro.runtime.randomness.CountingRandom` from the *same*
``derive_seeds(seed, n)`` table the in-process core uses, indexed by
pid.  Process randomness therefore does not depend on where a process is
hosted, which is what makes TCP executions replay byte-identically
in-process from their recorded recipes.
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from collections.abc import Mapping, Sequence
from typing import Any

from ..runtime.messages import Message, MessageRecord
from ..runtime.process import ProcessEnv, Program, SyncProcess
from ..runtime.randomness import CountingRandom, derive_seeds
from .base import TransportError
from .framing import recv_frame, send_frame

__all__ = ["ProcessShard", "connect_with_backoff", "main"]


class ProcessShard:
    """The hosted block of processes and their per-round advancement."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        n: int,
        seed: int,
        multicast: bool,
    ) -> None:
        # Index the full derivation table by hosted pid: randomness is a
        # function of (seed, pid), never of worker placement.
        seeds = derive_seeds(seed, n, salt="process-randomness")
        self.n = n
        self.pids = [process.pid for process in processes]
        self.sources: dict[int, CountingRandom] = {}
        self.envs: dict[int, ProcessEnv] = {}
        self.programs: dict[int, Program | None] = {}
        for process in processes:
            pid = process.pid
            source = CountingRandom(seeds[pid])
            env = ProcessEnv(pid, n, source)
            if not multicast:
                env.expand_multicast = True
            self.sources[pid] = source
            self.envs[pid] = env
            self.programs[pid] = process.program(env)

    def step(
        self,
        round_no: int,
        inboxes: Mapping[int, Sequence[Message]],
        reseed: int | None,
    ) -> dict[str, Any]:
        """One local-computation phase over the hosted live processes."""
        if reseed is not None:
            fork_seeds = derive_seeds(reseed, self.n, salt="fork")
            for pid, source in self.sources.items():
                source.reseed(fork_seeds[pid])
        records: list[MessageRecord] = []
        terminated: list[int] = []
        for pid in self.pids:
            program = self.programs.get(pid)
            if program is None:
                continue
            env = self.envs[pid]
            env.round = round_no
            env.outbox = []
            inbox = inboxes.get(pid, [])
            try:
                if round_no == 0:
                    next(program)
                else:
                    program.send(inbox)
            except StopIteration:
                self.programs[pid] = None
                terminated.append(pid)
            # Messages queued before a final ``return`` are still sent —
            # identical to ExecutionCore.advance.
            records.extend(env.outbox)
        decisions = {
            pid: (env.decision, env.decision_round)
            for pid, env in self.envs.items()
            if env.has_decided
        }
        randomness = {
            pid: (source.calls, source.bits_drawn)
            for pid, source in self.sources.items()
        }
        return {
            "records": records,
            "terminated": terminated,
            "decisions": decisions,
            "randomness": randomness,
        }


def connect_with_backoff(
    host: str,
    port: int,
    *,
    timeout_s: float,
    initial_backoff_s: float = 0.05,
    max_backoff_s: float = 1.0,
) -> tuple[socket.socket, int]:
    """Dial the coordinator, retrying with exponential backoff.

    Returns ``(socket, retries)``; raises :class:`TransportError` once
    ``timeout_s`` of wall-clock has elapsed without a connection.
    """
    deadline = time.monotonic() + timeout_s
    backoff = initial_backoff_s
    retries = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout_s)
        except OSError as error:
            if time.monotonic() + backoff > deadline:
                raise TransportError(
                    f"could not reach coordinator at {host}:{port} within "
                    f"{timeout_s:.1f}s ({retries} retries): {error}"
                ) from error
            time.sleep(backoff)
            retries += 1
            backoff = min(backoff * 2.0, max_backoff_s)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock, retries


def _expect_frame(sock: socket.socket) -> tuple[str, Any]:
    frame, _ = recv_frame(sock)
    if not (isinstance(frame, tuple) and len(frame) == 2):
        raise TransportError(f"malformed frame: {frame!r}")
    kind, payload = frame
    return str(kind), payload


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.worker",
        description="TCP-transport worker (spawned by AsyncioTcpTransport)",
    )
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--token", required=True)
    parser.add_argument("--worker", type=int, required=True)
    parser.add_argument("--connect-timeout", type=float, default=20.0)
    args = parser.parse_args(argv)

    sock, retries = connect_with_backoff(
        args.host, args.port, timeout_s=args.connect_timeout
    )
    try:
        send_frame(
            sock,
            ("hello", {"worker": args.worker, "token": args.token,
                       "retries": retries}),
        )
        kind, payload = _expect_frame(sock)
        if kind != "setup":
            raise TransportError(f"expected setup frame, got {kind!r}")
        shard = ProcessShard(
            payload["processes"],
            n=payload["n"],
            seed=payload["seed"],
            multicast=payload["multicast"],
        )
        while True:
            kind, payload = _expect_frame(sock)
            if kind == "fini":
                send_frame(sock, ("bye", {}))
                return 0
            if kind != "step":
                raise TransportError(f"expected step frame, got {kind!r}")
            out = shard.step(
                payload["round"], payload["inboxes"], payload["reseed"]
            )
            send_frame(sock, ("out", out))
    except (ConnectionError, BrokenPipeError):
        # Coordinator went away; nothing useful to report.
        return 1
    finally:
        sock.close()


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
