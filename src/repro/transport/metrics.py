"""Per-link transport metrics, collected off the observer bus.

:class:`LinkMetricsObserver` accumulates every
:class:`~repro.runtime.observers.LinkSample` a transport-backed run
dispatches through the ``on_transport`` hook and summarizes them
per worker link — frames, bytes, latency, connect retries, failures.
The summary is JSON-safe; the CI transport-smoke job uploads it as the
per-link latency metrics artifact.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..runtime.observers import LinkSample, RoundObserver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..runtime.network import SyncNetwork

__all__ = ["LinkMetricsObserver"]


class LinkMetricsObserver(RoundObserver):
    """Collects the run's :class:`LinkSample` stream (passive)."""

    def __init__(self) -> None:
        self.samples: list[LinkSample] = []

    def on_transport(
        self,
        round_no: int,
        samples: Sequence[LinkSample],
        network: SyncNetwork,
    ) -> None:
        self.samples.extend(samples)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-safe per-link aggregation of the collected samples."""
        per_worker: dict[int, dict[str, Any]] = {}
        for sample in self.samples:
            entry = per_worker.setdefault(
                sample.worker,
                {
                    "worker": sample.worker,
                    "pids": list(sample.pids),
                    "frames": 0,
                    "failures": 0,
                    "connect_retries": 0,
                    "connect_latency_s": None,
                    "bytes_sent": 0,
                    "bytes_received": 0,
                    "latency_s_total": 0.0,
                    "latency_s_max": 0.0,
                },
            )
            if sample.round < 0:
                entry["connect_retries"] = sample.retries
                entry["connect_latency_s"] = sample.latency_s
                continue
            entry["frames"] += 1
            if not sample.ok:
                entry["failures"] += 1
            entry["bytes_sent"] += sample.bytes_sent
            entry["bytes_received"] += sample.bytes_received
            entry["latency_s_total"] += sample.latency_s
            entry["latency_s_max"] = max(
                entry["latency_s_max"], sample.latency_s
            )
        links = []
        for worker in sorted(per_worker):
            entry = per_worker[worker]
            frames = entry.pop("latency_s_total"), entry["frames"]
            entry["latency_s_mean"] = (
                frames[0] / frames[1] if frames[1] else 0.0
            )
            links.append(entry)
        return {
            "links": links,
            "frames": sum(entry["frames"] for entry in links),
            "failures": sum(entry["failures"] for entry in links),
            "bytes_sent": sum(entry["bytes_sent"] for entry in links),
            "bytes_received": sum(
                entry["bytes_received"] for entry in links
            ),
        }
