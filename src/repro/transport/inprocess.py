"""The default transport: everything runs in this interpreter.

``InProcessTransport`` is a zero-overhead pass-through to the plain
:class:`~repro.runtime.engine.ExecutionCore` — exactly what every
execution used before the transport axis existed, byte-identical by
construction.  It exists so the ``transport=`` axis has a total default
and so identity serialization (campaign records, recipes) can name the
hosting discipline explicitly.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..runtime.engine import ExecutionCore
from ..runtime.process import SyncProcess
from .base import Transport

__all__ = ["InProcessTransport"]


class InProcessTransport(Transport):
    """Single-interpreter execution (the default; zero overhead)."""

    name = "inprocess"

    def create_core(
        self,
        processes: Sequence[SyncProcess],
        *,
        seed: int,
        multicast: bool,
    ) -> ExecutionCore:
        return ExecutionCore(processes, seed=seed, multicast=multicast)
