"""Transport registry: the engine's selectable process-hosting layers.

A :class:`Transport` decides *where* an execution's consensus processes
physically run, while the round models, delivery backends, adversary
API, observer bus, metering, and record/replay behave identically across
transports (see :mod:`repro.transport.base`).

Transports are addressed by registry name — ``"inprocess"`` (today's
single-interpreter core, the default) and ``"tcp"`` (real OS worker
processes over localhost TCP, :mod:`repro.transport.tcp`).  Unlike the
round-model axis there is deliberately no environment-variable default:
a real-network execution must always be an explicit request.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..runtime.observers import LinkSample
from .base import Transport, TransportError
from .inprocess import InProcessTransport
from .metrics import LinkMetricsObserver
from .tcp import AsyncioTcpTransport, RemoteExecutionCore

__all__ = [
    "AsyncioTcpTransport",
    "InProcessTransport",
    "LinkMetricsObserver",
    "LinkSample",
    "RemoteExecutionCore",
    "Transport",
    "TransportError",
    "available_transports",
    "create_transport",
    "default_transport_name",
    "resolve_transport",
]

_TRANSPORTS: dict[str, type[Transport]] = {
    InProcessTransport.name: InProcessTransport,
    AsyncioTcpTransport.name: AsyncioTcpTransport,
}


def available_transports() -> tuple[str, ...]:
    """Registered transport names, sorted."""
    return tuple(sorted(_TRANSPORTS))


def default_transport_name() -> str:
    """The transport used when the caller names none."""
    return InProcessTransport.name


def create_transport(
    name: str, options: Mapping[str, Any] | None = None
) -> Transport:
    """Instantiate a registered transport by name with options."""
    try:
        transport_cls = _TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; choose from: "
            f"{', '.join(available_transports())}"
        ) from None
    return transport_cls(**dict(options or {}))


def resolve_transport(
    transport: Transport | str | None = None,
    options: Mapping[str, Any] | None = None,
) -> Transport:
    """Resolve the ``transport=`` axis: instance > name > in-process.

    A ready-made :class:`Transport` instance is used as-is
    (``options`` must then be empty — the instance already carries its
    configuration).
    """
    if isinstance(transport, Transport):
        if options:
            raise ValueError(
                "transport_options only apply when the transport is given "
                "by name; configure the Transport instance directly instead"
            )
        return transport
    name = transport if transport is not None else default_transport_name()
    return create_transport(name, options)
