"""Length-prefixed pickle frames for the localhost TCP transport.

One frame is a 4-byte big-endian unsigned length followed by a pickled
payload.  The same encoding is used in both directions and both flavours
(synchronous sockets in the worker, asyncio streams in the coordinator),
so the wire format lives in exactly one module.

Pickle is acceptable here because frames never leave the machine: the
coordinator listens on loopback only, and every connection must present
the per-run random token before any frame is processed (see
``repro.transport.tcp`` / ``repro.transport.worker``).  Do not reuse
this framing for non-loopback endpoints.
"""

from __future__ import annotations

import pickle
import socket
import struct
from asyncio import StreamReader
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "FramingError",
    "decode_body",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's body; a corrupted length prefix must not
#: make a reader try to allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FramingError(RuntimeError):
    """Raised on malformed frames (oversized length, bad payload)."""


def encode_frame(payload: Any) -> bytes:
    """Serialize ``payload`` into one length-prefixed frame."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """Deserialize one frame body (the bytes after the length prefix)."""
    try:
        return pickle.loads(body)
    except Exception as error:  # pickle raises a zoo of subclasses
        raise FramingError(f"undecodable frame body: {error}") from error


def send_frame(sock: socket.socket, payload: Any) -> int:
    """Write one frame to a blocking socket; returns bytes sent."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> tuple[Any, int]:
    """Read one frame from a blocking socket.

    Returns ``(payload, total_bytes_read)``; raises ``ConnectionError``
    on a peer that closed mid-frame and :class:`FramingError` on a
    malformed frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = _recv_exact(sock, length)
    return decode_body(body), _HEADER.size + length


async def read_frame(reader: StreamReader) -> tuple[Any, int]:
    """Read one frame from an asyncio stream.

    Returns ``(payload, total_bytes_read)``; raises
    ``asyncio.IncompleteReadError`` on a peer that closed mid-frame and
    :class:`FramingError` on a malformed frame.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = await reader.readexactly(length)
    return decode_body(body), _HEADER.size + length
