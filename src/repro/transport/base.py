"""Transport abstraction: *where* an execution's processes physically run.

The engine's three layers (scheduler / delivery / execution,
:mod:`repro.runtime`) decide *when* processes advance and *how* traffic
reaches inboxes; a :class:`Transport` decides where the process programs
execute.  It is a factory for the run's
:class:`~repro.runtime.engine.ExecutionCore`:

* :class:`~repro.transport.inprocess.InProcessTransport` (the default)
  returns the plain in-interpreter core — zero overhead, today's
  behavior, byte-identical to every execution before the transport axis
  existed;
* :class:`~repro.transport.tcp.AsyncioTcpTransport` returns a
  coordinator core that places the processes in real OS worker processes
  speaking length-prefixed frames over localhost TCP.

Every transport-backed core honours the same contract as the in-process
core: per-process randomness is derived from ``(seed, pid)`` regardless
of hosting location, inboxes/outboxes cross the boundary byte-for-byte,
and transport failures surface through
:meth:`~repro.runtime.engine.ExecutionCore.drain_faults` as crash faults
the network arbitrates inside the paper's omission model — never as
hangs, and never outside the ``sent == delivered + omitted + lost +
in-flight`` metering identity.

Wall-clock note (lint rule REP002): ``time.monotonic`` and friends are
permitted *only* under ``src/repro/transport/`` — real links need real
timeouts — and must never influence protocol semantics, only fault
detection and :class:`~repro.runtime.observers.LinkSample` measurements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any, ClassVar

from ..runtime.engine import ExecutionCore
from ..runtime.process import SyncProcess

__all__ = ["Transport", "TransportError"]


class TransportError(RuntimeError):
    """Raised when a transport cannot be brought up or torn down.

    Failures *during* a run (a worker dying mid-round, a link timeout)
    do not raise this — they surface as crash faults via
    :meth:`~repro.runtime.engine.ExecutionCore.drain_faults` so the run
    completes inside the fault model.  ``TransportError`` is reserved for
    setup/teardown problems: workers that never connected, bad
    handshakes, invalid options.
    """


class Transport(ABC):
    """One process-hosting discipline (see the module docstring).

    Transports are addressed by registry name
    (:func:`repro.transport.resolve_transport`); instances are
    stateless factories and may be reused across runs.
    """

    #: Registry key; also serialized into campaign records and recipes.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def create_core(
        self,
        processes: Sequence[SyncProcess],
        *,
        seed: int,
        multicast: bool,
    ) -> ExecutionCore:
        """Build the execution core hosting ``processes`` for one run."""

    def options_payload(self) -> dict[str, Any]:
        """JSON-safe constructor options, for identity serialization.

        Must round-trip: ``create_transport(self.name, payload)`` builds
        an equivalent transport.
        """
        return {}
