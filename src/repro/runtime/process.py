"""Process abstraction for synchronous protocols.

A protocol process is written as a Python *generator*: each ``yield``
terminates the current round's local-computation-plus-send phase and resumes
with the next round's inbox.  Multi-phase protocols compose naturally with
``yield from`` sub-protocols, and the engine keeps all processes in lockstep.

Typical structure::

    class MyProcess(SyncProcess):
        def program(self, env):
            env.send(0, "hello")
            inbox = yield                  # round boundary
            ...
            env.decide(value)
            # returning ends participation (the process terminates)

The inbox delivered at each ``yield`` is the sequence of :class:`Message`
objects that survived the adversary, sorted by sender for determinism.  On
the columnar engine it is a lazy view that materializes per-copy messages
on first read; treat it as an immutable ``Sequence[Message]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Generator, Iterable, Sequence
from typing import Any

from .messages import (
    MESSAGE_OVERHEAD_BITS,
    Message,
    MessageRecord,
    Multicast,
    payload_bits,
)
from .randomness import CountingRandom

#: Type of a protocol program: yields None (round boundary), receives the
#: next round's inbox (a sender-sorted, read-only ``Sequence[Message]``),
#: returns when the process terminates.  Sub-protocols used via
#: ``yield from`` may return a value to their caller.
Program = Generator[None, Sequence[Message], Any]


class ProcessEnv:
    """Per-process handle to the synchronous network.

    Exposes the only operations the model allows: queueing messages for the
    current communication phase, drawing metered randomness, and recording a
    decision.
    """

    __slots__ = (
        "pid",
        "n",
        "random",
        "outbox",
        "decision",
        "has_decided",
        "round",
        "decision_round",
        "expand_multicast",
        "_fanout_cache",
    )

    def __init__(self, pid: int, n: int, random_source: CountingRandom) -> None:
        self.pid = pid
        self.n = n
        self.random = random_source
        self.outbox: list[MessageRecord] = []
        self.decision: Any = None
        self.has_decided = False
        #: Current round number (0-based), maintained by the engine.
        self.round = 0
        #: Round in which :meth:`decide` was first called (None = never).
        self.decision_round: int | None = None
        #: When True, :meth:`send_many` / :meth:`broadcast` eagerly expand
        #: into one :class:`Message` per recipient (the legacy per-message
        #: path, byte-identical to an explicit loop of :meth:`send`) instead
        #: of queueing a single :class:`Multicast` record.  Set by
        #: ``SyncNetwork(multicast=False)``; exists for equivalence testing
        #: and benchmarking, not for production use.
        self.expand_multicast = False
        # Cached (recipients-except-self, recipients-including-self) tuples
        # so per-round broadcasts don't rebuild the O(n) fan-out list.
        self._fanout_cache: tuple[tuple[int, ...], tuple[int, ...]] | None = (
            None
        )

    def send(self, recipient: int, payload: Any) -> None:
        """Queue a message for delivery at the end of this round."""
        if not 0 <= recipient < self.n:
            raise ValueError(
                f"recipient {recipient} out of range for n={self.n}"
            )
        self.outbox.append(Message(self.pid, recipient, payload))

    def send_many(self, recipients: Iterable[int], payload: Any) -> None:
        """Queue the same payload to several recipients as one multicast.

        The payload is sized once, not once per recipient — identical bits
        on the wire, much cheaper to queue and meter for wide fan-outs.  A
        single :class:`Multicast` record enters the outbox; the engine
        expands it into per-recipient :class:`Message` views only where a
        concrete copy is needed.  Recipient order is preserved: the copies
        occupy consecutive flat indices of the round's
        :class:`MessageBatch` in exactly this order.
        """
        recipients = (
            recipients if type(recipients) is tuple else tuple(recipients)
        )
        n = self.n
        for recipient in recipients:
            if not 0 <= recipient < n:
                raise ValueError(
                    f"recipient {recipient} out of range for n={n}"
                )
        if not recipients:
            return
        self._queue_multicast(recipients, payload)

    def _queue_multicast(
        self, recipients: tuple[int, ...], payload: Any
    ) -> None:
        """Queue a validated, non-empty fan-out tuple.

        Callers guarantee every recipient is in range — :meth:`send_many`
        validates arbitrary input, :meth:`broadcast` reuses its cached
        (already validated) fan-out — so a per-round broadcast costs one
        ``payload_bits`` call and one append, no O(n) re-checking.
        """
        if self.expand_multicast:
            # Legacy per-message path: one eagerly-sized Message per copy,
            # exactly as an explicit loop of :meth:`send` would queue.
            pid, outbox = self.pid, self.outbox
            for recipient in recipients:
                outbox.append(Message(pid, recipient, payload))
            return
        bits = payload_bits(payload) + MESSAGE_OVERHEAD_BITS
        self.outbox.append(Multicast(self.pid, recipients, payload, bits))

    def broadcast(
        self,
        payload: Any,
        recipients: Iterable[int] | None = None,
        include_self: bool = False,
    ) -> None:
        """Queue the payload to every process, or to ``recipients``.

        With the default ``recipients=None`` the fan-out is all n processes
        except the sender (``include_self=True`` adds it); the fan-out
        tuple is cached per process, so a per-round broadcast costs one
        queued :class:`Multicast` record.  Passing ``recipients=`` is the
        keyword-friendly spelling of :meth:`send_many`.
        """
        if recipients is None:
            cache = self._fanout_cache
            if cache is None:
                everyone = tuple(range(self.n))
                others = everyone[: self.pid] + everyone[self.pid + 1 :]
                cache = (others, everyone)
                self._fanout_cache = cache
            # The cached tuples were validated when built; skip straight
            # past send_many's per-recipient range loop.
            fanout = cache[1] if include_self else cache[0]
            if fanout:
                self._queue_multicast(fanout, payload)
            return
        self.send_many(recipients, payload)

    def decide(self, value: Any) -> None:
        """Record this process's consensus output (idempotent re-decides
        with the same value are allowed; conflicting ones are bugs)."""
        if self.has_decided and self.decision != value:
            raise RuntimeError(
                f"process {self.pid} attempted to re-decide "
                f"{value!r} after deciding {self.decision!r}"
            )
        if not self.has_decided:
            self.decision_round = self.round
        self.decision = value
        self.has_decided = True


class SyncProcess(ABC):
    """Base class of all protocol processes.

    Subclasses hold their protocol state in public attributes — the adversary
    is *full-information* and is handed the process objects directly.
    """

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n

    @abstractmethod
    def program(self, env: ProcessEnv) -> Program:
        """The process's protocol, as a round-per-yield generator."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pid={self.pid}, n={self.n})"


def idle_rounds(env: ProcessEnv, rounds: int) -> Program:
    """Stay silent for exactly ``rounds`` rounds (used by inoperative
    processes so every code path consumes the same number of rounds)."""
    for _ in range(rounds):
        yield
    return None


def receive_round(env: ProcessEnv) -> Program:
    """Consume one round without sending; generator returns the inbox.

    Usage: ``inbox = yield from receive_round(env)``.
    """
    inbox = yield
    return inbox
