"""Counted random sources.

The paper's third complexity measure is *randomness*: the total number of
random bits drawn, and (for the lower bound) the number of *calls* to a random
source.  :class:`CountingRandom` wraps :class:`random.Random` and meters both,
so protocols that draw randomness through it are automatically accounted in
:class:`repro.runtime.metrics.Metrics`.

Protocol code must draw randomness *only* through its process's
``CountingRandom`` — the simulator asserts nothing, but the benchmarks are
meaningless otherwise.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


def _range_bits(upper: int) -> int:
    """Uniform bits needed to index ``[0, upper)``: ``(upper-1).bit_length()``.

    Computed in integer arithmetic; ``ceil(log2(upper))`` via floats silently
    under-charges near and above 2^53 (e.g. ``2**64 + 1`` rounds to exactly
    2^64 as a double, so the float path would charge 64 bits instead of 65).
    """
    return (upper - 1).bit_length() if upper > 1 else 0


def stable_seed(*parts: object) -> int:
    """Derive a run-independent 63-bit seed from arbitrary labels.

    Python's built-in ``hash`` is salted per interpreter run, so seeds built
    from strings/tuples must go through a stable digest to keep executions
    reproducible across runs and machines.
    """
    digest = hashlib.blake2b(
        repr(parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


class CountingRandom:
    """A random source that meters calls and bits drawn.

    Each public method counts as one *call* to the random source (the paper's
    lower-bound currency) regardless of how many bits it consumes; the bit
    count is the number of uniform bits logically required by the request.
    """

    __slots__ = ("_rng", "calls", "bits_drawn")

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)
        self.calls = 0
        self.bits_drawn = 0

    # ------------------------------------------------------------------
    def _account(self, bits: int) -> None:
        self.calls += 1
        self.bits_drawn += bits

    def reseed(self, seed: int) -> None:
        """Replace the underlying stream; counters keep accumulating.

        Used by the engine's fork facility (rollout adversaries replay a
        recorded prefix on the original stream, then continue on fresh
        randomness — the adversary may know all *drawn* bits, never future
        ones).
        """
        self._rng = random.Random(seed)

    def bit(self) -> int:
        """Draw a single uniform bit."""
        self._account(1)
        return self._rng.getrandbits(1)

    def bits(self, k: int) -> int:
        """Draw ``k`` uniform bits, returned as an integer in ``[0, 2^k)``."""
        if k < 0:
            raise ValueError(f"cannot draw a negative number of bits: {k}")
        if k == 0:
            return 0
        self._account(k)
        return self._rng.getrandbits(k)

    def randrange(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)``; charged ``ceil(log2 upper)`` bits."""
        if upper <= 0:
            raise ValueError(f"randrange upper bound must be positive: {upper}")
        self._account(_range_bits(upper))
        return self._rng.randrange(upper)

    def uniform(self) -> float:
        """Uniform float in [0, 1); charged 53 bits (one double mantissa)."""
        self._account(53)
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform element of ``seq``; charged ``ceil(log2 len)`` bits."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        self._account(_range_bits(len(seq)))
        return seq[self._rng.randrange(len(seq))]

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements; charged ``k * ceil(log2 len)`` bits."""
        size = len(population)
        if k > size:
            raise ValueError(f"sample size {k} exceeds population {size}")
        self._account(k * _range_bits(size))
        return self._rng.sample(population, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place; charged ``log2(len!)`` bits."""
        size = len(items)
        bits = int(math.ceil(math.lgamma(size + 1) / math.log(2))) if size > 1 else 0
        self._account(bits)
        self._rng.shuffle(items)


def derive_seeds(master_seed: int, count: int, salt: str = "") -> list[int]:
    """Derive ``count`` stable per-process seeds from one master seed.

    Uses a dedicated PRNG stream (not any process's source) so the derivation
    itself costs the protocols nothing.
    """
    stream = random.Random(stable_seed(master_seed, salt))
    return [stream.getrandbits(63) for _ in range(count)]


def spawn_sources(
    master_seed: int, count: int, salt: str = ""
) -> list[CountingRandom]:
    """Create ``count`` independent :class:`CountingRandom` sources."""
    return [CountingRandom(seed) for seed in derive_seeds(master_seed, count, salt)]


def total_random_bits(sources: Iterable[CountingRandom]) -> int:
    """Sum of bits drawn across the given sources."""
    return sum(source.bits_drawn for source in sources)


def total_random_calls(sources: Iterable[CountingRandom]) -> int:
    """Sum of random-source calls across the given sources."""
    return sum(source.calls for source in sources)
