"""Synchronous message-passing substrate (Section 2 of the paper).

Public surface:

* :class:`Message`, :class:`Multicast`, :class:`MessageBatch`,
  :func:`payload_bits` — metered point-to-point messages, shared-payload
  multicast records, and the flat per-round batch the engine and the
  adversary operate on;
* :class:`CountingRandom` — the counted random source;
* :class:`SyncProcess`, :class:`ProcessEnv` — generator-based processes;
* :class:`SyncNetwork`, :class:`Adversary`, :class:`AdversaryAction`,
  :class:`NetworkView`, :class:`ExecutionResult` — the round engine and the
  adaptive full-information adversary hook;
* :class:`RoundObserver`, :class:`RoundProfiler`, :class:`TraceRecorder` —
  the engine-driven observer bus and its built-in observers;
* :class:`Metrics` — rounds / communication bits / randomness accounting;
* :class:`ColumnarBatch`, :class:`LazyMessageList`, :data:`HAVE_NUMPY` —
  the numpy-vectorized round layout behind ``SyncNetwork(columnar=True)``;
* :func:`canonical_omissions` — the shared sorted/de-duplicated normal form
  of an omission schedule.
"""

from .columnar import (
    HAVE_NUMPY,
    ColumnarBatch,
    LazyMessageList,
)
from .messages import (
    MESSAGE_OVERHEAD_BITS,
    Message,
    MessageBatch,
    MessageRecord,
    Multicast,
    payload_bits,
)
from .metrics import Metrics
from .observers import (
    CallbackObserver,
    MetricsObserver,
    RoundObserver,
    RoundProfiler,
)
from .network import (
    Adversary,
    AdversaryAction,
    AdversaryContext,
    AdversaryProtocolError,
    ExecutionResult,
    LockstepError,
    NetworkView,
    SyncNetwork,
    canonical_omissions,
    setup_adversary,
)
from .process import (
    ProcessEnv,
    Program,
    SyncProcess,
    idle_rounds,
    receive_round,
)
from .serialization import (
    SCHEMA_VERSION,
    check_schema,
    load_result,
    metrics_from_dict,
    metrics_to_dict,
    recipe_from_dict,
    recipe_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    trace_to_dict,
)
from .trace import RoundTrace, TraceRecorder, default_state_probe
from .randomness import (
    CountingRandom,
    derive_seeds,
    spawn_sources,
    total_random_bits,
    total_random_calls,
)

__all__ = [
    "HAVE_NUMPY",
    "ColumnarBatch",
    "LazyMessageList",
    "MESSAGE_OVERHEAD_BITS",
    "Message",
    "MessageBatch",
    "MessageRecord",
    "Multicast",
    "payload_bits",
    "canonical_omissions",
    "Metrics",
    "Adversary",
    "AdversaryAction",
    "AdversaryContext",
    "AdversaryProtocolError",
    "setup_adversary",
    "ExecutionResult",
    "LockstepError",
    "NetworkView",
    "SyncNetwork",
    "ProcessEnv",
    "Program",
    "SyncProcess",
    "idle_rounds",
    "receive_round",
    "CallbackObserver",
    "MetricsObserver",
    "RoundObserver",
    "RoundProfiler",
    "RoundTrace",
    "TraceRecorder",
    "default_state_probe",
    "SCHEMA_VERSION",
    "check_schema",
    "load_result",
    "metrics_from_dict",
    "metrics_to_dict",
    "recipe_from_dict",
    "recipe_to_dict",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "trace_to_dict",
    "CountingRandom",
    "derive_seeds",
    "spawn_sources",
    "total_random_bits",
    "total_random_calls",
]
