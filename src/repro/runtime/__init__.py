"""Synchronous message-passing substrate (Section 2 of the paper).

Public surface:

* :class:`Message`, :class:`Multicast`, :class:`MessageBatch`,
  :func:`payload_bits` — metered point-to-point messages, shared-payload
  multicast records, and the flat per-round batch the engine and the
  adversary operate on;
* :class:`CountingRandom` — the counted random source;
* :class:`SyncProcess`, :class:`ProcessEnv` — generator-based processes;
* :class:`SyncNetwork`, :class:`Adversary`, :class:`AdversaryAction`,
  :class:`NetworkView`, :class:`ExecutionResult` — the engine facade and the
  adaptive full-information adversary hook;
* :class:`ExecutionCore`, :class:`DeliveryBackend`, :class:`RoundModel` —
  the engine's three layers (execution, delivery, scheduling), with
  :class:`LockstepModel` / :class:`PartialSynchronyModel` as the two
  registered timing disciplines (:func:`create_model`,
  :func:`available_models`, :func:`default_model_name`);
* :class:`RoundObserver`, :class:`RoundProfiler`, :class:`TraceRecorder` —
  the engine-driven observer bus and its built-in observers;
* :class:`Metrics` — rounds / communication bits / randomness accounting;
* :class:`ColumnarBatch`, :class:`LazyMessageList`, :data:`HAVE_NUMPY` —
  the numpy-vectorized round layout behind ``SyncNetwork(columnar=True)``;
* :func:`canonical_omissions` — the shared sorted/de-duplicated normal form
  of an omission schedule.
"""

from .columnar import (
    HAVE_NUMPY,
    ColumnarBatch,
    LazyMessageList,
)
from .messages import (
    MESSAGE_OVERHEAD_BITS,
    Message,
    MessageBatch,
    MessageRecord,
    Multicast,
    payload_bits,
)
from .delivery import (
    ColumnarDeliveryBackend,
    DeliveryBackend,
    DeliveryReceipt,
    ObjectDeliveryBackend,
    make_backend,
)
from .engine import ExecutionCore
from .metrics import Metrics
from .models import (
    LockstepModel,
    PartialSynchronyModel,
    RoundModel,
    available_models,
    create_model,
    default_model_name,
    resolve_model,
)
from .observers import (
    LinkSample,
    MetricsObserver,
    RoundObserver,
    RoundProfiler,
)
from .network import (
    Adversary,
    AdversaryAction,
    AdversaryContext,
    AdversaryProtocolError,
    ExecutionResult,
    LockstepError,
    NetworkView,
    SyncNetwork,
    canonical_omissions,
    setup_adversary,
)
from .process import (
    ProcessEnv,
    Program,
    SyncProcess,
    idle_rounds,
    receive_round,
)
from .serialization import (
    SCHEMA_VERSION,
    check_schema,
    load_result,
    metrics_from_dict,
    metrics_to_dict,
    recipe_from_dict,
    recipe_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    trace_to_dict,
)
from .trace import RoundTrace, TraceRecorder, default_state_probe
from .randomness import (
    CountingRandom,
    derive_seeds,
    spawn_sources,
    total_random_bits,
    total_random_calls,
)

__all__ = [
    "HAVE_NUMPY",
    "ColumnarBatch",
    "LazyMessageList",
    "MESSAGE_OVERHEAD_BITS",
    "Message",
    "MessageBatch",
    "MessageRecord",
    "Multicast",
    "payload_bits",
    "canonical_omissions",
    "Metrics",
    "Adversary",
    "AdversaryAction",
    "AdversaryContext",
    "AdversaryProtocolError",
    "setup_adversary",
    "ExecutionResult",
    "LockstepError",
    "NetworkView",
    "SyncNetwork",
    "ExecutionCore",
    "ColumnarDeliveryBackend",
    "DeliveryBackend",
    "DeliveryReceipt",
    "ObjectDeliveryBackend",
    "make_backend",
    "LockstepModel",
    "PartialSynchronyModel",
    "RoundModel",
    "available_models",
    "create_model",
    "default_model_name",
    "resolve_model",
    "ProcessEnv",
    "Program",
    "SyncProcess",
    "idle_rounds",
    "receive_round",
    "LinkSample",
    "MetricsObserver",
    "RoundObserver",
    "RoundProfiler",
    "RoundTrace",
    "TraceRecorder",
    "default_state_probe",
    "SCHEMA_VERSION",
    "check_schema",
    "load_result",
    "metrics_from_dict",
    "metrics_to_dict",
    "recipe_from_dict",
    "recipe_to_dict",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "trace_to_dict",
    "CountingRandom",
    "derive_seeds",
    "spawn_sources",
    "total_random_bits",
    "total_random_calls",
]
