"""The round-model interface: the scheduler layer of the engine.

A :class:`RoundModel` owns the *timing* of an execution — when processes
advance, when the adversary acts, and when surviving traffic reaches
inboxes — while delegating process advancement to the
:class:`~repro.runtime.engine.ExecutionCore` and inbox placement to the
network's :class:`~repro.runtime.delivery.DeliveryBackend`.  Everything
the adversary API, the observer bus, and the metering contract promise is
model-independent: a model drives the same fixed hook sequence
(``on_round_start`` → ``on_messages_sent`` → ``on_adversary_action`` →
``on_deliveries`` → ``on_round_end``) through the network's dispatch
helpers every round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..network import SyncNetwork


class RoundModel(ABC):
    """One timing discipline for driving rounds (see the module docstring).

    A model instance belongs to exactly one :class:`SyncNetwork` run at a
    time; per-run state (clocks, in-flight queues) is reset at the top of
    :meth:`run_rounds`.
    """

    #: Registry key; also serialized into execution recipes.
    name = "abstract"

    @abstractmethod
    def run_rounds(self, network: SyncNetwork) -> None:
        """Drive rounds until the run's termination condition holds.

        The network has already dispatched ``on_run_start`` and set up the
        adversary; the model must leave the network in its terminal state
        (``live_count == 0`` and no undelivered traffic) or raise
        :class:`~repro.runtime.network.LockstepError` on ``max_rounds``.
        """

    @property
    def in_flight_count(self) -> int:
        """Messages sent but not yet delivered, omitted, or lost.

        Non-zero only for models with cross-round message latency; the
        conservation invariant generalizes to
        ``sent == delivered + omitted + lost + in_flight``.
        """
        return 0

    def options_payload(self) -> dict[str, Any]:
        """JSON-safe constructor options, for recipe serialization.

        Must round-trip: ``create_model(self.name, **payload)`` builds an
        equivalent model.
        """
        return {}
