"""Partial synchrony as a canonical-round reduction.

The classic partial-synchrony setting (Dwork–Lynch–Stockmeyer) gives every
message an unknown bounded delay and promises a Global Stabilization Time
(GST) after which the bound is the known minimum.  Simulating that
faithfully per-message would abandon the round structure the whole
engine, adversary API, and metering contract are built on — so this model
uses the standard *canonical round* reduction instead (Attiya–Welch,
Chapter 11): simulated time advances in integer units; each round's send
step happens at one instant; each surviving copy independently draws an
integer latency in ``[min_latency, max_latency]`` (after GST: exactly
``min_latency``, no draw); and the round's *receive step* collects every
copy that has arrived by the receive deadline.

Two regimes, selected by ``timeout``:

* ``timeout=None`` (default) — the receive step waits for the round's
  slowest copy.  Every message arrives in the round it was sent, so
  inboxes, decisions, and every :class:`Metrics` counter are
  **byte-identical to lockstep**; only the simulated clock
  (:attr:`time`, :attr:`round_durations`) reflects the latency draws.
  This is the conservative reduction: a synchronous protocol stays
  correct, and the whole lockstep test corpus doubles as a
  partial-synchrony corpus.
* ``timeout=k`` — the receive step closes ``k`` time units after the
  send step.  Copies whose latency exceeds the timeout stay *in flight*
  and join the receive step of the earliest later round whose deadline
  covers their arrival; recipients that terminated meanwhile turn them
  into losses.  The conservation identity generalizes to
  ``sent == delivered + omitted + lost + in_flight`` (what
  :class:`~repro.replay.invariants.InvariantObserver` checks via
  :attr:`SyncNetwork.in_flight_messages`).

Latency draws come from a dedicated :class:`CountingRandom` stream seeded
with ``stable_seed(seed, "partial-synchrony-latency")`` — *not* one of the
per-process sources — so process randomness totals, recorded recipes, and
replay fingerprints are unaffected by the model's own randomness.
Draws happen per surviving copy in ascending flat-index order, which makes
them independent of the multicast/columnar delivery representation.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from ..messages import Message, MessageBatch
from ..randomness import CountingRandom, stable_seed
from .base import RoundModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from collections.abc import Sequence

    from ..network import SyncNetwork


class PartialSynchronyModel(RoundModel):
    """Canonical rounds over latency-bearing links with a GST.

    Parameters
    ----------
    min_latency:
        Fastest possible link, in simulated time units (>= 1).  Also the
        exact latency of every copy sent at or after ``gst``.
    max_latency:
        Slowest possible link before GST (>= ``min_latency``).
    gst:
        Global Stabilization Time, in simulated time units.  Copies sent
        at ``time >= gst`` take exactly ``min_latency`` (and draw no
        randomness); ``0`` means the network is timely from the start.
    timeout:
        Receive-deadline offset per round, or ``None`` to wait for the
        round's slowest copy (the lockstep-equivalent regime, default).
        Must be >= 1 when given; smaller timeouts defer more traffic.
    """

    name = "partial-synchrony"

    def __init__(
        self,
        min_latency: int = 1,
        max_latency: int = 3,
        gst: int = 0,
        timeout: int | None = None,
    ) -> None:
        if min_latency < 1:
            raise ValueError(
                f"min_latency={min_latency} must be a positive number of "
                "time units"
            )
        if max_latency < min_latency:
            raise ValueError(
                f"max_latency={max_latency} must be >= "
                f"min_latency={min_latency}"
            )
        if gst < 0:
            raise ValueError(f"gst={gst} must be >= 0")
        if timeout is not None and timeout < 1:
            raise ValueError(
                f"timeout={timeout} must be >= 1 (or None to wait for the "
                "slowest copy)"
            )
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.gst = gst
        self.timeout = timeout
        #: Simulated clock, in time units; advances at each receive step.
        self.time = 0
        #: Per-round receive-step durations, in time units.
        self.round_durations: list[int] = []
        # (arrival_time, send_sequence, message) min-heap of copies that
        # missed their send round's receive deadline.
        self._pending: list[tuple[int, int, Message]] = []
        self._sequence = 0
        self._rng: CountingRandom | None = None

    # ------------------------------------------------------------------
    @property
    def in_flight_count(self) -> int:
        return len(self._pending)

    def options_payload(self) -> dict[str, Any]:
        return {
            "min_latency": self.min_latency,
            "max_latency": self.max_latency,
            "gst": self.gst,
            "timeout": self.timeout,
        }

    # ------------------------------------------------------------------
    def run_rounds(self, network: SyncNetwork) -> None:
        from ..network import LockstepError

        observers = network.observers
        core = network.core
        self.time = 0
        self.round_durations = []
        self._pending = []
        self._sequence = 0
        self._rng = CountingRandom(
            stable_seed(network.seed, "partial-synchrony-latency")
        )
        while core.live_count > 0 or self._pending:
            network.maybe_reseed()
            if network.round >= network.max_rounds:
                raise LockstepError(
                    f"protocol did not terminate within {network.max_rounds} "
                    f"rounds; {core.live_count} processes still live"
                )
            for observer in observers:
                observer.on_round_start(network.round, network)
            outbound = core.advance(network.round)
            if core.live_count == 0 and not outbound and not self._pending:
                # A terminal local-computation phase with no traffic (and
                # nothing in flight) is not a round: observers see the
                # unmatched on_round_start.
                break
            for observer in observers:
                observer.on_messages_sent(network.round, outbound, network)
            omitted = network._apply_adversary(outbound)
            self._deliver_round(network, outbound, omitted)
            network._dispatch_round_end()
            network.round += 1

    # ------------------------------------------------------------------
    def _draw_latencies(
        self, batch: MessageBatch, omitted: Sequence[int]
    ) -> dict[int, int]:
        """Latency per surviving flat index, in ascending index order.

        Ascending flat order is the canonical draw order: it depends only
        on the batch's flat layout, never on how the delivery backend
        later walks it, so multicast/columnar representation changes
        cannot shift the latency stream.
        """
        rng = self._rng
        assert rng is not None
        omitted_set = set(omitted)
        after_gst = self.time >= self.gst
        fixed = self.min_latency
        spread = self.max_latency - fixed + 1
        latencies: dict[int, int] = {}
        for index in range(len(batch)):
            if index in omitted_set:
                continue
            latencies[index] = (
                fixed
                if after_gst or spread == 1
                else fixed + rng.randrange(spread)
            )
        return latencies

    def _deliver_round(
        self,
        network: SyncNetwork,
        batch: MessageBatch,
        omitted: tuple[int, ...],
    ) -> None:
        """One receive step: on-time copies now, late copies into flight."""
        send_time = self.time
        latencies = self._draw_latencies(batch, omitted)
        if self.timeout is None:
            # Wait out the slowest copy: everything sent this round (and
            # necessarily everything previously in flight) arrives before
            # the next local-computation phase — the lockstep-equivalent
            # receive step, delegated verbatim to the network's delivery
            # dispatch for byte-identical inboxes and counters.
            duration = max(latencies.values(), default=self.min_latency)
            network._deliver(batch, omitted)
            self.time = send_time + duration
            self.round_durations.append(duration)
            return

        deadline = send_time + self.timeout
        deferred = [
            index
            for index, latency in sorted(latencies.items())
            if send_time + latency > deadline
        ]
        # On-time copies go through the regular backend; deferred ones are
        # excluded exactly like omissions (skipped, not counted) and
        # tracked in the in-flight heap instead.
        excluded = sorted(set(omitted).union(deferred))
        receipt = network._backend.deliver(
            batch, excluded, network._inboxes, core_live := network.core.live_mask()
        )
        for index in deferred:
            heapq.heappush(
                self._pending,
                (send_time + latencies[index], self._sequence, batch[index]),
            )
            self._sequence += 1

        # Pop previously deferred copies whose arrival the deadline now
        # covers, in (arrival, send-order) order — the canonical receive
        # order for late traffic, appended after the round's own
        # deliveries.
        delivered = list(receipt.delivered)
        lost = list(receipt.lost)
        delivered_bits = receipt.delivered_bits
        lost_bits = receipt.lost_bits
        inboxes = network._inboxes
        while self._pending and self._pending[0][0] <= deadline:
            _, _, message = heapq.heappop(self._pending)
            recipient = message.recipient
            if core_live is not None and not core_live[recipient]:
                lost.append(message)
                lost_bits += message.bits
                continue
            box = inboxes[recipient]
            if not isinstance(box, list):
                # Columnar rounds leave lazy views in the slots; widen to a
                # plain list before appending late arrivals.
                box = list(box)
                inboxes[recipient] = box
            box.append(message)
            delivered.append(message)
            delivered_bits += message.bits

        network._delivered_bits = delivered_bits
        network._lost_bits = lost_bits
        for observer in network.observers:
            observer.on_deliveries(network.round, delivered, lost, network)
        self.time = deadline
        self.round_durations.append(self.timeout)
