"""Round-model registry: the engine's selectable timing disciplines.

The engine is split into three layers — scheduler (this package),
delivery (:mod:`repro.runtime.delivery`), and execution
(:mod:`repro.runtime.engine`).  A :class:`RoundModel` is the scheduler:
it decides when processes advance and when traffic arrives, while the
adversary API, observer bus, metering, and record/replay behave
identically across models.

Models are addressed by registry name — ``"lockstep"`` (the paper's
synchronous rounds, the default) and ``"partial-synchrony"`` (canonical
rounds over latency-bearing links with a GST).  The default can be
overridden per-environment via ``REPRO_EXECUTION_MODEL``, which is how CI
runs the whole tier-1 suite under partial synchrony.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Any

from .base import RoundModel
from .lockstep import LockstepModel
from .partial_synchrony import PartialSynchronyModel

__all__ = [
    "LockstepModel",
    "PartialSynchronyModel",
    "RoundModel",
    "available_models",
    "create_model",
    "default_model_name",
    "resolve_model",
]

#: Environment variable naming the model used when none is requested.
MODEL_ENV_VAR = "REPRO_EXECUTION_MODEL"

_MODELS: dict[str, type[RoundModel]] = {
    LockstepModel.name: LockstepModel,
    PartialSynchronyModel.name: PartialSynchronyModel,
}


def available_models() -> tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_MODELS))


def default_model_name() -> str:
    """The model used when neither caller nor recipe names one.

    Reads ``REPRO_EXECUTION_MODEL`` (validated against the registry);
    falls back to ``"lockstep"``.
    """
    name = os.environ.get(MODEL_ENV_VAR, "").strip()
    if not name:
        return LockstepModel.name
    if name not in _MODELS:
        raise ValueError(
            f"{MODEL_ENV_VAR}={name!r} names an unknown execution model; "
            f"choose from: {', '.join(available_models())}"
        )
    return name


def create_model(
    name: str, options: Mapping[str, Any] | None = None
) -> RoundModel:
    """Instantiate a registered model by name with constructor options."""
    try:
        model_cls = _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution model {name!r}; choose from: "
            f"{', '.join(available_models())}"
        ) from None
    return model_cls(**dict(options or {}))


def resolve_model(
    model: RoundModel | str | None = None,
    options: Mapping[str, Any] | None = None,
) -> RoundModel:
    """Resolve the ``model=`` axis: instance > name > env > lockstep.

    A ready-made :class:`RoundModel` instance is used as-is (``options``
    must then be empty — the instance already carries its configuration).
    """
    if isinstance(model, RoundModel):
        if options:
            raise ValueError(
                "model_options only apply when the model is given by name; "
                "configure the RoundModel instance directly instead"
            )
        return model
    name = model if model is not None else default_model_name()
    return create_model(name, options)
