"""The lockstep synchronous round model — the paper's Section 2 semantics.

Every round is two phases: a local-computation phase (every live process
generator resumed with last round's post-omission inbox) and a
communication phase (the adversary observes everything and acts, then the
surviving messages are delivered, to be consumed next round).  Messages
never cross round boundaries, so :attr:`RoundModel.in_flight_count` is
always zero and the metering identity holds per round without an
in-flight term.

This model is the byte-identical successor of the historical
``SyncNetwork.run`` loop: golden recipes in ``tests/data/`` and the
multicast × columnar differential grid in ``tests/test_columnar.py``
certify that decisions, inbox orders, and every :class:`Metrics` counter
are unchanged by the scheduler/delivery/execution layering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..network import LockstepError
from .base import RoundModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..network import SyncNetwork


class LockstepModel(RoundModel):
    """Classic synchronous rounds: all traffic arrives next round."""

    name = "lockstep"

    def run_rounds(self, network: SyncNetwork) -> None:
        observers = network.observers
        core = network.core
        while core.live_count > 0:
            network.maybe_reseed()
            if network.round >= network.max_rounds:
                raise LockstepError(
                    f"protocol did not terminate within {network.max_rounds} "
                    f"rounds; {core.live_count} processes still live"
                )
            for observer in observers:
                observer.on_round_start(network.round, network)
            outbound = core.advance(network.round)
            if core.live_count == 0 and not outbound:
                # A terminal local-computation phase with no traffic is not
                # a round: observers see the unmatched on_round_start.
                break
            for observer in observers:
                observer.on_messages_sent(network.round, outbound, network)
            omitted = network._apply_adversary(outbound)
            network._deliver(outbound, omitted)
            network._dispatch_round_end()
            network.round += 1
