"""The synchronous message-passing engine with an adaptive-adversary hook.

Each simulated round follows the paper's two-phase structure (Section 2):

1. *Local computation phase* — every live process's generator is resumed with
   the previous round's (post-omission) inbox; it updates state, draws metered
   randomness, and queues outgoing messages.
2. *Communication phase* — the adversary observes everything (full
   information: process states, this round's outbound messages, randomness
   already drawn) and returns an :class:`AdversaryAction`: which processes to
   newly corrupt and which faulty-incident messages to omit.  The engine
   validates legality (corruption budget, omissions only at faulty processes)
   and delivers the surviving messages, to be consumed next round.

The round's outbound traffic is a flat :class:`MessageBatch` over the
records the processes queued — point-to-point :class:`Message` objects and
:class:`Multicast` records (one shared payload, one precomputed size, many
recipients).  Omit indices address the batch's flat per-copy positions, so
adversary semantics, sender-ordered inboxes, and every :class:`Metrics`
counter are byte-identical to the legacy per-message path
(``SyncNetwork(multicast=False)``), while the engine sizes, meters, and
dispatches broadcast traffic per record instead of per copy.

The engine never trusts the strategy: illegal actions raise
:class:`AdversaryProtocolError`.

Instrumentation rides a first-class observer bus
(:class:`repro.runtime.observers.RoundObserver`): the engine natively
dispatches ``on_run_start`` / ``on_round_start`` / ``on_messages_sent`` /
``on_adversary_action`` / ``on_deliveries`` / ``on_round_end`` /
``on_run_end``.  The :class:`Metrics` accounting itself is the first
observer on every network, so tracers and profilers see consistent series
without wrapping the adversary or monkeypatching hooks.
"""

from __future__ import annotations

import inspect
import random
import warnings
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, cast

from .columnar import (
    HAVE_NUMPY,
    FanoutCache,
    first_illegal_omission,
    plan_delivery,
)
from .messages import Message, MessageBatch, Multicast
from .metrics import Metrics
from .observers import CallbackObserver, MetricsObserver, RoundObserver
from .process import ProcessEnv, Program, SyncProcess
from .randomness import CountingRandom, derive_seeds, stable_seed


class AdversaryProtocolError(RuntimeError):
    """Raised when an adversary strategy violates the model's rules."""


def canonical_omissions(indices: Iterable[int]) -> tuple[int, ...]:
    """Canonical form of a round's omit indices: sorted and de-duplicated.

    The single choke point for omission-schedule normalization: the engine
    canonicalizes every :class:`AdversaryAction` before validating,
    metering, or dispatching it to observers; the replay recorder, the
    recipe serializer, and :class:`~repro.adversary.ScriptedAdversary`
    normalize through the same function.  An adversary that emits the same
    flat index twice (easy to do when building ``omit`` from overlapping
    per-target index sets) therefore omits one copy, is metered for one
    copy, and records/replays as one copy on every engine path.
    """
    return tuple(sorted(set(indices)))


class LockstepError(RuntimeError):
    """Raised when processes fall out of lockstep (a protocol bug)."""


@dataclass(slots=True)
class AdversaryAction:
    """What the adversary does between the two phases of one round.

    Attributes
    ----------
    corrupt:
        Process ids to corrupt *now* (before this round's delivery); they may
        already have messages in flight this round, all of which become
        omittable.
    omit:
        Indices into the round's message list to omit.  Every index must point
        at a message whose sender or recipient is faulty after the new
        corruptions are applied.
    """

    corrupt: frozenset[int] = frozenset()
    omit: frozenset[int] = frozenset()

    @staticmethod
    def nothing() -> AdversaryAction:
        return AdversaryAction()


class NetworkView:
    """Read-only full-information snapshot handed to the adversary.

    The adversary sees process objects (and thus their entire state), the
    round's outbound messages, who is already faulty, and the remaining
    corruption budget.  It cannot see *future* random bits because they have
    not been drawn yet.
    """

    __slots__ = (
        "round",
        "processes",
        "messages",
        "faulty",
        "budget_left",
        "decisions",
        "terminated",
        "_by_sender",
        "_by_recipient",
    )

    def __init__(
        self,
        round_no: int,
        processes: Sequence[SyncProcess],
        messages: Sequence[Message],
        faulty: frozenset[int],
        budget_left: int,
        decisions: Mapping[int, Any],
        terminated: frozenset[int],
    ) -> None:
        self.round = round_no
        self.processes = processes
        #: The round's outbound traffic as a flat ``Sequence[Message]`` —
        #: a :class:`MessageBatch` for engine-built views, where multicast
        #: copies occupy consecutive indices and materialize lazily on
        #: ``view.messages[i]`` / iteration.  Omit indices address these
        #: flat positions.
        self.messages = messages
        self.faulty = faulty
        self.budget_left = budget_left
        self.decisions = decisions
        self.terminated = terminated
        # Lazy per-sender/per-recipient indexes.  A view's message list is
        # immutable for its lifetime (the engine builds a fresh view every
        # round), so the indexes are built at most once per round instead of
        # rescanning all m messages on every helper call.
        self._by_sender: dict[int, list[int]] | None = None
        self._by_recipient: dict[int, list[int]] | None = None

    def _indexes(self) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
        if self._by_sender is None:
            messages = self.messages
            if isinstance(messages, MessageBatch):
                # Answer from the records — no per-copy materialization.
                self._by_sender = messages.indices_by_sender()
                self._by_recipient = messages.indices_by_recipient()
            else:
                by_sender: dict[int, list[int]] = {}
                by_recipient: dict[int, list[int]] = {}
                for index, message in enumerate(messages):
                    by_sender.setdefault(message.sender, []).append(index)
                    by_recipient.setdefault(
                        message.recipient, []
                    ).append(index)
                self._by_sender = by_sender
                self._by_recipient = by_recipient
        return self._by_sender, self._by_recipient

    # Convenience helpers used by concrete strategies -------------------
    def message_indices_touching(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages sent by or to any of ``pids``."""
        by_sender, by_recipient = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_sender.get(pid, ()))
            indices.extend(by_recipient.get(pid, ()))
        return frozenset(indices)

    def message_indices_from(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages sent by any of ``pids``."""
        by_sender, _ = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_sender.get(pid, ()))
        return frozenset(indices)

    def message_indices_to(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages addressed to any of ``pids``."""
        _, by_recipient = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_recipient.get(pid, ()))
        return frozenset(indices)


@dataclass(frozen=True)
class AdversaryContext:
    """Everything an adversary may inspect before round 0.

    Handed to :meth:`Adversary.setup` by the engine (and by combinators to
    their inner strategies).  ``rng`` is a dedicated, deterministically
    seeded stream — strategies that randomize their setup (target sampling,
    tie breaking) should draw from it instead of global randomness so
    recorded executions replay exactly.
    """

    n: int
    t: int
    processes: tuple[SyncProcess, ...]
    rng: random.Random


def setup_adversary(adversary: Adversary, ctx: AdversaryContext) -> None:
    """Invoke ``adversary.setup`` with the context, adapting legacy hooks.

    The historical lifecycle hook was ``setup(n, t, processes)``; the
    current one is ``setup(ctx)``.  Strategies still implementing the old
    three-argument signature keep working — this adapter unpacks the
    context for them and emits a :class:`DeprecationWarning`.  Combinators
    must use this function (not ``inner.setup(...)`` directly) so wrapped
    legacy strategies are adapted too.
    """
    setup = adversary.setup
    try:
        parameters = inspect.signature(setup).parameters.values()
    except (TypeError, ValueError):  # builtins / C callables: assume current
        parameters = ()
    positional = [
        parameter
        for parameter in parameters
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    if len(positional) >= 3:
        warnings.warn(
            f"{type(adversary).__name__}.setup(n, t, processes) is "
            "deprecated; accept a single AdversaryContext instead "
            "(setup(self, ctx) with ctx.n / ctx.t / ctx.processes / ctx.rng)",
            DeprecationWarning,
            stacklevel=3,
        )
        setup(ctx.n, ctx.t, ctx.processes)
    else:
        setup(ctx)


class Adversary:
    """Base adversary: corrupts nobody and omits nothing.

    Concrete strategies override :meth:`act`; they may also override
    :meth:`setup` to inspect the system before round 0.  The legacy
    ``setup(n, t, processes)`` signature is still honoured (with a
    :class:`DeprecationWarning`) via :func:`setup_adversary`.
    """

    def setup(self, ctx: AdversaryContext) -> None:
        """Called once before the first round with the run's context."""

    def act(self, view: NetworkView) -> AdversaryAction:
        """Return this round's corruptions and omissions."""
        return AdversaryAction.nothing()


@dataclass
class ExecutionResult:
    """Outcome of :meth:`SyncNetwork.run`."""

    n: int
    decisions: dict[int, Any]
    metrics: Metrics
    faulty: frozenset[int]
    all_terminated: bool
    rounds: int
    #: Per-process random-source statistics (calls, bits).
    randomness_per_process: list[tuple[int, int]] = field(default_factory=list)
    #: Round in which each process first decided (absent = never decided).
    decision_rounds: dict[int, int] = field(default_factory=dict)

    def time_to_agreement(self) -> int:
        """The paper's *time* metric: rounds until the last **non-faulty**
        process has decided (Section 2).  Faulty stragglers — e.g. fully
        eclipsed processes waiting out their timeout — do not count.

        Raises ``AssertionError`` if some non-faulty process never decided.
        """
        latest = -1
        for pid in range(self.n):
            if pid in self.faulty:
                continue
            round_no = self.decision_rounds.get(pid)
            if round_no is None:
                raise AssertionError(
                    f"non-faulty process {pid} never decided"
                )
            latest = max(latest, round_no)
        if latest < 0:
            raise AssertionError("no non-faulty process decided")
        return latest + 1

    def non_faulty_decisions(self) -> dict[int, Any]:
        """Decisions of processes the adversary never corrupted."""
        return {
            pid: value
            for pid, value in self.decisions.items()
            if pid not in self.faulty
        }

    def agreement_value(self) -> Any:
        """The unique decision of non-faulty processes.

        Raises ``AssertionError`` if agreement is violated or some non-faulty
        process never decided — the core correctness check used by tests.
        """
        values = self.non_faulty_decisions()
        undecided = [
            pid
            for pid in range(self.n)
            if pid not in self.faulty and pid not in values
        ]
        if undecided:
            raise AssertionError(
                f"termination violated: non-faulty processes {undecided} "
                "never decided"
            )
        distinct = set(values.values())
        if len(distinct) != 1:
            raise AssertionError(
                f"agreement violated: non-faulty decisions {values}"
            )
        return distinct.pop()


class SyncNetwork:
    """Drives a set of :class:`SyncProcess` generators in lockstep rounds."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        adversary: Adversary | None = None,
        t: int = 0,
        seed: int = 0,
        max_rounds: int = 100_000,
        on_round: Callable[[int, "SyncNetwork"], None] | None = None,
        reseed_at: tuple[int, int] | None = None,
        observers: Sequence[RoundObserver] = (),
        multicast: bool = True,
        columnar: bool | None = None,
    ) -> None:
        if not processes:
            raise ValueError("need at least one process")
        n = len(processes)
        for index, process in enumerate(processes):
            if process.pid != index:
                raise ValueError(
                    f"process at position {index} has pid {process.pid}; "
                    "pids must equal list positions"
                )
            if process.n != n:
                raise ValueError(
                    f"process {process.pid} was built for n={process.n}, "
                    f"but the network has n={n}"
                )
        if t < 0 or t >= n:
            raise ValueError(f"fault budget t={t} must satisfy 0 <= t < n={n}")

        self.processes = list(processes)
        self.n = n
        self.t = t
        self.seed = seed
        self.adversary = adversary if adversary is not None else Adversary()
        self.max_rounds = max_rounds
        self.metrics = Metrics()
        self.faulty: set[int] = set()
        self.round = 0
        # Per-round delivery totals accumulated by _deliver so the
        # MetricsObserver does not need a second O(copies) pass.
        self._delivered_bits = 0
        self._lost_bits = 0
        #: The observer bus.  The engine's own accounting comes first so
        #: user observers read up-to-date Metrics series; the legacy
        #: ``on_round`` callback (if any) runs last, at the old hook's
        #: position (end of round) — :meth:`add_observer` keeps it pinned
        #: there.
        self._observers: list[RoundObserver] = [MetricsObserver(self.metrics)]
        self._observers.extend(observers)
        self._legacy_adapter: CallbackObserver | None = None
        if on_round is not None:
            warnings.warn(
                "SyncNetwork(on_round=...) is deprecated; pass the callback "
                "as a RoundObserver via observers=[...] or add_observer() "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self._legacy_adapter = CallbackObserver(on_round)
            self._observers.append(self._legacy_adapter)
        #: Optional (round, seed): at the start of that round every
        #: process's random source is re-seeded from ``seed`` — the fork
        #: point used by rollout-based adversaries (future coins must be
        #: fresh, already-drawn coins must replay exactly).
        self._reseed_at = reseed_at

        seeds = derive_seeds(seed, n, salt="process-randomness")
        self.sources = [CountingRandom(s) for s in seeds]
        self.envs = [
            ProcessEnv(pid, n, self.sources[pid]) for pid in range(n)
        ]
        #: Whether send_many/broadcast queue single Multicast records (the
        #: fast path) or expand eagerly into per-copy Messages (the legacy
        #: per-message path; byte-identical outcomes, kept for equivalence
        #: tests and benchmarking).
        self.multicast = multicast
        if not multicast:
            for env in self.envs:
                env.expand_multicast = True
        #: Whether the communication phase runs vectorized over the
        #: columnar (numpy) batch layout — omissions as an index mask,
        #: terminated-recipient filtering as an index select, inboxes as a
        #: grouped scatter of lazy :class:`Message` views.  Defaults to
        #: numpy availability; ``columnar=False`` keeps the legacy
        #: object-per-copy delivery loop (byte-identical outcomes, kept
        #: for differential testing, exactly like ``multicast=False``).
        if columnar is None:
            columnar = HAVE_NUMPY
        elif columnar and not HAVE_NUMPY:
            raise ValueError(
                "SyncNetwork(columnar=True) requires numpy, which is not "
                "installed; use columnar=False or columnar=None (auto)"
            )
        self.columnar = columnar
        # Fan-out tuples already converted to index arrays, shared across
        # rounds (ProcessEnv.broadcast caches its fan-out tuple per
        # process, so the same tuple objects recur every round).
        self._fanout_cache: FanoutCache = {}
        self._programs: list[Program | None] = [
            process.program(self.envs[process.pid]) for process in self.processes
        ]
        self._inboxes: list[Sequence[Message]] = [[] for _ in range(n)]

    # ------------------------------------------------------------------
    def add_observer(self, observer: RoundObserver) -> SyncNetwork:
        """Attach a :class:`RoundObserver`; returns the network (chainable).

        Attach before :meth:`run` — observers joining mid-run would see a
        partial hook sequence.  The legacy ``on_round`` adapter (if any)
        stays pinned at the end of the bus, as documented: observers added
        here run before it.
        """
        if (
            self._legacy_adapter is not None
            and self._observers
            and self._observers[-1] is self._legacy_adapter
        ):
            self._observers.insert(len(self._observers) - 1, observer)
        else:
            self._observers.append(observer)
        return self

    @property
    def observers(self) -> tuple[RoundObserver, ...]:
        """The attached observers (first entry is the engine's own
        :class:`MetricsObserver`)."""
        return tuple(self._observers)

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Number of processes whose programs have not returned yet."""
        return sum(1 for program in self._programs if program is not None)

    def terminated_set(self) -> frozenset[int]:
        return frozenset(
            pid for pid, program in enumerate(self._programs) if program is None
        )

    # ------------------------------------------------------------------
    def _advance_processes(self) -> MessageBatch:
        """Run the local-computation phase; collect the outbound batch."""
        records: list[Message | Multicast] = []
        for pid, program in enumerate(self._programs):
            if program is None:
                continue
            env = self.envs[pid]
            env.round = self.round
            env.outbox = []
            inbox = self._inboxes[pid]
            self._inboxes[pid] = []
            try:
                if self.round == 0:
                    next(program)
                else:
                    program.send(inbox)
            except StopIteration:
                self._programs[pid] = None
            # Messages queued before a final ``return`` are still sent: the
            # process completed its local computation phase this round.
            records.extend(env.outbox)
        return MessageBatch(records)

    def _apply_adversary(self, batch: MessageBatch) -> tuple[int, ...]:
        """Communication phase: let the adversary corrupt and omit.

        Returns the validated, canonical (sorted, de-duplicated) omitted
        flat message indices; :meth:`_deliver` skips them without
        rebuilding the batch.  Observers — including the metrics
        accounting and the replay recorder — are dispatched a
        canonicalized :class:`AdversaryAction`, so duplicate indices in a
        strategy's raw action are coalesced before anything downstream
        counts or serializes them (see :func:`canonical_omissions`).
        """
        view = NetworkView(
            round_no=self.round,
            processes=self.processes,
            messages=batch,
            faulty=frozenset(self.faulty),
            budget_left=self.t - len(self.faulty),
            decisions=self.current_decisions(),
            terminated=self.terminated_set(),
        )
        action = self.adversary.act(view)

        new_corruptions = set(action.corrupt) - self.faulty
        if len(self.faulty) + len(new_corruptions) > self.t:
            raise AdversaryProtocolError(
                f"corruption budget exceeded: have {len(self.faulty)}, "
                f"tried to add {len(new_corruptions)}, budget t={self.t}"
            )
        for pid in sorted(new_corruptions):
            if not 0 <= pid < self.n:
                raise AdversaryProtocolError(f"cannot corrupt unknown pid {pid}")
        self.faulty |= new_corruptions

        omit = canonical_omissions(action.omit)
        if omit:
            total = len(batch)
            faulty = self.faulty
            if self.columnar and total:
                offender = first_illegal_omission(
                    batch.columns(self._fanout_cache),
                    omit,
                    frozenset(faulty),
                )
                if offender is not None:
                    kind, index, sender, recipient = offender
                    if kind == "range":
                        raise AdversaryProtocolError(
                            f"omit index {index} out of range "
                            f"({total} messages this round)"
                        )
                    raise AdversaryProtocolError(
                        "omissions are only allowed on messages to/from "
                        f"faulty processes; message {sender}->{recipient} "
                        "touches none"
                    )
            else:
                # Canonical order means an illegal schedule always names
                # the *same* offending index as the vectorized check.
                for index in omit:
                    if not 0 <= index < total:
                        raise AdversaryProtocolError(
                            f"omit index {index} out of range "
                            f"({total} messages this round)"
                        )
                    sender, recipient = batch.endpoints_at(index)
                    if sender not in faulty and recipient not in faulty:
                        raise AdversaryProtocolError(
                            "omissions are only allowed on messages to/from "
                            f"faulty processes; message {sender}->{recipient} "
                            "touches none"
                        )
        canonical = AdversaryAction(
            corrupt=frozenset(action.corrupt), omit=frozenset(omit)
        )
        for observer in self._observers:
            observer.on_adversary_action(self.round, view, canonical, self)
        return omit

    def _deliver(self, batch: MessageBatch, omitted: Sequence[int]) -> None:
        """Place surviving copies into inboxes, in sender-sorted order.

        Engine-built batches are already in ascending-sender order (the
        local-computation phase advances processes in pid order), so the
        legacy per-round sender bucketing reduces to a straight scan; a
        stable record sort restores the invariant for hand-built outboxes.
        Multicast records materialize one :class:`Message` view per
        surviving copy here — the only place the fan-out is expanded on
        the object path.

        Metering precedence is the engine-wide rule pinned in
        :mod:`repro.runtime.metrics`: the omission check runs *before* the
        recipient-liveness check, so a copy that is both adversary-omitted
        and addressed to a terminated recipient counts as omitted, never
        as lost — ``sent = delivered + omitted + lost`` holds exactly,
        every round, on every engine path.
        """
        if self.columnar and batch.sender_sorted:
            self._deliver_columnar(batch, omitted)
            return
        omitted_set = set(omitted)
        delivered: list[Message] = []
        lost: list[Message] = []
        delivered_bits = 0
        lost_bits = 0
        programs = self._programs
        # On the object path every inbox slot holds a plain list (reset by
        # _advance_processes); the Sequence-typed slot only widens for the
        # columnar path's lazy views.
        inboxes = cast("list[list[Message]]", self._inboxes)
        delivered_append = delivered.append
        make_message = Message

        if batch.sender_sorted:
            pairs = zip(batch.records, batch.offsets)
        else:
            pairs = sorted(
                zip(batch.records, batch.offsets),
                key=lambda pair: pair[0].sender,
            )
        # Fast path: nothing omitted and every recipient still live — the
        # overwhelmingly common round shape.
        clean = not omitted_set and self.live_count == self.n

        for record, base in pairs:
            if type(record) is Multicast:
                sender = record.sender
                payload = record.payload
                bits = record.bits
                recipients = record.recipients
                if clean:
                    copies = [
                        make_message(sender, recipient, payload, bits)
                        for recipient in recipients
                    ]
                    for message, recipient in zip(copies, recipients):
                        inboxes[recipient].append(message)
                    delivered.extend(copies)
                    delivered_bits += bits * len(recipients)
                    continue
                for position, recipient in enumerate(recipients):
                    if base + position in omitted_set:
                        # Omitted wins over lost: skipped before the
                        # liveness check (see repro.runtime.metrics).
                        continue
                    message = make_message(sender, recipient, payload, bits)
                    if programs[recipient] is None:
                        # Recipient already terminated; the message is lost
                        # and counts in neither delivered counter.
                        lost.append(message)
                        lost_bits += bits
                    else:
                        inboxes[recipient].append(message)
                        delivered_append(message)
                        delivered_bits += bits
            else:
                if not clean:
                    if base in omitted_set:
                        continue
                    if programs[record.recipient] is None:
                        lost.append(record)
                        lost_bits += record.bits
                        continue
                inboxes[record.recipient].append(record)
                delivered_append(record)
                delivered_bits += record.bits

        # Totals the MetricsObserver picks up without a second O(copies)
        # pass; other observers still see plain message lists.
        self._delivered_bits = delivered_bits
        self._lost_bits = lost_bits
        for observer in self._observers:
            observer.on_deliveries(self.round, delivered, lost, self)

    def _deliver_columnar(
        self, batch: MessageBatch, omitted: Sequence[int]
    ) -> None:
        """Vectorized communication phase over the columnar batch layout.

        One :func:`repro.runtime.columnar.plan_delivery` call replaces the
        per-copy Python loop: inboxes become lazy
        :class:`~repro.runtime.columnar.LazyMessageList` views that
        materialize :class:`Message` objects only when a program or
        observer actually reads them.  Flat-index order, metering
        precedence (omitted wins over lost — see
        :mod:`repro.runtime.metrics`), and every observer-visible sequence
        are identical to the object path.
        """
        plan = plan_delivery(
            batch.columns(self._fanout_cache),
            omitted,
            (
                None
                if self.live_count == self.n
                else [program is not None for program in self._programs]
            ),
        )
        inboxes = self._inboxes
        for recipient, view in plan.inboxes:
            inboxes[recipient] = view
        self._delivered_bits = plan.delivered_bits
        self._lost_bits = plan.lost_bits
        for observer in self._observers:
            observer.on_deliveries(
                self.round, plan.delivered, plan.lost, self
            )

    def current_decisions(self) -> dict[int, Any]:
        return {
            env.pid: env.decision for env in self.envs if env.has_decided
        }

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Run rounds until every process terminates (or max_rounds)."""
        observers = self._observers
        setup_adversary(
            self.adversary,
            AdversaryContext(
                n=self.n,
                t=self.t,
                processes=tuple(self.processes),
                rng=random.Random(stable_seed(self.seed, "adversary-setup")),
            ),
        )
        for observer in observers:
            observer.on_run_start(self)
        while self.live_count > 0:
            if (
                self._reseed_at is not None
                and self.round == self._reseed_at[0]
            ):
                fork_seeds = derive_seeds(
                    self._reseed_at[1], self.n, salt="fork"
                )
                for source, fork_seed in zip(self.sources, fork_seeds):
                    source.reseed(fork_seed)
                self._reseed_at = None
            if self.round >= self.max_rounds:
                raise LockstepError(
                    f"protocol did not terminate within {self.max_rounds} "
                    f"rounds; {self.live_count} processes still live"
                )
            for observer in observers:
                observer.on_round_start(self.round, self)
            outbound = self._advance_processes()
            if self.live_count == 0 and not outbound:
                # A terminal local-computation phase with no traffic is not
                # a round: observers see the unmatched on_round_start.
                break
            for observer in observers:
                observer.on_messages_sent(self.round, outbound, self)
            omitted = self._apply_adversary(outbound)
            self._deliver(outbound, omitted)
            for observer in observers:
                observer.on_round_end(self.round, self)
            self.round += 1

        self.metrics.record_randomness(
            sum(source.calls for source in self.sources),
            sum(source.bits_drawn for source in self.sources),
        )
        result = ExecutionResult(
            n=self.n,
            decisions=self.current_decisions(),
            metrics=self.metrics,
            faulty=frozenset(self.faulty),
            all_terminated=all(env.has_decided for env in self.envs),
            rounds=self.metrics.rounds,
            randomness_per_process=[
                (source.calls, source.bits_drawn) for source in self.sources
            ],
            decision_rounds={
                env.pid: env.decision_round
                for env in self.envs
                if env.decision_round is not None
            },
        )
        for observer in observers:
            observer.on_run_end(result, self)
        return result
