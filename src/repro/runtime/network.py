"""The synchronous message-passing engine with an adaptive-adversary hook.

Each simulated round follows the paper's two-phase structure (Section 2):

1. *Local computation phase* — every live process's generator is resumed with
   the previous round's (post-omission) inbox; it updates state, draws metered
   randomness, and queues outgoing messages.
2. *Communication phase* — the adversary observes everything (full
   information: process states, this round's outbound messages, randomness
   already drawn) and returns an :class:`AdversaryAction`: which processes to
   newly corrupt and which faulty-incident messages to omit.  The engine
   validates legality (corruption budget, omissions only at faulty processes)
   and delivers the surviving messages, to be consumed next round.

The round's outbound traffic is a flat :class:`MessageBatch` over the
records the processes queued — point-to-point :class:`Message` objects and
:class:`Multicast` records (one shared payload, one precomputed size, many
recipients).  Omit indices address the batch's flat per-copy positions, so
adversary semantics, sender-ordered inboxes, and every :class:`Metrics`
counter are byte-identical to the legacy per-message path
(``SyncNetwork(multicast=False)``), while the engine sizes, meters, and
dispatches broadcast traffic per record instead of per copy.

The engine never trusts the strategy: illegal actions raise
:class:`AdversaryProtocolError`.

Instrumentation rides a first-class observer bus
(:class:`repro.runtime.observers.RoundObserver`): the engine natively
dispatches ``on_run_start`` / ``on_round_start`` / ``on_messages_sent`` /
``on_adversary_action`` / ``on_deliveries`` / ``on_transport`` (rounds
with real-link measurements only) / ``on_round_end`` / ``on_run_end``.
The :class:`Metrics` accounting itself is the first
observer on every network, so tracers and profilers see consistent series
without wrapping the adversary or monkeypatching hooks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from .columnar import HAVE_NUMPY, FanoutCache
from .delivery import make_backend
from .engine import ExecutionCore, ExecutionResult
from .messages import Message, MessageBatch
from .observers import MetricsObserver, RoundObserver
from .process import SyncProcess
from .randomness import stable_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..transport import Transport
    from .models import RoundModel

__all__ = [
    "Adversary",
    "AdversaryAction",
    "AdversaryContext",
    "AdversaryProtocolError",
    "ExecutionResult",
    "LockstepError",
    "NetworkView",
    "SyncNetwork",
    "canonical_omissions",
    "setup_adversary",
]


class AdversaryProtocolError(RuntimeError):
    """Raised when an adversary strategy violates the model's rules."""


def canonical_omissions(indices: Iterable[int]) -> tuple[int, ...]:
    """Canonical form of a round's omit indices: sorted and de-duplicated.

    The single choke point for omission-schedule normalization: the engine
    canonicalizes every :class:`AdversaryAction` before validating,
    metering, or dispatching it to observers; the replay recorder, the
    recipe serializer, and :class:`~repro.adversary.ScriptedAdversary`
    normalize through the same function.  An adversary that emits the same
    flat index twice (easy to do when building ``omit`` from overlapping
    per-target index sets) therefore omits one copy, is metered for one
    copy, and records/replays as one copy on every engine path.
    """
    return tuple(sorted(set(indices)))


class LockstepError(RuntimeError):
    """Raised when processes fall out of lockstep (a protocol bug)."""


@dataclass(slots=True)
class AdversaryAction:
    """What the adversary does between the two phases of one round.

    Attributes
    ----------
    corrupt:
        Process ids to corrupt *now* (before this round's delivery); they may
        already have messages in flight this round, all of which become
        omittable.
    omit:
        Indices into the round's message list to omit.  Every index must point
        at a message whose sender or recipient is faulty after the new
        corruptions are applied.
    """

    corrupt: frozenset[int] = frozenset()
    omit: frozenset[int] = frozenset()

    @staticmethod
    def nothing() -> AdversaryAction:
        return AdversaryAction()


class NetworkView:
    """Read-only full-information snapshot handed to the adversary.

    The adversary sees process objects (and thus their entire state), the
    round's outbound messages, who is already faulty, and the remaining
    corruption budget.  It cannot see *future* random bits because they have
    not been drawn yet.
    """

    __slots__ = (
        "round",
        "processes",
        "messages",
        "faulty",
        "budget_left",
        "decisions",
        "terminated",
        "_by_sender",
        "_by_recipient",
    )

    def __init__(
        self,
        round_no: int,
        processes: Sequence[SyncProcess],
        messages: Sequence[Message],
        faulty: frozenset[int],
        budget_left: int,
        decisions: Mapping[int, Any],
        terminated: frozenset[int],
    ) -> None:
        self.round = round_no
        self.processes = processes
        #: The round's outbound traffic as a flat ``Sequence[Message]`` —
        #: a :class:`MessageBatch` for engine-built views, where multicast
        #: copies occupy consecutive indices and materialize lazily on
        #: ``view.messages[i]`` / iteration.  Omit indices address these
        #: flat positions.
        self.messages = messages
        self.faulty = faulty
        self.budget_left = budget_left
        self.decisions = decisions
        self.terminated = terminated
        # Lazy per-sender/per-recipient indexes.  A view's message list is
        # immutable for its lifetime (the engine builds a fresh view every
        # round), so the indexes are built at most once per round instead of
        # rescanning all m messages on every helper call.
        self._by_sender: dict[int, list[int]] | None = None
        self._by_recipient: dict[int, list[int]] | None = None

    def _indexes(self) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
        if self._by_sender is None:
            messages = self.messages
            if isinstance(messages, MessageBatch):
                # Answer from the records — no per-copy materialization.
                self._by_sender = messages.indices_by_sender()
                self._by_recipient = messages.indices_by_recipient()
            else:
                by_sender: dict[int, list[int]] = {}
                by_recipient: dict[int, list[int]] = {}
                for index, message in enumerate(messages):
                    by_sender.setdefault(message.sender, []).append(index)
                    by_recipient.setdefault(
                        message.recipient, []
                    ).append(index)
                self._by_sender = by_sender
                self._by_recipient = by_recipient
        return self._by_sender, self._by_recipient

    # Convenience helpers used by concrete strategies -------------------
    def message_indices_touching(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages sent by or to any of ``pids``."""
        by_sender, by_recipient = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_sender.get(pid, ()))
            indices.extend(by_recipient.get(pid, ()))
        return frozenset(indices)

    def message_indices_from(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages sent by any of ``pids``."""
        by_sender, _ = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_sender.get(pid, ()))
        return frozenset(indices)

    def message_indices_to(self, pids: Iterable[int]) -> frozenset[int]:
        """Indices of messages addressed to any of ``pids``."""
        _, by_recipient = self._indexes()
        indices: list[int] = []
        for pid in sorted(set(pids)):
            indices.extend(by_recipient.get(pid, ()))
        return frozenset(indices)


@dataclass(frozen=True)
class AdversaryContext:
    """Everything an adversary may inspect before round 0.

    Handed to :meth:`Adversary.setup` by the engine (and by combinators to
    their inner strategies).  ``rng`` is a dedicated, deterministically
    seeded stream — strategies that randomize their setup (target sampling,
    tie breaking) should draw from it instead of global randomness so
    recorded executions replay exactly.
    """

    n: int
    t: int
    processes: tuple[SyncProcess, ...]
    rng: random.Random


def setup_adversary(adversary: Adversary, ctx: AdversaryContext) -> None:
    """Invoke ``adversary.setup`` with the run's context.

    The single lifecycle choke point: the engine and every combinator go
    through this function (not ``inner.setup(...)`` directly) so lifecycle
    changes land in one place.  The historical ``setup(n, t, processes)``
    signature was removed after its documented deprecation window
    (docs/api.md); strategies must accept a single
    :class:`AdversaryContext`.
    """
    adversary.setup(ctx)


class Adversary:
    """Base adversary: corrupts nobody and omits nothing.

    Concrete strategies override :meth:`act`; they may also override
    :meth:`setup` to inspect the system before round 0 (it receives a
    single :class:`AdversaryContext`, via :func:`setup_adversary`).
    """

    def setup(self, ctx: AdversaryContext) -> None:
        """Called once before the first round with the run's context."""

    def act(self, view: NetworkView) -> AdversaryAction:
        """Return this round's corruptions and omissions."""
        return AdversaryAction.nothing()


class SyncNetwork:
    """The engine facade: wires scheduler, delivery, and execution layers.

    A network owns one :class:`~repro.runtime.engine.ExecutionCore` (the
    processes and their metered randomness), one
    :class:`~repro.runtime.delivery.DeliveryBackend` (selected by the
    ``columnar`` capability at construction), and one
    :class:`~repro.runtime.models.RoundModel` (the timing discipline;
    lockstep rounds by default, overridable per-call or via the
    ``REPRO_EXECUTION_MODEL`` environment variable).  The network itself
    remains the adversary-arbitration and observer-dispatch surface: view
    construction, action validation, and the fixed hook sequence all live
    here, identically for every model.

    The ``transport`` axis (:mod:`repro.transport`) decides *where* the
    processes physically execute: the default in-process transport keeps
    today's zero-overhead single-interpreter core, while the TCP
    transport places them in real OS worker processes behind the same
    :class:`~repro.runtime.engine.ExecutionCore` surface — crash faults
    it detects are folded into the adversary arbitration as corruptions
    plus omissions, and its per-link measurements reach observers via the
    ``on_transport`` hook.
    """

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        adversary: Adversary | None = None,
        t: int = 0,
        seed: int = 0,
        max_rounds: int = 100_000,
        reseed_at: tuple[int, int] | None = None,
        observers: Sequence[RoundObserver] = (),
        multicast: bool = True,
        columnar: bool | None = None,
        model: RoundModel | str | None = None,
        model_options: Mapping[str, Any] | None = None,
        transport: Transport | str | None = None,
        transport_options: Mapping[str, Any] | None = None,
    ) -> None:
        from ..transport import resolve_transport

        #: The transport layer: where process execution physically lives
        #: (in this interpreter by default; real OS processes over
        #: localhost TCP with ``transport="tcp"``).
        self.transport = resolve_transport(transport, transport_options)
        self._core = self.transport.create_core(
            processes, seed=seed, multicast=multicast
        )
        n = self._core.n
        if t < 0 or t >= n:
            raise ValueError(f"fault budget t={t} must satisfy 0 <= t < n={n}")

        self.processes = self._core.processes
        self.n = n
        self.t = t
        self.seed = seed
        self.adversary = adversary if adversary is not None else Adversary()
        self.max_rounds = max_rounds
        self.metrics = self._core.metrics
        self.faulty: set[int] = set()
        self.round = 0
        # Per-round delivery totals accumulated by _deliver so the
        # MetricsObserver does not need a second O(copies) pass.
        self._delivered_bits = 0
        self._lost_bits = 0
        #: The observer bus.  The engine's own accounting comes first so
        #: user observers read up-to-date Metrics series.
        self._observers: list[RoundObserver] = [MetricsObserver(self.metrics)]
        self._observers.extend(observers)
        #: Optional (round, seed): at the start of that round every
        #: process's random source is re-seeded from ``seed`` — the fork
        #: point used by rollout-based adversaries (future coins must be
        #: fresh, already-drawn coins must replay exactly).
        self._reseed_at = reseed_at

        self.sources = self._core.sources
        self.envs = self._core.envs
        #: Whether send_many/broadcast queue single Multicast records (the
        #: fast path) or expand eagerly into per-copy Messages (the legacy
        #: per-message path; byte-identical outcomes, kept for equivalence
        #: tests and benchmarking).
        self.multicast = multicast
        #: Whether the communication phase runs vectorized over the
        #: columnar (numpy) batch layout — omissions as an index mask,
        #: terminated-recipient filtering as an index select, inboxes as a
        #: grouped scatter of lazy :class:`Message` views.  Defaults to
        #: numpy availability; ``columnar=False`` keeps the legacy
        #: object-per-copy delivery loop (byte-identical outcomes, kept
        #: for differential testing, exactly like ``multicast=False``).
        #: The flag is resolved here (against this module's ``HAVE_NUMPY``
        #: knob) and embodied as the network's delivery backend.
        if columnar is None:
            columnar = HAVE_NUMPY
        elif columnar and not HAVE_NUMPY:
            raise ValueError(
                "SyncNetwork(columnar=True) requires numpy, which is not "
                "installed; use columnar=False or columnar=None (auto)"
            )
        self.columnar = columnar
        # Fan-out tuples already converted to index arrays, shared across
        # rounds (ProcessEnv.broadcast caches its fan-out tuple per
        # process, so the same tuple objects recur every round).
        self._fanout_cache: FanoutCache = {}
        self._backend = make_backend(columnar, self._fanout_cache)
        # Aliases into the core: the core mutates these containers in
        # place, so the historical attribute names keep working.
        self._programs = self._core.programs
        self._inboxes = self._core.inboxes

        from .models import resolve_model

        #: The scheduler layer driving :meth:`run` (see class docstring).
        self.model = resolve_model(model, model_options)

    # ------------------------------------------------------------------
    def add_observer(self, observer: RoundObserver) -> SyncNetwork:
        """Attach a :class:`RoundObserver`; returns the network (chainable).

        Attach before :meth:`run` — observers joining mid-run would see a
        partial hook sequence.
        """
        self._observers.append(observer)
        return self

    @property
    def observers(self) -> tuple[RoundObserver, ...]:
        """The attached observers (first entry is the engine's own
        :class:`MetricsObserver`)."""
        return tuple(self._observers)

    # ------------------------------------------------------------------
    @property
    def core(self) -> ExecutionCore:
        """The execution layer: process advancement and metering."""
        return self._core

    @property
    def live_count(self) -> int:
        """Number of processes whose programs have not returned yet."""
        return self._core.live_count

    def terminated_set(self) -> frozenset[int]:
        return self._core.terminated_set()

    @property
    def in_flight_messages(self) -> int:
        """Messages sent but not yet delivered, omitted, or lost.

        Always zero under the lockstep model; non-zero mid-run under
        models with cross-round latency (the conservation invariant then
        reads ``sent == delivered + omitted + lost + in_flight``).
        """
        return self.model.in_flight_count

    def maybe_reseed(self) -> None:
        """Honour a pending ``reseed_at`` fork point for the current round."""
        if self._reseed_at is not None and self.round == self._reseed_at[0]:
            self._core.reseed(self._reseed_at[1])
            self._reseed_at = None

    def _apply_adversary(self, batch: MessageBatch) -> tuple[int, ...]:
        """Communication phase: let the adversary corrupt and omit.

        Returns the validated, canonical (sorted, de-duplicated) omitted
        flat message indices; :meth:`_deliver` skips them without
        rebuilding the batch.  Observers — including the metrics
        accounting and the replay recorder — are dispatched a
        canonicalized :class:`AdversaryAction`, so duplicate indices in a
        strategy's raw action are coalesced before anything downstream
        counts or serializes them (see :func:`canonical_omissions`).
        """
        view = NetworkView(
            round_no=self.round,
            processes=self.processes,
            messages=batch,
            faulty=frozenset(self.faulty),
            budget_left=self.t - len(self.faulty),
            decisions=self.current_decisions(),
            terminated=self.terminated_set(),
        )
        action = self.adversary.act(view)

        # Crash faults detected by the transport (a worker process died or
        # a link timed out) are arbitrated exactly like adversarial
        # corruptions: they consume the same t budget, and every copy the
        # dead processes touched this round is omitted — so real network
        # failures land inside the paper's omission-fault model rather
        # than outside the metering identity.
        transport_faults = self._core.drain_faults() - frozenset(self.faulty)

        new_corruptions = (set(action.corrupt) | transport_faults) - self.faulty
        if len(self.faulty) + len(new_corruptions) > self.t:
            detail = (
                f" (of which transport crash faults: "
                f"{sorted(transport_faults)})"
                if transport_faults
                else ""
            )
            raise AdversaryProtocolError(
                f"corruption budget exceeded: have {len(self.faulty)}, "
                f"tried to add {len(new_corruptions)}, budget t={self.t}"
                + detail
            )
        for pid in sorted(new_corruptions):
            if not 0 <= pid < self.n:
                raise AdversaryProtocolError(f"cannot corrupt unknown pid {pid}")
        self.faulty |= new_corruptions

        raw_omit: Iterable[int] = action.omit
        if transport_faults:
            raw_omit = set(action.omit) | view.message_indices_touching(
                transport_faults
            )
        omit = canonical_omissions(raw_omit)
        if omit:
            # Legality is delegated to the delivery backend (the layer
            # that understands the batch representation); canonical order
            # means every backend names the *same* offending index.
            self._backend.validate_omissions(
                batch, omit, frozenset(self.faulty)
            )
        canonical = AdversaryAction(
            corrupt=frozenset(action.corrupt) | transport_faults,
            omit=frozenset(omit),
        )
        for observer in self._observers:
            observer.on_adversary_action(self.round, view, canonical, self)
        return omit

    def _deliver(self, batch: MessageBatch, omitted: Sequence[int]) -> None:
        """One delivery step: backend placement plus observer dispatch.

        The batch-to-inbox mechanics live in the network's
        :class:`~repro.runtime.delivery.DeliveryBackend`; this method adds
        the engine-side bookkeeping — the accumulated bit totals the
        :class:`~repro.runtime.observers.MetricsObserver` reads without a
        second O(copies) pass, and the ``on_deliveries`` hook.
        """
        receipt = self._backend.deliver(
            batch, omitted, self._inboxes, self._core.live_mask()
        )
        self._delivered_bits = receipt.delivered_bits
        self._lost_bits = receipt.lost_bits
        for observer in self._observers:
            observer.on_deliveries(
                self.round, receipt.delivered, receipt.lost, self
            )

    def _dispatch_round_end(self) -> None:
        """Round epilogue: transport link metrics (if any), then
        ``on_round_end``.

        Round models call this once per round instead of dispatching
        ``on_round_end`` themselves, so :class:`LinkSample` measurements
        drained from a transport-backed core reach the ``on_transport``
        hook identically under every timing discipline.
        """
        samples = self._core.drain_link_samples()
        if samples:
            for observer in self._observers:
                observer.on_transport(self.round, samples, self)
        for observer in self._observers:
            observer.on_round_end(self.round, self)

    def _absorb_residual_faults(self) -> None:
        """Fold crash faults the transport detected after the last
        adversary arbitration (e.g. a worker dying during the terminal
        local-computation phase) into the faulty set, still within the
        corruption budget."""
        residual = self._core.drain_faults() - frozenset(self.faulty)
        if not residual:
            return
        if len(self.faulty) + len(residual) > self.t:
            raise AdversaryProtocolError(
                f"corruption budget exceeded: have {len(self.faulty)}, "
                f"transport crash faults add {sorted(residual)}, "
                f"budget t={self.t}"
            )
        self.faulty |= residual

    def current_decisions(self) -> dict[int, Any]:
        return self._core.current_decisions()

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Run rounds until every process terminates (or max_rounds).

        The network brackets the run (adversary setup, ``on_run_start``,
        result assembly, ``on_run_end``); the round loop itself belongs to
        the configured :class:`~repro.runtime.models.RoundModel`.
        """
        observers = self._observers
        setup_adversary(
            self.adversary,
            AdversaryContext(
                n=self.n,
                t=self.t,
                processes=tuple(self.processes),
                rng=random.Random(stable_seed(self.seed, "adversary-setup")),
            ),
        )
        for observer in observers:
            observer.on_run_start(self)

        try:
            self.model.run_rounds(self)
            self._absorb_residual_faults()
        finally:
            # Graceful shutdown of transport resources (worker processes,
            # sockets) whether the run finished or raised mid-round; a
            # no-op for the in-process transport.
            self._core.close()

        self._core.record_randomness()
        result = self._core.build_result(frozenset(self.faulty))
        for observer in observers:
            observer.on_run_end(result, self)
        return result
