"""Execution metrics: the paper's three complexity measures plus diagnostics.

Section 2 of the paper defines, per execution, the *time* (rounds until the
last non-faulty process terminates), the *number of communication bits*, and
the *randomness* (random bits / random-source calls).  :class:`Metrics`
accumulates exactly those, plus message counts and per-round series useful for
the benchmark figures.

**Metering identity and precedence.**  Every sent copy is accounted exactly
once per round::

    messages_sent == messages_delivered + messages_omitted + messages_lost

with *omitted taking precedence over lost*: a copy the adversary omits is
counted from the canonical omission schedule and never reaches the
recipient-liveness check, so a copy that is **both** omitted and addressed
to an already-terminated recipient is omitted, not lost.  This is the
single place that rule is pinned; both engine delivery paths
(:meth:`SyncNetwork._deliver` object loop and the columnar
:func:`repro.runtime.columnar.plan_delivery`) implement it, and
:class:`repro.replay.invariants.InvariantObserver` asserts the per-round
identity on every run it observes.  Bits follow the same precedence, but
omitted *bits* are not metered separately, so only the inequality
``bits_delivered + bits_lost <= bits_sent`` is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters accumulated by :class:`repro.runtime.network.SyncNetwork`."""

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_omitted: int = 0
    #: Messages that survived the adversary but whose recipient had already
    #: terminated — neither delivered nor omitted.
    messages_lost: int = 0
    bits_sent: int = 0
    bits_delivered: int = 0
    bits_lost: int = 0
    random_calls: int = 0
    random_bits: int = 0
    #: Messages sent in each round, for per-round traffic profiles.
    messages_per_round: list[int] = field(default_factory=list)
    #: Bits sent in each round.
    bits_per_round: list[int] = field(default_factory=list)

    def record_round(self, messages: int, bits: int) -> None:
        """Account one communication phase's sent traffic."""
        self.rounds += 1
        self.messages_sent += messages
        self.bits_sent += bits
        self.messages_per_round.append(messages)
        self.bits_per_round.append(bits)

    def record_delivery(self, messages: int, bits: int) -> None:
        """Account traffic actually placed in a live recipient's inbox."""
        self.messages_delivered += messages
        self.bits_delivered += bits

    def record_lost(self, messages: int, bits: int) -> None:
        """Account traffic dropped because its recipient had terminated."""
        self.messages_lost += messages
        self.bits_lost += bits

    def record_omissions(self, messages: int) -> None:
        """Account messages the adversary omitted this round."""
        self.messages_omitted += messages

    def record_randomness(self, calls: int, bits: int) -> None:
        """Overwrite the randomness totals (sampled from the sources)."""
        self.random_calls = calls
        self.random_bits = bits

    def summary(self) -> dict[str, int]:
        """Scalar totals, convenient for tables and assertions."""
        return {
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_omitted": self.messages_omitted,
            "messages_lost": self.messages_lost,
            "bits_sent": self.bits_sent,
            "bits_delivered": self.bits_delivered,
            "bits_lost": self.bits_lost,
            "random_calls": self.random_calls,
            "random_bits": self.random_bits,
        }

    def __str__(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.summary().items())
        return f"Metrics({parts})"
