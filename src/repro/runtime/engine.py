"""ExecutionCore: the engine-neutral execution layer.

Everything about driving a set of :class:`SyncProcess` generators that
does *not* depend on the timing model lives here: process-coroutine
advancement (the paper's local-computation phase), inbox bookkeeping,
decision tracking, termination queries, the per-process counted random
sources, and the final :class:`ExecutionResult` assembly.  Round models
(:mod:`repro.runtime.models`) decide *when* to call these operations and
with which inbox contents; delivery backends
(:mod:`repro.runtime.delivery`) decide *how* surviving traffic becomes
inbox contents.  :class:`~repro.runtime.network.SyncNetwork` wires the
three layers together and remains the adversary-arbitration and
observer-dispatch surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from .messages import Message, MessageBatch, MessageRecord
from .metrics import Metrics
from .observers import LinkSample
from .process import ProcessEnv, Program, SyncProcess
from .randomness import CountingRandom, derive_seeds


@dataclass
class ExecutionResult:
    """Outcome of one engine execution (:meth:`SyncNetwork.run`)."""

    n: int
    decisions: dict[int, Any]
    metrics: Metrics
    faulty: frozenset[int]
    all_terminated: bool
    rounds: int
    #: Per-process random-source statistics (calls, bits).
    randomness_per_process: list[tuple[int, int]] = field(default_factory=list)
    #: Round in which each process first decided (absent = never decided).
    decision_rounds: dict[int, int] = field(default_factory=dict)

    def time_to_agreement(self) -> int:
        """The paper's *time* metric: rounds until the last **non-faulty**
        process has decided (Section 2).  Faulty stragglers — e.g. fully
        eclipsed processes waiting out their timeout — do not count.

        Raises ``AssertionError`` if some non-faulty process never decided.
        """
        latest = -1
        for pid in range(self.n):
            if pid in self.faulty:
                continue
            round_no = self.decision_rounds.get(pid)
            if round_no is None:
                raise AssertionError(
                    f"non-faulty process {pid} never decided"
                )
            latest = max(latest, round_no)
        if latest < 0:
            raise AssertionError("no non-faulty process decided")
        return latest + 1

    def non_faulty_decisions(self) -> dict[int, Any]:
        """Decisions of processes the adversary never corrupted."""
        return {
            pid: value
            for pid, value in self.decisions.items()
            if pid not in self.faulty
        }

    def agreement_value(self) -> Any:
        """The unique decision of non-faulty processes.

        Raises ``AssertionError`` if agreement is violated or some non-faulty
        process never decided — the core correctness check used by tests.
        """
        values = self.non_faulty_decisions()
        undecided = [
            pid
            for pid in range(self.n)
            if pid not in self.faulty and pid not in values
        ]
        if undecided:
            raise AssertionError(
                f"termination violated: non-faulty processes {undecided} "
                "never decided"
            )
        distinct = set(values.values())
        if len(distinct) != 1:
            raise AssertionError(
                f"agreement violated: non-faulty decisions {values}"
            )
        return distinct.pop()


class ExecutionCore:
    """Process advancement, decision tracking, termination, and metering.

    One core drives one execution.  It owns the process list, the
    deterministically derived :class:`CountingRandom` sources, the
    per-process :class:`ProcessEnv` objects, the generator programs, and
    the inbox slots delivery backends write into.  It knows nothing about
    rounds-as-time: the round number is handed in by the model on every
    :meth:`advance`.
    """

    __slots__ = (
        "processes",
        "n",
        "seed",
        "metrics",
        "sources",
        "envs",
        "programs",
        "inboxes",
    )

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        seed: int = 0,
        multicast: bool = True,
        metrics: Metrics | None = None,
    ) -> None:
        if not processes:
            raise ValueError("need at least one process")
        n = len(processes)
        for index, process in enumerate(processes):
            if process.pid != index:
                raise ValueError(
                    f"process at position {index} has pid {process.pid}; "
                    "pids must equal list positions"
                )
            if process.n != n:
                raise ValueError(
                    f"process {process.pid} was built for n={process.n}, "
                    f"but the network has n={n}"
                )
        self.processes = list(processes)
        self.n = n
        self.seed = seed
        self.metrics = metrics if metrics is not None else Metrics()
        seeds = derive_seeds(seed, n, salt="process-randomness")
        self.sources = [CountingRandom(s) for s in seeds]
        self.envs = [
            ProcessEnv(pid, n, self.sources[pid]) for pid in range(n)
        ]
        if not multicast:
            for env in self.envs:
                env.expand_multicast = True
        self.programs: list[Program | None] = [
            process.program(self.envs[process.pid])
            for process in self.processes
        ]
        self.inboxes: list[Sequence[Message]] = [[] for _ in range(n)]

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Number of processes whose programs have not returned yet."""
        return sum(1 for program in self.programs if program is not None)

    def terminated_set(self) -> frozenset[int]:
        return frozenset(
            pid for pid, program in enumerate(self.programs) if program is None
        )

    def live_mask(self) -> list[bool] | None:
        """Per-pid liveness for delivery backends; ``None`` = all live."""
        if self.live_count == self.n:
            return None
        return [program is not None for program in self.programs]

    def current_decisions(self) -> dict[int, Any]:
        return {
            env.pid: env.decision for env in self.envs if env.has_decided
        }

    # ------------------------------------------------------------------
    def advance(self, round_no: int) -> MessageBatch:
        """Run one local-computation phase; collect the outbound batch.

        Every live program is resumed (in pid order) with the inbox its
        slot currently holds; the slot is reset so the next delivery step
        starts from empty.
        """
        records: list[MessageRecord] = []
        for pid, program in enumerate(self.programs):
            if program is None:
                continue
            env = self.envs[pid]
            env.round = round_no
            env.outbox = []
            inbox = self.inboxes[pid]
            self.inboxes[pid] = []
            try:
                if round_no == 0:
                    next(program)
                else:
                    program.send(inbox)
            except StopIteration:
                self.programs[pid] = None
            # Messages queued before a final ``return`` are still sent: the
            # process completed its local computation phase this round.
            records.extend(env.outbox)
        return MessageBatch(records)

    def reseed(self, fork_seed: int) -> None:
        """Re-seed every process's random source from ``fork_seed`` — the
        fork point used by rollout-based adversaries (future coins must be
        fresh, already-drawn coins must replay exactly)."""
        fork_seeds = derive_seeds(fork_seed, self.n, salt="fork")
        for source, per_process_seed in zip(self.sources, fork_seeds):
            source.reseed(per_process_seed)

    # ------------------------------------------------------------------
    # Transport surface.  The base core is fully in-process: it owns no
    # external resources, detects no crash faults, and measures no links.
    # Transport-backed cores (``repro.transport``) override all three.
    def close(self) -> None:
        """Release transport resources (idempotent; no-op in-process)."""

    def drain_faults(self) -> frozenset[int]:
        """Process ids newly crash-faulted by the transport since the
        last drain.  :meth:`SyncNetwork._apply_adversary` folds them into
        the round's corruptions and omits their in-flight copies, so a
        dead worker lands inside the paper's omission-fault model instead
        of hanging the run."""
        return frozenset()

    def drain_link_samples(self) -> tuple[LinkSample, ...]:
        """Per-link transport measurements since the last drain (consumed
        by ``SyncNetwork._dispatch_round_end`` for the ``on_transport``
        observer hook)."""
        return ()

    # ------------------------------------------------------------------
    def record_randomness(self) -> None:
        """Fold the sources' totals into :class:`Metrics` (run end)."""
        self.metrics.record_randomness(
            sum(source.calls for source in self.sources),
            sum(source.bits_drawn for source in self.sources),
        )

    def build_result(self, faulty: frozenset[int]) -> ExecutionResult:
        """Assemble the :class:`ExecutionResult` for a finished run."""
        return ExecutionResult(
            n=self.n,
            decisions=self.current_decisions(),
            metrics=self.metrics,
            faulty=faulty,
            all_terminated=all(env.has_decided for env in self.envs),
            rounds=self.metrics.rounds,
            randomness_per_process=[
                (source.calls, source.bits_drawn) for source in self.sources
            ],
            decision_rounds={
                env.pid: env.decision_round
                for env in self.envs
                if env.decision_round is not None
            },
        )
